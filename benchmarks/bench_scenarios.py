"""Attack-scenario gauntlet benchmark: scenarios/sec, serial and socket.

Prices the :mod:`repro.scenarios` registry two ways — the in-process
gauntlet (``run_gauntlet`` over the whole catalog, what ``python -m
repro scenario gauntlet`` and the CI smoke job pay) and the sweep path
(``scenario:NAME`` workloads dispatched through the serial and warm
socket backends, what a seed-axis robustness sweep pays per trial).

As with every dispatch benchmark here, **equivalence is asserted before
anything is timed**:

* two gauntlet runs at the same seed must render byte-identical JSON
  (``sort_keys`` dumps) — scenarios are clock-free by construction;
* the serial and socket sweep reports over the same scenario grid must
  be byte-identical — dispatch must never change a scenario verdict;
* a :class:`~repro.serve.host.SessionHost` answering ``RunScenario``
  must observe exactly what the local runner observes;
* and every catalog entry must actually match its registered
  expectation — a broken defence fails the bench, it does not get
  timed.

Run ``PYTHONPATH=src python benchmarks/bench_scenarios.py`` to
regenerate ``benchmarks/BENCH_scenarios.json``; ``--quick`` is the CI
smoke mode (one gauntlet pass, a 2-scenario sweep, no JSON unless
``--json`` is given).  ``os.cpu_count()`` is recorded and the
socket-vs-serial floor is enforced only when the machine has at least
``--workers`` cores; the serial floor always is (it needs no
parallelism).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.dispatch import SerialBackend, SocketBackend, SweepRunner, SweepSpec
from repro.scenarios import encode_outcome, run_gauntlet, run_scenario, scenario_names
from repro.serve import SessionHost
from repro.serve import protocol as sp

SWEEP_SCENARIOS = (
    "channel.tampered-ciphertext",
    "serve.duplicate-open",
    "serve.flood-backpressure",
    "service.nonmember-send",
)
"""The scenario grid the sweep timings use (cheap, layer-diverse)."""


def assert_equivalence(seed: int, spec: SweepSpec, workers: int) -> dict:
    """Every determinism contract, checked before the clock starts."""
    # 1. Gauntlet determinism + every expectation matched.
    first = run_gauntlet(seed=seed)
    if not first.all_matched():
        raise AssertionError(
            f"catalog mismatches at seed {seed}: {first.mismatched()}"
        )
    again = run_gauntlet(seed=seed)
    if json.dumps(first.as_dict(), sort_keys=True) != json.dumps(
        again.as_dict(), sort_keys=True
    ):
        raise AssertionError("gauntlet report is not deterministic")

    # 2. Serve host observes what the local runner observes.
    host = SessionHost(seed=0)
    for name in SWEEP_SCENARIOS[:2]:
        served = host.handle("bench", sp.RunScenario(name=name, seed=seed))
        local = run_scenario(name, seed=seed)
        if served.observed != encode_outcome(local.observed):
            raise AssertionError(
                f"serve/local divergence on {name!r}: "
                f"{served.observed} != {encode_outcome(local.observed)}"
            )

    # 3. Serial and socket sweep reports byte-identical.
    serial = SweepRunner(spec, backend=SerialBackend()).run().as_dict()
    socket_backend = SocketBackend(workers=workers, accept_timeout=60.0)
    via_socket = (
        SweepRunner(spec, backend=socket_backend).run().as_dict()
    )
    serial_text = json.dumps(serial, sort_keys=True)
    if serial_text != json.dumps(via_socket, sort_keys=True):
        raise AssertionError(
            "scenario sweep diverges between serial and socket backends"
        )
    return serial


def time_gauntlet(reps: int, seed: int) -> float:
    """Full-catalog gauntlet passes; returns scenarios/sec."""
    total = reps * len(scenario_names())
    start = time.perf_counter()
    for rep in range(reps):
        report = run_gauntlet(seed=seed + rep)
        if not report.all_matched():  # pragma: no cover - guarded above
            raise AssertionError(report.mismatched())
    return total / (time.perf_counter() - start)


def time_sweep(spec: SweepSpec, backend) -> float:
    """One sweep over the scenario grid; returns trials/sec."""
    start = time.perf_counter()
    SweepRunner(spec, backend=backend).run()
    return spec.total_trials / (time.perf_counter() - start)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="attack-scenario gauntlet throughput benchmark"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: one gauntlet pass, tiny sweep, no JSON written "
        "unless --json is given",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="socket backend pool size (default: 2)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--min-serial", type=float, default=2.0,
        help="fail (exit 1) if the serial gauntlet drops below this many "
        "scenarios/sec — always enforced",
    )
    parser.add_argument(
        "--min-socket-vs-serial", type=float, default=0.3,
        help="fail if socket-sweep trials/sec divided by serial-sweep "
        "trials/sec drops below this — enforced only when "
        "os.cpu_count() >= workers",
    )
    parser.add_argument(
        "--json", type=Path, default=None,
        help="output path for the JSON baseline (default: "
        "benchmarks/BENCH_scenarios.json; written automatically in full "
        "mode, and in --quick mode only when this flag is given)",
    )
    args = parser.parse_args(argv)
    json_path = (
        args.json
        if args.json is not None
        else Path(__file__).parent / "BENCH_scenarios.json"
    )
    write_json = not args.quick or args.json is not None
    cpu_count = os.cpu_count() or 1
    reps = 1 if args.quick else 3
    names = SWEEP_SCENARIOS[:2] if args.quick else SWEEP_SCENARIOS
    trials = 2 if args.quick else 8
    spec = SweepSpec(
        workloads=tuple(f"scenario:{name}" for name in names),
        trials=trials,
        seed=args.seed,
    )

    assert_equivalence(args.seed, spec, args.workers)
    catalog = scenario_names()

    throughput = {
        "gauntlet_serial": time_gauntlet(reps, args.seed),
        "sweep_serial": time_sweep(spec, SerialBackend()),
    }
    warm = SocketBackend(
        workers=args.workers, accept_timeout=60.0, keep_alive=True
    )
    try:
        warm.warm_up(timeout=60.0)
        throughput["sweep_socket"] = time_sweep(spec, warm)
    finally:
        warm.close()

    socket_vs_serial = (
        throughput["sweep_socket"] / throughput["sweep_serial"]
    )
    print(
        f"catalog: {len(catalog)} scenarios, all expectations matched "
        f"(seed {args.seed})"
    )
    for name, rate in throughput.items():
        unit = "scenarios" if name.startswith("gauntlet") else "trials"
        print(f"{name:>16}: {rate:8.2f} {unit}/s  (equivalence OK)")
    print(
        f"{'equivalence':>16}: gauntlet deterministic, serve == local, "
        "serial sweep == socket sweep (byte-identical reports)"
    )

    enforceable = cpu_count >= args.workers
    if write_json:
        payload = {
            "generated_by": "benchmarks/bench_scenarios.py",
            "catalog_size": len(catalog),
            "sweep_scenarios": list(names),
            "sweep_trials_per_scenario": trials,
            "gauntlet_reps": reps,
            "equivalence": "gauntlet reports byte-identical across runs; "
            "SessionHost RunScenario == local run_scenario; serial and "
            "socket scenario-sweep reports byte-identical (sort_keys "
            "dumps) — all asserted before timing",
            "python": platform.python_version(),
            "cpu_count": cpu_count,
            "workers": args.workers,
            "socket_floor_enforced": enforceable,
            "results": {
                "gauntlet_serial_scenarios_per_sec": round(
                    throughput["gauntlet_serial"], 2
                ),
                "sweep_serial_trials_per_sec": round(
                    throughput["sweep_serial"], 2
                ),
                "sweep_socket_trials_per_sec": round(
                    throughput["sweep_socket"], 2
                ),
                "socket_vs_serial": round(socket_vs_serial, 2),
            },
        }
        json_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {json_path}")

    failures = []
    if throughput["gauntlet_serial"] < args.min_serial:
        failures.append(
            f"serial gauntlet runs {throughput['gauntlet_serial']:.2f} "
            f"scenarios/s (< {args.min_serial} floor)"
        )
    if enforceable and socket_vs_serial < args.min_socket_vs_serial:
        failures.append(
            f"socket sweep is {socket_vs_serial:.2f}x the serial sweep "
            f"(< {args.min_socket_vs_serial}x floor)"
        )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if not enforceable:
        print(
            f"NOTE: {cpu_count} CPU(s) < {args.workers} workers — socket "
            f"floor not enforced (measured {socket_vs_serial:.2f}x; "
            "equivalence still asserted)"
        )
    print(
        f"\nOK: gauntlet {throughput['gauntlet_serial']:.2f} scenarios/s, "
        f"socket sweep {socket_vs_serial:.2f}x serial"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
