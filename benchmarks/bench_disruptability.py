"""E4 — Theorem 6: f-AME is t-disruptable against the adversary gallery.

For every adversary strategy and several seeds, the minimum vertex cover
of the failed pairs must never exceed ``t``.  The table reports the worst
observed disruptability per strategy — the paper's optimal-resilience
claim regenerated empirically.
"""

from __future__ import annotations

import random

import pytest

from repro.adversary import (
    NullAdversary,
    RandomJammer,
    ReactiveJammer,
    ScheduleAwareJammer,
    SpoofingAdversary,
    SweepJammer,
)
from repro.fame import run_fame
from repro.rng import RngRegistry

from bench_common import make_network, report

GALLERY = {
    "null": lambda r: NullAdversary(),
    "random-jam": RandomJammer,
    "sweep-jam": lambda r: SweepJammer(),
    "reactive-jam": ReactiveJammer,
    "spoofer": SpoofingAdversary,
    "schedule-prefix": lambda r: ScheduleAwareJammer(r, policy="prefix"),
    "schedule-suffix": lambda r: ScheduleAwareJammer(r, policy="suffix"),
    "schedule-random": lambda r: ScheduleAwareJammer(r, policy="random"),
    "schedule-victims": lambda r: ScheduleAwareJammer(
        r, policy="victims", victims=[0, 1]
    ),
}


def workload(t):
    n = 20 if t == 1 else 40
    edges = [(i, i + n // 2) for i in range(6)]
    edges += [(0, n // 2 + 7), (1, n // 2 + 8)]  # shared sources
    return n, edges


def run_one(name, t, seed):
    n, edges = workload(t)
    net = make_network(
        n, t + 1, t, adversary=GALLERY[name](random.Random(seed))
    )
    return run_fame(net, edges, rng=RngRegistry(seed=seed))


@pytest.mark.parametrize("name", sorted(GALLERY))
@pytest.mark.parametrize("t", [1, 2])
def test_gallery_t_disruptable(benchmark, name, t):
    res = benchmark.pedantic(run_one, args=(name, t, 0), rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"adversary": name, "t": t, "failed": len(res.failed),
         "disruptability": res.disruptability()}
    )
    assert res.is_d_disruptable(t), (name, res.failed)


def _e4_table():
    rows = []
    for t in (1, 2):
        for name in sorted(GALLERY):
            worst = 0
            worst_failed = 0
            for seed in range(5):
                res = run_one(name, t, seed)
                worst = max(worst, res.disruptability())
                worst_failed = max(worst_failed, len(res.failed))
                assert res.is_d_disruptable(t), (name, t, seed)
            rows.append([name, t, worst_failed, worst, t])
    report(
        "E4 / Theorem 6 — worst disruptability over 5 seeds per adversary",
        ["adversary", "t", "max failed pairs", "max cover", "bound (t)"],
        rows,
    )


def test_e4_table(benchmark):
    """Benchmark wrapper so the table regenerates under --benchmark-only."""
    benchmark.pedantic(_e4_table, rounds=1, iterations=1)
