"""Shared helpers for the benchmark harness.

Every paper table/figure has one module here (see DESIGN.md section 4).
Benchmarks print the regenerated rows with :func:`report` — run with
``pytest benchmarks/ --benchmark-only -s`` to see them — and attach the
same numbers to ``benchmark.extra_info`` so they land in the JSON output.

This module (not ``conftest.py``) is the import target for benchmark
code: both ``tests/`` and ``benchmarks/`` carry a ``conftest.py``, and a
bare ``import conftest`` resolves to whichever directory pytest put on
``sys.path`` first — so the benchmark-specific factory (which disables
trace retention by default) lives under an unambiguous name.
"""

from __future__ import annotations

import random

from repro.radio.network import RadioNetwork


def make_network(
    n: int = 20,
    channels: int = 2,
    t: int = 1,
    adversary=None,
    **kwargs,
) -> RadioNetwork:
    """Network factory for benchmarks: trace retention off unless needed."""
    kwargs.setdefault("keep_trace", False)
    if adversary is not None and getattr(adversary, "needs_history", False):
        kwargs["keep_trace"] = True
    return RadioNetwork(n, channels, t, adversary=adversary, **kwargs)


def report(title: str, headers: list[str], rows: list[list]) -> None:
    """Print one paper-style table."""
    widths = [
        max(len(str(h)), *(len(str(row[i])) for row in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print(f"\n=== {title} ===")
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def disjoint_pairs(count: int, offset: int = 0) -> list[tuple[int, int]]:
    """`count` vertex-disjoint ordered pairs starting at node `offset`."""
    return [(offset + 2 * i, offset + 2 * i + 1) for i in range(count)]


def random_pairs(count: int, n: int, seed: int) -> list[tuple[int, int]]:
    """`count` distinct random ordered pairs over `n` nodes."""
    rng = random.Random(seed)
    pairs: set[tuple[int, int]] = set()
    while len(pairs) < count:
        v, w = rng.randrange(n), rng.randrange(n)
        if v != w:
            pairs.add((v, w))
    return sorted(pairs)
