"""Pytest glue for the benchmark tree.

Benchmark helpers live in :mod:`bench_common`; import them from there, not
from here.  This file must stay *drop-in compatible* with
``tests/conftest.py``: pytest imports both under the bare module name
``conftest`` (neither directory is a package), and whichever the collector
touches first wins ``sys.modules["conftest"]`` for the whole run.  Any
``from conftest import make_network`` — in a test or a benchmark — must
therefore behave the same no matter which file answered, so the factory
below mirrors the tests/ signature and defaults exactly (small model sizes,
trace retention on).
"""

from __future__ import annotations

from repro.radio.network import RadioNetwork

from bench_common import disjoint_pairs, random_pairs, report  # noqa: F401


def make_network(
    n: int = 20,
    channels: int = 2,
    t: int = 1,
    adversary=None,
    **kwargs,
) -> RadioNetwork:
    """Convenience network factory with small defaults (t=1 minimum pop)."""
    return RadioNetwork(n, channels, t, adversary=adversary, **kwargs)
