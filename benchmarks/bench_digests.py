"""E6 — Section 5.6: constant-size messages via gossip + digests.

Compares plain f-AME (vector-sized frames) with the digest pipeline
(constant 32-byte signatures), measuring the largest protocol frame and
the reconstruction chain counts under heavy spoofing — the quantity the
paper bounds by O(t^2 log n).
"""

from __future__ import annotations

import random

import pytest

from repro.adversary import SpoofingAdversary
from repro.crypto.hashes import canonical_encode, h1
from repro.fame import run_fame, run_fame_with_digests
from repro.radio.messages import Message
from repro.rng import RngRegistry

from bench_common import make_network, report

N, T = 20, 1
EDGES = [(0, 1), (0, 2), (0, 3), (4, 5), (6, 7)]
MESSAGES = {p: ("data-block", "x" * 40, p) for p in EDGES}


def frame_sizes(net):
    """Max encoded payload size over all transmitted ame frames."""
    from repro.radio.actions import Transmit

    biggest = 0
    for record in net.trace:
        for action in record.actions.values():
            if isinstance(action, Transmit) and action.message.kind in (
                "ame-data",
            ):
                biggest = max(
                    biggest, len(canonical_encode(action.message.payload[1]))
                )
    return biggest


def run_plain(seed=0):
    net = make_network(N, T + 1, T, keep_trace=True)
    res = run_fame(net, EDGES, MESSAGES, rng=RngRegistry(seed=seed))
    return res, frame_sizes(net)


def run_digest(seed=0, adversary=None):
    net = make_network(N, T + 1, T, adversary=adversary, keep_trace=True)
    res = run_fame_with_digests(net, EDGES, MESSAGES, rng=RngRegistry(seed=seed))
    return res, frame_sizes(net)


def test_plain_fame(benchmark):
    res, size = benchmark.pedantic(run_plain, rounds=1, iterations=1)
    benchmark.extra_info.update({"max_vector_bytes": size, "rounds": res.rounds})


def test_digest_pipeline(benchmark):
    res, size = benchmark.pedantic(run_digest, rounds=1, iterations=1)
    benchmark.extra_info.update(
        {"max_vector_bytes": size,
         "rounds": res.fame.rounds + res.gossip_rounds}
    )


def _e6_table():
    plain_res, plain_size = run_plain(seed=1)
    digest_res, digest_size = run_digest(seed=1)

    # Heavy spoof pressure: count surviving candidate chains.
    def forge(view, channel):
        fake = ("spoofed", view.round_index)
        return Message(
            kind="ame-gossip", sender=0, payload=(0, 0, fake, h1(fake))
        )

    spoofed_res, _ = run_digest(
        seed=2,
        adversary=SpoofingAdversary(
            random.Random(3), forge=forge, target_scheduled=False
        ),
    )
    rows = [
        ["plain f-AME", plain_size, plain_res.rounds, "-", "-",
         plain_res.disruptability()],
        ["digest pipeline", digest_size,
         digest_res.fame.rounds + digest_res.gossip_rounds,
         max(digest_res.candidate_stats.values()),
         max(digest_res.chain_stats.values()),
         digest_res.disruptability()],
        ["digest + spoof flood", "-",
         spoofed_res.fame.rounds + spoofed_res.gossip_rounds,
         max(spoofed_res.candidate_stats.values()),
         max(spoofed_res.chain_stats.values()),
         spoofed_res.disruptability()],
    ]
    report(
        "E6 / Section 5.6 — frame size and reconstruction pressure",
        ["pipeline", "max frame bytes", "rounds", "max candidates",
         "max chains", "disrupt"],
        rows,
    )
    # The digest pipeline's f-AME frames carry 32-byte signatures: the
    # biggest vector payload shrinks despite identical application data.
    assert digest_size < plain_size
    # All pipelines stay within the t-disruptability bound.
    assert plain_res.disruptability() <= T
    assert digest_res.disruptability() <= T
    assert spoofed_res.disruptability() <= T
    # Spoofing inflates candidates but chains stay near 1 per source
    # (collision-resistant H1 prunes garbage).
    assert max(spoofed_res.candidate_stats.values()) >= max(
        digest_res.candidate_stats.values()
    )


def test_e6_table(benchmark):
    """Benchmark wrapper so the table regenerates under --benchmark-only."""
    benchmark.pedantic(_e6_table, rounds=1, iterations=1)
