"""Key-service daemon benchmark: sessions/sec and rounds/sec, daemon vs sync.

Measures what the `repro.serve` stack (PR 9) costs on top of driving the
same `SessionHost` synchronously in-process:

1. **Sessions/sec** — preshared ``n=6`` sessions opened (and closed)
   through the bare ``SessionHost`` vs through a live ``ServeDaemon``
   over localhost TCP (handshake, framing, event loop all on the clock).
2. **Rounds/sec** — steady-state message traffic (``send`` + ``flush``,
   one emulated round per message) against one hot session, again bare
   host vs daemon round trips.

Before timing anything the script asserts the serve determinism claim:
a daemon multiplexing interleaved sessions produces per-session
deliveries **byte-identical** to a fresh synchronous ``SessionHost``
with the same seed driving the same scripts one session at a time — so
a correctness regression fails this benchmark even though the
throughput floors are the headline.

Run ``PYTHONPATH=src python benchmarks/bench_serve.py`` to regenerate
``benchmarks/BENCH_serve.json`` (the committed trajectory), or with
``--quick`` for the CI smoke invocation (smaller workloads, no file
written, non-zero exit if daemon throughput drops below the
``--min-sessions-per-sec`` / ``--min-rounds-per-sec`` floors).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import threading
import time
from pathlib import Path

from repro.serve import ServeDaemon, ServiceClient, SessionHost
from repro.serve import protocol as p

N = 6
EQUIV_SESSIONS = 12
EQUIV_SEED = 2008


# ---------------------------------------------------------------------------
# Equivalence first: daemon == synchronous drive, byte for byte.
# ---------------------------------------------------------------------------

def _session_script(name: str, index: int):
    ops = []
    for message_round in range(2):
        sender = (index + message_round) % N
        ops.append(("send", sender, b"%s:%d" % (name.encode(), message_round)))
        ops.append(("flush",))
    if index % 4 == 0:
        ops.append(("rekey", (N - 1,)))
        ops.append(("send", 0, b"%s:post" % name.encode()))
        ops.append(("flush",))
    return ops


def _apply(do, name, op):
    if op[0] == "send":
        do(p.SendMessage(name=name, sender=op[1], payload=op[2]))
    elif op[0] == "flush":
        do(p.Flush(name=name))
    elif op[0] == "rekey":
        do(p.Rekey(name=name, compromised=op[1]))


def _drain_all(do, name):
    return {
        member: do(
            p.DrainInbox(name=name, member=member, include_former=True)
        ).deliveries
        for member in range(N)
    }


def _daemon_client(seed):
    daemon = ServeDaemon(seed=seed)
    host, port = daemon.bind()
    thread = threading.Thread(target=daemon.run, daemon=True)
    thread.start()
    client = ServiceClient(host, port, name="bench")
    return daemon, thread, client


def assert_equivalence() -> None:
    names = [f"s{i:02d}" for i in range(EQUIV_SESSIONS)]
    scripts = {name: _session_script(name, i) for i, name in enumerate(names)}

    _daemon, thread, client = _daemon_client(EQUIV_SEED)
    via_daemon = {}
    with client:
        for name in names:
            client.open_session(name, n=N)
        longest = max(len(s) for s in scripts.values())
        for step in range(longest):  # interleave round-robin
            for name in names:
                if step < len(scripts[name]):
                    _apply(client.request, name, scripts[name][step])
        for name in names:
            via_daemon[name] = _drain_all(client.request, name)
        client.shutdown()
    thread.join(timeout=30)

    sync_host = SessionHost(seed=EQUIV_SEED)

    def do(request):
        response = sync_host.handle(1, request)
        assert not isinstance(response, p.Failure), response
        return response

    via_sync = {}
    for name in names:
        do(p.OpenSession(name=name, n=N))
        for op in scripts[name]:
            _apply(do, name, op)
        via_sync[name] = _drain_all(do, name)

    assert via_daemon == via_sync, "daemon deliveries diverged from sync drive"
    deliveries = sum(
        len(rows) for boxes in via_sync.values() for rows in boxes.values()
    )
    assert deliveries > 0
    print(
        f"equivalence OK: {EQUIV_SESSIONS} interleaved daemon sessions == "
        f"sync drive ({deliveries} deliveries, seed {EQUIV_SEED})"
    )


# ---------------------------------------------------------------------------
# Throughput.
# ---------------------------------------------------------------------------

def _time(fn, *, min_seconds: float) -> tuple[float, int]:
    """Run ``fn(iterations)`` long enough to trust the clock; return
    (seconds, iterations)."""
    iterations = 8
    while True:
        start = time.perf_counter()
        fn(iterations)
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            return elapsed, iterations
        iterations *= 4


def bench_host_sessions(min_seconds: float) -> float:
    host = SessionHost(seed=1)

    def run(iterations: int) -> None:
        for i in range(iterations):
            name = f"b{i}"
            host.handle(1, p.OpenSession(name=name, n=N))
            host.handle(1, p.CloseSession(name=name))

    elapsed, iterations = _time(run, min_seconds=min_seconds)
    return iterations / elapsed


def bench_daemon_sessions(min_seconds: float) -> float:
    _daemon, thread, client = _daemon_client(seed=1)
    try:
        with client:
            def run(iterations: int) -> None:
                for i in range(iterations):
                    name = f"b{i}"
                    client.open_session(name, n=N)
                    client.close_session(name)

            elapsed, iterations = _time(run, min_seconds=min_seconds)
            client.shutdown()
    finally:
        thread.join(timeout=30)
    return iterations / elapsed


def bench_host_rounds(min_seconds: float) -> float:
    host = SessionHost(seed=1)
    host.handle(1, p.OpenSession(name="hot", n=N))

    def run(iterations: int) -> None:
        for i in range(iterations):
            host.handle(1, p.SendMessage(name="hot", sender=i % N, payload=b"x"))
            host.handle(1, p.Flush(name="hot"))

    elapsed, iterations = _time(run, min_seconds=min_seconds)
    return iterations / elapsed


def bench_daemon_rounds(min_seconds: float) -> float:
    _daemon, thread, client = _daemon_client(seed=1)
    try:
        with client:
            client.open_session("hot", n=N)

            def run(iterations: int) -> None:
                for i in range(iterations):
                    client.send("hot", i % N, b"x")
                    client.flush("hot")

            elapsed, iterations = _time(run, min_seconds=min_seconds)
            client.shutdown()
    finally:
        thread.join(timeout=30)
    return iterations / elapsed


def run_suite(min_seconds: float) -> dict:
    host_sessions = bench_host_sessions(min_seconds)
    daemon_sessions = bench_daemon_sessions(min_seconds)
    host_rounds = bench_host_rounds(min_seconds)
    daemon_rounds = bench_daemon_rounds(min_seconds)
    return {
        "sessions_per_sec": {
            "sync_host": round(host_sessions, 1),
            "daemon": round(daemon_sessions, 1),
            "daemon_overhead": round(host_sessions / daemon_sessions, 2),
        },
        "rounds_per_sec": {
            "sync_host": round(host_rounds, 1),
            "daemon": round(daemon_rounds, 1),
            "daemon_overhead": round(host_rounds / daemon_rounds, 2),
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: short timing windows, no JSON written",
    )
    parser.add_argument(
        "--min-sessions-per-sec",
        type=float,
        default=0.0,
        help="fail (exit 1) if daemon session churn drops below this",
    )
    parser.add_argument(
        "--min-rounds-per-sec",
        type=float,
        default=0.0,
        help="fail (exit 1) if daemon message throughput drops below this",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=Path(__file__).parent / "BENCH_serve.json",
        help="output path for the committed baseline",
    )
    args = parser.parse_args(argv)

    assert_equivalence()

    min_seconds = 0.1 if args.quick else 0.5
    results = run_suite(min_seconds)

    for section, row in results.items():
        cells = "  ".join(f"{k}={v}" for k, v in row.items())
        print(f"{section:>17}: {cells}")

    if not args.quick:
        payload = {
            "generated_by": "benchmarks/bench_serve.py",
            "workload": {
                "n": N,
                "mode": "preshared",
                "equivalence_sessions": EQUIV_SESSIONS,
                "rounds": "send+flush, one emulated round per message",
                "sessions": "open+close churn",
            },
            "python": platform.python_version(),
            "results": results,
        }
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")

    failed = False
    daemon_sessions = results["sessions_per_sec"]["daemon"]
    daemon_rounds = results["rounds_per_sec"]["daemon"]
    if daemon_sessions < args.min_sessions_per_sec:
        print(
            f"FAIL: daemon sessions/sec {daemon_sessions} "
            f"< {args.min_sessions_per_sec} floor",
            file=sys.stderr,
        )
        failed = True
    if daemon_rounds < args.min_rounds_per_sec:
        print(
            f"FAIL: daemon rounds/sec {daemon_rounds} "
            f"< {args.min_rounds_per_sec} floor",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print(
        f"OK: daemon sustains {daemon_sessions} sessions/sec, "
        f"{daemon_rounds} rounds/sec"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
