"""E10 — surrogates are what buy optimal resilience.

The paper's second insight (Section 5) and open question Q1 (Section 8):
without surrogates, the triangle-isolation adversary forces a disruption
graph of ``t`` edge-disjoint triangles — minimum vertex cover ``2t``.
f-AME's surrogate machinery reroutes around the isolation and stays at
``t``.  This ablation regenerates that exact separation for t in {1, 2, 3}.
"""

from __future__ import annotations

import pytest

from repro.adversary import TriangleIsolationAdversary
from repro.baselines import run_direct_exchange, run_no_surrogate
from repro.fame import run_fame
from repro.rng import RngRegistry

from bench_common import make_network, report


def triangle_workload(t):
    triples = [(3 * i, 3 * i + 1, 3 * i + 2) for i in range(t)]
    edges = [(a, b) for tr in triples for a in tr for b in tr if a != b]
    edges += [(30 + i, 50 + i) for i in range(6)]
    return triples, edges


def run_all(t, seed=0):
    triples, edges = triangle_workload(t)
    n = max(80, 3 * (t + 1) ** 2 + 3 * (t + 1) + 60)

    net_d = make_network(n, t + 1, t, adversary=TriangleIsolationAdversary(triples))
    direct = run_direct_exchange(net_d, edges, passes=5)

    net_ns = make_network(n, t + 1, t, adversary=TriangleIsolationAdversary(triples))
    nosur = run_no_surrogate(net_ns, edges, rng=RngRegistry(seed=seed))

    net_f = make_network(n, t + 1, t, adversary=TriangleIsolationAdversary(triples))
    fame = run_fame(net_f, edges, rng=RngRegistry(seed=seed))
    return direct, nosur, fame


@pytest.mark.parametrize("t", [1, 2, 3])
def test_ablation(benchmark, t):
    direct, nosur, fame = benchmark.pedantic(
        run_all, args=(t,), rounds=1, iterations=1
    )
    benchmark.extra_info.update({
        "t": t,
        "direct_disruptability": direct.disruptability(),
        "no_surrogate_disruptability": nosur.disruptability(),
        "fame_disruptability": fame.disruptability(),
    })
    assert direct.disruptability() == 2 * t
    assert nosur.disruptability() == 2 * t
    assert fame.disruptability() <= t


def _e10_table():
    rows = []
    for t in (1, 2, 3):
        direct, nosur, fame = run_all(t, seed=t)
        rows.append([
            t, direct.disruptability(), nosur.disruptability(),
            fame.disruptability(), 2 * t, t,
        ])
        assert direct.disruptability() == 2 * t
        assert nosur.disruptability() == 2 * t
        assert fame.disruptability() <= t
    report(
        "E10 — triangle-isolation attack: surrogate ablation",
        ["t", "direct exchange", "no-surrogate", "f-AME",
         "theory (no surrogates)", "theory (f-AME)"],
        rows,
    )


def test_e10_table(benchmark):
    """Benchmark wrapper so the table regenerates under --benchmark-only."""
    benchmark.pedantic(_e10_table, rounds=1, iterations=1)
