"""E9 — Section 2 / [13]: oblivious gossip is slow and unauthenticated.

Regenerates the related-work comparison: at ``t = 1`` the oblivious gossip
baseline's completion time grows super-linearly in ``n`` (the [13] bound is
Θ(n²/C²) for their algorithm; our uniform variant shows the same
super-linear shape), while f-AME solves a full exchange workload in time
linear in the number of pairs.  Alongside speed, the table records the
security gap: gossip accepts spoofed rumors, f-AME never does.
"""

from __future__ import annotations

import random

import pytest

from repro.adversary import RandomJammer, SpoofingAdversary
from repro.analysis.complexity import fit_power_law
from repro.baselines import run_oblivious_gossip
from repro.fame import run_fame
from repro.radio.messages import Message
from repro.rng import RngRegistry

from bench_common import make_network, report


def gossip_run(n, seed, adversary=None, max_rounds=400_000):
    net = make_network(n, 2, 1, adversary=adversary)
    return run_oblivious_gossip(
        net, RngRegistry(seed=seed), max_rounds=max_rounds
    )


def fame_run(n, seed):
    net = make_network(n, 2, 1, adversary=RandomJammer(random.Random(seed)))
    edges = [(i, (i + 1) % n) for i in range(n)]  # n "rumor" deliveries
    return run_fame(net, edges, rng=RngRegistry(seed=seed)), edges


@pytest.mark.parametrize("n", [8, 12, 16])
def test_gossip_completion(benchmark, n):
    res = benchmark.pedantic(gossip_run, args=(n, n), rounds=1, iterations=1)
    benchmark.extra_info.update({"n": n, "rounds": res.rounds})
    assert res.completed


def _e9_table():
    # f-AME needs the Section 5.4 population bound (n >= 17 at t = 1), so
    # the head-to-head sweep starts at n = 18; the smaller gossip-only
    # points live in test_gossip_completion.
    rows, ns, gossip_rounds = [], [], []
    for n in (18, 24, 32):
        g = gossip_run(n, seed=n)
        f, edges = fame_run(n, seed=n)
        rows.append([
            n, g.rounds, "yes" if g.completed else "no",
            f.rounds, len(edges), round(f.rounds / len(edges), 1),
        ])
        ns.append(n)
        gossip_rounds.append(g.rounds)
        assert g.completed
    report(
        "E9 / [13] — oblivious gossip vs f-AME at t=1, C=2",
        ["n", "gossip rounds", "done", "f-AME rounds", "pairs",
         "f-AME rounds/pair"],
        rows,
    )
    fit = fit_power_law(ns, gossip_rounds)
    print(f"gossip rounds exponent vs n (theory >= 1, towards 2): {fit.exponent:.2f}")
    # Super-linear growth in n — the qualitative gap the paper cites.
    assert fit.exponent > 1.1


def _e9_security_gap():
    victim = 5

    def forge(view, channel):
        return Message(
            kind="oblivious-rumor", sender=victim, payload=("rumor", victim)
        )

    res = gossip_run(
        10, seed=1,
        adversary=SpoofingAdversary(
            random.Random(2), forge=forge, target_scheduled=False
        ),
        max_rounds=2_000,
    )
    poisoned = sum(
        1
        for v, known in enumerate(res.knowledge)
        if v != victim and victim in known
    )
    rows = [[10, poisoned, "accepted blindly", "rejected by schedule"]]
    report(
        "E9b — spoofed rumor acceptance",
        ["n", "nodes accepting forged rumor", "gossip", "f-AME"],
        rows,
    )
    assert poisoned > 0


def test_e9_table(benchmark):
    """Benchmark wrapper so the table regenerates under --benchmark-only."""
    benchmark.pedantic(_e9_table, rounds=1, iterations=1)


def test_e9_security_gap(benchmark):
    """Benchmark wrapper so the table regenerates under --benchmark-only."""
    benchmark.pedantic(_e9_security_gap, rounds=1, iterations=1)
