"""E7 — Section 6: group key in O(n t^3 log n) rounds, >= n - t holders.

Sweeps ``n`` at fixed ``t`` and checks that (a) at least ``n - t`` nodes
adopt the canonical group key under jamming, (b) the total cost grows
linearly in ``n`` (the dominant Part 1), and (c) Part 1 dominates Parts
2-3 as the analysis says.

It also meters the honest wire size each part ships
(``NetworkMetrics.payload_units`` deltas, recorded per part on
``GroupKeyResult``) — in particular the Part 2 leader-spanner
dissemination epochs, whose full per-round ciphertext payloads are the
group-key candidate for the delta-frame treatment the parallel feedback
merge already received (ROADMAP: "Delta frames for other bulky
payloads").  This is the measurement baseline only; the wire format is
unchanged.
"""

from __future__ import annotations

import random

import pytest

from repro.adversary import RandomJammer
from repro.analysis.complexity import fit_power_law
from repro.crypto.dh import TEST_GROUP_64
from repro.groupkey import establish_group_key
from repro.rng import RngRegistry

from bench_common import make_network, report


def run_one(n, t, seed):
    net = make_network(
        n, t + 1, t, adversary=RandomJammer(random.Random(seed))
    )
    return establish_group_key(
        net, RngRegistry(seed=seed), group=TEST_GROUP_64
    )


@pytest.mark.parametrize("n", [17, 24, 32])
def test_groupkey_n_sweep(benchmark, n):
    res = benchmark.pedantic(run_one, args=(n, 1, n), rounds=1, iterations=1)
    benchmark.extra_info.update(res.summary())
    assert len(res.holders()) >= n - 1


def test_groupkey_t2(benchmark):
    res = benchmark.pedantic(run_one, args=(40, 2, 7), rounds=1, iterations=1)
    benchmark.extra_info.update(res.summary())
    assert len(res.holders()) >= 40 - 2


def _e7_table():
    rows, ns, totals = [], [], []
    for n in (17, 24, 32, 48):
        res = run_one(n, 1, seed=n)
        s = res.summary()
        rows.append([
            n, 1, s["pairwise_established"], s["completed_leaders"],
            s["holders"], s["part1_rounds"], s["part2_rounds"],
            s["part3_rounds"], s["total_rounds"],
        ])
        ns.append(n)
        totals.append(s["total_rounds"])
        assert s["holders"] >= n - 1
        # Part 1 (f-AME over the spanner) dominates, as the paper claims.
        assert s["part1_rounds"] > s["part2_rounds"] + s["part3_rounds"]
    res_t2 = run_one(40, 2, seed=99)
    s = res_t2.summary()
    rows.append([
        40, 2, s["pairwise_established"], s["completed_leaders"],
        s["holders"], s["part1_rounds"], s["part2_rounds"],
        s["part3_rounds"], s["total_rounds"],
    ])
    assert s["holders"] >= 38
    report(
        "E7 / Section 6 — group-key establishment under random jamming",
        ["n", "t", "pair keys", "leaders done", "holders",
         "part1", "part2", "part3", "total rounds"],
        rows,
    )
    fit = fit_power_law(ns, totals)
    print(f"total-rounds exponent vs n (theory 1.0): {fit.exponent:.3f}")
    assert 0.7 < fit.exponent < 1.4


def test_e7_table(benchmark):
    """Benchmark wrapper so the table regenerates under --benchmark-only."""
    benchmark.pedantic(_e7_table, rounds=1, iterations=1)


def _payload_table():
    """Wire-size baseline for the group-key parts (spanner epochs incl.).

    Records ``payload_units`` per part and per round so the future
    delta-frame PR has a committed "before" to beat.  Part 2's epochs
    retransmit the same sealed leader key every round of every pair's
    epoch — the structural redundancy a digest/delta encoding removes —
    so its per-round payload is asserted to be the heaviest.
    """
    rows = []
    for n in (17, 24, 32):
        res = run_one(n, 1, seed=n)
        s = res.summary()
        per_round2 = s["part2_payload_units"] / max(1, s["part2_rounds"])
        rows.append([
            n, 1,
            s["part1_payload_units"], s["part2_payload_units"],
            s["part3_payload_units"], s["total_payload_units"],
            f"{per_round2:.2f}",
        ])
        assert s["part2_payload_units"] > 0, "spanner epochs unmetered"
        assert s["total_payload_units"] == (
            s["part1_payload_units"] + s["part2_payload_units"]
            + s["part3_payload_units"]
        )
        # Part 2 ships a full sealed key every transmit round: its
        # per-round payload dominates the gossip-style Part 3 reports.
        per_round3 = s["part3_payload_units"] / max(1, s["part3_rounds"])
        assert per_round2 > per_round3
    report(
        "E7b / Section 6 — group-key payload baseline "
        "(NetworkMetrics.payload_units; spanner epochs = part2)",
        ["n", "t", "part1 payload", "part2 payload", "part3 payload",
         "total payload", "part2/round"],
        rows,
    )


def test_e7_payload_baseline(benchmark):
    """Benchmark wrapper: regenerates the payload baseline table."""
    benchmark.pedantic(_payload_table, rounds=1, iterations=1)
