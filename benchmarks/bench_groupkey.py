"""E7 — Section 6: group key in O(n t^3 log n) rounds, >= n - t holders.

Sweeps ``n`` at fixed ``t`` and checks that (a) at least ``n - t`` nodes
adopt the canonical group key under jamming, (b) the total cost grows
linearly in ``n`` (the dominant Part 1), and (c) Part 1 dominates Parts
2-3 as the analysis says.
"""

from __future__ import annotations

import random

import pytest

from repro.adversary import RandomJammer
from repro.analysis.complexity import fit_power_law
from repro.crypto.dh import TEST_GROUP_64
from repro.groupkey import establish_group_key
from repro.rng import RngRegistry

from bench_common import make_network, report


def run_one(n, t, seed):
    net = make_network(
        n, t + 1, t, adversary=RandomJammer(random.Random(seed))
    )
    return establish_group_key(
        net, RngRegistry(seed=seed), group=TEST_GROUP_64
    )


@pytest.mark.parametrize("n", [17, 24, 32])
def test_groupkey_n_sweep(benchmark, n):
    res = benchmark.pedantic(run_one, args=(n, 1, n), rounds=1, iterations=1)
    benchmark.extra_info.update(res.summary())
    assert len(res.holders()) >= n - 1


def test_groupkey_t2(benchmark):
    res = benchmark.pedantic(run_one, args=(40, 2, 7), rounds=1, iterations=1)
    benchmark.extra_info.update(res.summary())
    assert len(res.holders()) >= 40 - 2


def _e7_table():
    rows, ns, totals = [], [], []
    for n in (17, 24, 32, 48):
        res = run_one(n, 1, seed=n)
        s = res.summary()
        rows.append([
            n, 1, s["pairwise_established"], s["completed_leaders"],
            s["holders"], s["part1_rounds"], s["part2_rounds"],
            s["part3_rounds"], s["total_rounds"],
        ])
        ns.append(n)
        totals.append(s["total_rounds"])
        assert s["holders"] >= n - 1
        # Part 1 (f-AME over the spanner) dominates, as the paper claims.
        assert s["part1_rounds"] > s["part2_rounds"] + s["part3_rounds"]
    res_t2 = run_one(40, 2, seed=99)
    s = res_t2.summary()
    rows.append([
        40, 2, s["pairwise_established"], s["completed_leaders"],
        s["holders"], s["part1_rounds"], s["part2_rounds"],
        s["part3_rounds"], s["total_rounds"],
    ])
    assert s["holders"] >= 38
    report(
        "E7 / Section 6 — group-key establishment under random jamming",
        ["n", "t", "pair keys", "leaders done", "holders",
         "part1", "part2", "part3", "total rounds"],
        rows,
    )
    fit = fit_power_law(ns, totals)
    print(f"total-rounds exponent vs n (theory 1.0): {fit.exponent:.3f}")
    assert 0.7 < fit.exponent < 1.4


def test_e7_table(benchmark):
    """Benchmark wrapper so the table regenerates under --benchmark-only."""
    benchmark.pedantic(_e7_table, rounds=1, iterations=1)
