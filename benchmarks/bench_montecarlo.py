"""Monte Carlo harness benchmark: serial vs multiprocess trial throughput.

The w.h.p. sweeps (disruptability, Figure 3) run many independent seeded
f-AME executions; ``repro.experiments.MonteCarloRunner`` fans them over a
``multiprocessing`` pool.  This benchmark measures trials/sec of the same
sweep at ``--workers 1`` versus ``--workers N`` and — **before** reporting
any speedup — asserts that the two runs' merged metrics and per-trial
outcomes are byte-identical, so a determinism regression fails the bench
rather than inflating it.

Run ``PYTHONPATH=src python benchmarks/bench_montecarlo.py`` to regenerate
``benchmarks/BENCH_montecarlo.json`` (n=256, 64 trials, 4 workers);
``--quick`` is the CI smoke mode (n=64, 16 trials, 2 workers, no JSON).
The ``--min-speedup`` floor is enforced only when the machine actually has
at least ``--workers`` CPUs (``os.cpu_count()``): a process pool cannot
beat serial on fewer cores, and the committed baseline records the core
count alongside the numbers so they stay interpretable.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.experiments import MonteCarloRunner


def run_sweep(
    n: int, trials: int, workers: int, pairs: int, seed: int
) -> tuple[dict, float]:
    """One full sweep; returns (report dict, trials/sec)."""
    runner = MonteCarloRunner(
        "fame",
        trials,
        seed=seed,
        workers=workers,
        n=n,
        channels=2,
        t=1,
        pairs=pairs,
        adversary="schedule",
    )
    start = time.perf_counter()
    report = runner.run()
    elapsed = time.perf_counter() - start
    return report.as_dict(), trials / elapsed


def assert_equivalent(serial: dict, parallel: dict, n: int) -> None:
    """Serial and parallel sweeps must agree before any timing is trusted."""
    for section in ("merged_metrics", "trial_outcomes", "success_rate",
                    "disruptability"):
        a = json.dumps(serial[section], sort_keys=True)
        b = json.dumps(parallel[section], sort_keys=True)
        if a != b:
            raise AssertionError(
                f"serial/parallel divergence at n={n} in {section!r}:\n"
                f"  serial:   {a[:200]}\n  parallel: {b[:200]}"
            )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Monte Carlo harness throughput benchmark"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: small n, few trials, no JSON written",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="pool size for the parallel sweep (default: 4, quick: 2)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help="fail (exit 1) if the largest-n parallel speedup drops below "
        "this — enforced only when os.cpu_count() >= workers",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        help="output path for the JSON baseline (default: "
        "benchmarks/BENCH_montecarlo.json; written automatically in full "
        "mode, and in --quick mode only when this flag is given)",
    )
    args = parser.parse_args(argv)
    json_path = (
        args.json
        if args.json is not None
        else Path(__file__).parent / "BENCH_montecarlo.json"
    )
    write_json = not args.quick or args.json is not None

    workers = (
        args.workers if args.workers is not None
        else (2 if args.quick else 4)
    )
    # (n, trials, pairs): trials >= 64 at n >= 256 for the committed run.
    sweeps = [(64, 16, 16)] if args.quick else [(64, 64, 16), (256, 64, 16)]
    seed = 7
    cpu_count = os.cpu_count() or 1

    results: dict[str, dict] = {}
    for n, trials, pairs in sweeps:
        serial, serial_tps = run_sweep(n, trials, 1, pairs, seed)
        parallel, parallel_tps = run_sweep(n, trials, workers, pairs, seed)
        assert_equivalent(serial, parallel, n)
        results[str(n)] = {
            "trials": trials,
            "pairs": pairs,
            "workers": workers,
            "chunksize": parallel["chunksize"],
            "serial_trials_per_sec": round(serial_tps, 2),
            "parallel_trials_per_sec": round(parallel_tps, 2),
            "speedup": round(parallel_tps / serial_tps, 2),
        }
        print(
            f"n={n:>4}  trials={trials}  serial={serial_tps:.2f}/s  "
            f"{workers} workers={parallel_tps:.2f}/s  "
            f"speedup={parallel_tps / serial_tps:.2f}x  (equivalence OK)"
        )

    n_max = str(max(n for n, _t, _p in sweeps))
    speedup = results[n_max]["speedup"]
    enforceable = cpu_count >= workers
    if write_json:
        payload = {
            "generated_by": "benchmarks/bench_montecarlo.py",
            "workload": {
                "workload": "fame",
                "adversary": "schedule",
                "channels": 2,
                "t": 1,
                "seed": seed,
                "equivalence": "serial vs parallel merged metrics, trial "
                "outcomes, Wilson intervals, and disruptability histograms "
                "asserted byte-identical before timing",
            },
            "python": platform.python_version(),
            "cpu_count": cpu_count,
            "speedup_floor_enforced": enforceable,
            "results": results,
        }
        json_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {json_path}")

    if not enforceable:
        print(
            f"NOTE: {cpu_count} CPU(s) < {workers} workers — a process "
            f"pool cannot beat serial here; speedup floor not enforced "
            f"(measured {speedup}x at n={n_max}, equivalence still asserted)"
        )
        return 0
    if speedup < args.min_speedup:
        print(
            f"FAIL: parallel speedup at n={n_max} is {speedup}x "
            f"(< {args.min_speedup}x floor with {workers} workers on "
            f"{cpu_count} CPUs)",
            file=sys.stderr,
        )
        return 1
    print(f"\nOK: parallel speedup at n={n_max} is {speedup}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
