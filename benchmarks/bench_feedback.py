"""E2 — Lemma 5: communication-feedback costs O(t^2 log n) and is correct.

Measures the radio-round cost of one full feedback invocation across a
``t`` sweep (fixed n) and an ``n`` sweep (fixed t), checks the measured
growth against the formula's shape, and verifies output correctness under
a full-budget jammer on every run.

Run ``PYTHONPATH=src python benchmarks/bench_feedback.py`` to measure the
schedule-compiled pipeline against the per-round reference implementation
(rounds/sec of wall time, identical seeded outputs asserted on every run)
and regenerate ``benchmarks/BENCH_feedback.json``; ``--quick`` is the CI
smoke mode (small n, non-zero exit if the n-max speedup drops below
``--min-speedup``).

The suite also measures the digest/delta wire encoding of the parallel
merge (``delta_frames=True``, the default in the library) against the
full-frame reference on a slots-heavy workload where knowledge frames
actually grow: seeded delta==full equivalence of the ``D`` maps and round
counts is asserted before any timing, then rounds/sec and per-invocation
payload units are compared.  ``--delta`` runs only that comparison (the CI
delta smoke), failing if the speedup drops below ``--min-delta-speedup``
or the delta path stops shrinking payloads.

``--draws`` isolates the hop sampler itself: whole hop matrices drawn via
:class:`repro.rng.BlockDrawer` against the historical sequential
``draw_uniform_indices`` loop, with byte identity (values and post-draw
generator state) asserted on seeded stream copies before timing; the CI
smoke fails if the block speedup drops below ``--min-draw-speedup``.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path

import pytest

from repro.adversary import RandomJammer
from repro.analysis.complexity import normalized_cost
from repro.feedback.parallel import run_parallel_feedback
from repro.feedback.protocol import run_feedback
from repro.feedback.witness import WitnessAssignment
from repro.params import ProtocolParameters, log2n
from repro.radio import ScheduleShapeCache
from repro.rng import BlockDrawer, RngRegistry, draw_uniform_indices

from bench_common import make_network, report


def run_one(n, t, seed):
    channels = t + 1
    net = make_network(
        n, channels, t, adversary=RandomJammer(random.Random(seed))
    )
    sets = tuple(
        tuple(range(slot * channels, (slot + 1) * channels))
        for slot in range(channels)
    )
    wa = WitnessAssignment(sets=sets, channels=tuple(range(channels)))
    truth = tuple(slot % 2 == 0 for slot in range(channels))
    flags = {w: truth[slot] for slot, ws in enumerate(sets) for w in ws}
    out = run_feedback(
        net, wa, flags, list(range(n)), RngRegistry(seed=seed)
    )
    expected = {s for s, f in enumerate(truth) if f}
    correct = all(d == expected for d in out.values())
    return net.metrics.rounds, correct


@pytest.mark.parametrize("t", [1, 2, 3])
def test_feedback_cost_t_sweep(benchmark, t):
    n = 80
    rounds, correct = benchmark.pedantic(
        run_one, args=(n, t, t), rounds=3, iterations=1
    )
    benchmark.extra_info.update({"n": n, "t": t, "rounds": rounds})
    assert correct


@pytest.mark.parametrize("n", [40, 80, 160])
def test_feedback_cost_n_sweep(benchmark, n):
    t = 2
    rounds, correct = benchmark.pedantic(
        run_one, args=(n, t, n), rounds=3, iterations=1
    )
    benchmark.extra_info.update({"n": n, "t": t, "rounds": rounds})
    assert correct


def _e2_table():
    rows, t_points = [], []
    for t in (1, 2, 3, 4):
        n = 120
        rounds, correct = run_one(n, t, seed=t)
        predicted = (t + 1) ** 2 * log2n(n)  # slots * C/(C-t) * log n shape
        rows.append([n, t, rounds, round(predicted, 1),
                     round(rounds / predicted, 2), correct])
        t_points.append((predicted, rounds))
    n_points = []
    for n in (40, 80, 160, 320):
        t = 2
        rounds, correct = run_one(n, t, seed=n)
        predicted = (t + 1) ** 2 * log2n(n)
        rows.append([n, t, rounds, round(predicted, 1),
                     round(rounds / predicted, 2), correct])
        n_points.append((predicted, rounds))
    report(
        "E2 / Lemma 5 — feedback rounds vs t^2 log n",
        ["n", "t", "rounds", "t²·log n", "ratio", "correct"],
        rows,
    )
    # Shape: measured/predicted stays within a 3x band across the sweep.
    for points in (t_points, n_points):
        ratios = normalized_cost(
            [rounds for _p, rounds in points], [p for p, _r in points]
        )
        assert max(ratios) / min(ratios) < 3.0
    assert all(row[-1] for row in rows)


def test_e2_table(benchmark):
    """Benchmark wrapper so the table regenerates under --benchmark-only."""
    benchmark.pedantic(_e2_table, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# Pipeline regression harness: compiled schedule vs per-round reference.
# ---------------------------------------------------------------------------


def _serial_workload(n: int, t: int, seed: int, compiled: bool, shape_cache=None):
    """One full serial feedback invocation; returns (rounds, D-map)."""
    channels = t + 1
    net = make_network(
        n, channels, t, adversary=RandomJammer(random.Random(seed))
    )
    sets = tuple(
        tuple(range(slot * channels, (slot + 1) * channels))
        for slot in range(channels)
    )
    wa = WitnessAssignment(sets=sets, channels=tuple(range(channels)))
    flags = {w: (slot % 2 == 0) for slot, ws in enumerate(sets) for w in ws}
    out = run_feedback(
        net,
        wa,
        flags,
        list(range(n)),
        RngRegistry(seed=seed),
        compiled=compiled,
        shape_cache=shape_cache,
    )
    return net.metrics.rounds, out


def _parallel_workload(n: int, t: int, seed: int, compiled: bool, shape_cache=None):
    """One full parallel-merge invocation; returns (rounds, D-map)."""
    block = 2 * t
    slots = 4
    channels = max(2 * t * t, (slots // 2) * block)
    net = make_network(
        n, channels, t, adversary=RandomJammer(random.Random(seed))
    )
    witness_sets = [
        tuple(range(s * block, (s + 1) * block)) for s in range(slots)
    ]
    flags = {w: (s != 1) for s, ws in enumerate(witness_sets) for w in ws}
    out = run_parallel_feedback(
        net,
        witness_sets,
        flags,
        list(range(n)),
        RngRegistry(seed=seed),
        compiled=compiled,
        shape_cache=shape_cache,
    )
    return net.metrics.rounds, out


_DELTA_PARAMS = ProtocolParameters(validate_actions=False).validate()


def _delta_workload(n: int, t: int, seed: int, delta: bool):
    """A slots-heavy parallel merge where knowledge frames actually grow.

    32 witness sets: frames reach 32 slots at the root of the merge tree
    and in the final dissemination to ~n listeners, which is where the
    full-frame encoding pays O(frame) per listener per decode and the
    delta encoding pays one in-place application plus O(1) skips.  Action
    validation is gated off (the PR 1 benchmark fast path, as in
    bench_engine) so the measurement concentrates on the merge itself.
    Returns ``(rounds, D-map, payload_units)``.
    """
    block = 2 * t
    slots = 32
    channels = max(2 * t * t, (slots // 2) * block)
    net = make_network(
        n,
        channels,
        t,
        adversary=RandomJammer(random.Random(seed)),
        params=_DELTA_PARAMS,
    )
    witness_sets = [
        tuple(range(s * block, (s + 1) * block)) for s in range(slots)
    ]
    flags = {w: (s % 4 != 1) for s, ws in enumerate(witness_sets) for w in ws}
    out = run_parallel_feedback(
        net,
        witness_sets,
        flags,
        list(range(n)),
        RngRegistry(seed=seed),
        delta_frames=delta,
    )
    return net.metrics.rounds, out, net.metrics.payload_units


def _rounds_per_sec(workload, n, t, *, compiled, min_seconds):
    """Wall-clock rounds/sec of repeated full invocations.

    The compiled path holds one :class:`ScheduleShapeCache` across the
    invocations — the steady-state caller representation (the f-AME
    protocol object and the baseline drivers keep a cache for exactly
    this reason), so the timing covers warm-shape reuse rather than
    rebuilding bucket blocks and stream tables from scratch every call.
    """
    shapes = ScheduleShapeCache() if compiled else None
    start = time.perf_counter()
    rounds = 0
    invocations = 0
    while True:
        done, _ = workload(
            n, t, seed=invocations, compiled=compiled, shape_cache=shapes
        )
        rounds += done
        invocations += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            return rounds / elapsed, rounds // invocations


def _delta_rounds_per_sec(n, t, *, delta, min_seconds):
    """Like :func:`_rounds_per_sec` for the encoding-comparison workload."""
    start = time.perf_counter()
    rounds = 0
    invocations = 0
    while True:
        done, _, _ = _delta_workload(n, t, seed=invocations, delta=delta)
        rounds += done
        invocations += 1
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            return rounds / elapsed


def _draws_per_sec(draw_matrix, streams, count, min_seconds):
    """Wall-clock hop draws/sec of repeated whole-matrix materializations.

    The streams are created once and keep advancing — both samplers
    consume the identical ``getrandbits`` sequence (the module invariant),
    so the measurement isolates draw mechanics from stream construction.
    """
    start = time.perf_counter()
    draws = 0
    per_pass = len(streams) * count
    while True:
        draw_matrix(streams, count)
        draws += per_pass
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            return draws / elapsed


def run_draw_suite(sizes: list[int], t: int, min_seconds: float) -> dict:
    """Isolated hop sampling: block draws vs the sequential loop.

    One "matrix" is the serial pipeline's unit of work — ``count`` hops
    for each of ``n`` listener streams over ``t + 1`` channels.  Byte
    identity (values AND post-draw generator state) is asserted on seeded
    stream copies before anything is timed.
    """
    nchan = t + 1
    count = 64
    drawer = BlockDrawer(nchan)

    def loop_matrix(streams, count):
        return [draw_uniform_indices(s, nchan, count) for s in streams]

    results: dict = {}
    for n in sizes:
        a = [random.Random(s) for s in range(n)]
        b = [random.Random(s) for s in range(n)]
        assert drawer.matrix(a, count) == loop_matrix(b, count), (
            f"block/loop draw divergence at n={n}"
        )
        assert [s.getstate() for s in a] == [s.getstate() for s in b], (
            f"block/loop generator-state divergence at n={n}"
        )
        loop = _draws_per_sec(loop_matrix, a, count, min_seconds)
        block = _draws_per_sec(drawer.matrix, b, count, min_seconds)
        results[str(n)] = {
            "loop_draws_per_sec": round(loop, 1),
            "block_draws_per_sec": round(block, 1),
            "speedup": round(block / loop, 2),
        }
    return results


def run_delta_suite(sizes: list[int], t: int, min_seconds: float) -> dict:
    """Delta vs full-frame encoding: equivalence first, then throughput."""
    results: dict = {}
    for n in sizes:
        # Equivalence gate: identical seeded D maps and round counts (the
        # payload counter is the one thing the encoding changes).
        r_full, out_full, units_full = _delta_workload(n, t, 0, delta=False)
        r_delta, out_delta, units_delta = _delta_workload(n, t, 0, delta=True)
        assert r_full == r_delta and out_full == out_delta, (
            f"delta/full-frame divergence at n={n}"
        )
        assert units_delta < units_full, (
            f"delta frames stopped shrinking payloads at n={n} "
            f"({units_delta} vs {units_full})"
        )
        full = _delta_rounds_per_sec(n, t, delta=False, min_seconds=min_seconds)
        fast = _delta_rounds_per_sec(n, t, delta=True, min_seconds=min_seconds)
        results[str(n)] = {
            "full_frames": round(full, 1),
            "delta_frames": round(fast, 1),
            "speedup": round(fast / full, 2),
            "payload_units_full": units_full,
            "payload_units_delta": units_delta,
            "payload_reduction": round(units_full / units_delta, 2),
        }
    return results


def run_pipeline_suite(sizes: list[int], t: int, min_seconds: float) -> dict:
    results: dict = {
        "serial_feedback_rounds_per_sec": {},
        "parallel_feedback_rounds_per_sec": {},
    }
    for n in sizes:
        # Seeded equivalence is asserted before timing anything: the
        # speedup only counts if the outputs are identical.
        for workload in (_serial_workload, _parallel_workload):
            r_legacy, out_legacy = workload(n, t, seed=0, compiled=False)
            r_fast, out_fast = workload(n, t, seed=0, compiled=True)
            assert r_legacy == r_fast and out_legacy == out_fast, (
                f"compiled/per-round divergence at n={n} ({workload.__name__})"
            )
        legacy, per_inv = _rounds_per_sec(
            _serial_workload, n, t, compiled=False, min_seconds=min_seconds
        )
        fast, _ = _rounds_per_sec(
            _serial_workload, n, t, compiled=True, min_seconds=min_seconds
        )
        results["serial_feedback_rounds_per_sec"][str(n)] = {
            "per_round": round(legacy, 1),
            "compiled_schedule": round(fast, 1),
            "rounds_per_invocation": per_inv,
            "speedup": round(fast / legacy, 2),
        }
        legacy, per_inv = _rounds_per_sec(
            _parallel_workload, n, t, compiled=False, min_seconds=min_seconds
        )
        fast, _ = _rounds_per_sec(
            _parallel_workload, n, t, compiled=True, min_seconds=min_seconds
        )
        results["parallel_feedback_rounds_per_sec"][str(n)] = {
            "per_round": round(legacy, 1),
            "compiled_schedule": round(fast, 1),
            "rounds_per_invocation": per_inv,
            "speedup": round(fast / legacy, 2),
        }
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="feedback pipeline regression benchmark"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: small n, short timings, no JSON written",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="fail (exit 1) if the largest-n serial speedup drops below this",
    )
    parser.add_argument(
        "--delta",
        action="store_true",
        help="run only the delta-vs-full-frame encoding comparison "
        "(equivalence asserted before timing)",
    )
    parser.add_argument(
        "--min-delta-speedup",
        type=float,
        default=1.2,
        help="fail (exit 1) if the largest-n delta-frame speedup drops "
        "below this",
    )
    parser.add_argument(
        "--draws",
        action="store_true",
        help="run only the isolated hop-draw microbenchmark (block vs "
        "loop sampler, byte identity asserted before timing)",
    )
    parser.add_argument(
        "--min-draw-speedup",
        type=float,
        default=1.1,
        help="fail (exit 1) if the largest-n block-draw speedup drops "
        "below this",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=Path(__file__).parent / "BENCH_feedback.json",
        help="output path for the committed baseline",
    )
    args = parser.parse_args(argv)

    t = 3
    sizes = [256] if args.quick else [256, 1024]
    # Full-mode windows are long enough to average over host frequency /
    # contention cycles; short windows were observed to swing same-code
    # measurements by ±40% on shared machines.
    min_seconds = 0.3 if args.quick else 3.0
    n_max = str(max(sizes))

    # The plain --quick smoke keeps its historical scope (the compiled
    # pipeline); the encoding comparison runs under --delta and the hop
    # sampler under --draws (each its own CI smoke), and everything runs
    # in full baseline regenerations.
    only_suite = args.delta or args.draws
    delta_results = None
    if args.delta or not (args.quick or only_suite):
        delta_results = run_delta_suite(sizes, t, min_seconds)
    draw_results = None
    if args.draws or not (args.quick or only_suite):
        draw_results = run_draw_suite(sizes, t, min_seconds)
    results = None
    if not only_suite:
        results = run_pipeline_suite(sizes, t, min_seconds)
        for section, rows in results.items():
            print(f"\n=== {section} ===")
            for n, row in rows.items():
                cells = "  ".join(f"{k}={v}" for k, v in row.items())
                print(f"  n={n:>5}  {cells}")

    if delta_results is not None:
        print("\n=== parallel_feedback_delta_rounds_per_sec ===")
        for n, row in delta_results.items():
            cells = "  ".join(f"{k}={v}" for k, v in row.items())
            print(f"  n={n:>5}  {cells}")

    if draw_results is not None:
        print("\n=== hop_draws_per_sec ===")
        for n, row in draw_results.items():
            cells = "  ".join(f"{k}={v}" for k, v in row.items())
            print(f"  n={n:>5}  {cells}")

    if results is not None and not args.quick:
        payload = {
            "generated_by": "benchmarks/bench_feedback.py",
            "workload": {
                "t": t,
                "serial": "C=t+1 feedback channels, C slots, full-budget "
                "RandomJammer, keep_trace off (see _serial_workload)",
                "parallel": "4 witness sets of 2t, C=2t^2 channels, "
                "RandomJammer (see _parallel_workload)",
                "delta": "32 witness sets of 2t (frames grow to 32 slots), "
                "C=32t channels, RandomJammer, validation gated off; delta "
                "vs full-frame wire encoding, both compiled "
                "(see _delta_workload)",
                "draws": "isolated hop sampling: 64 hops per stream over "
                "t+1 channels for n streams, block drawer vs sequential "
                "draw_uniform_indices loop (see run_draw_suite)",
                "equivalence": "seeded compiled vs per-round outputs, "
                "seeded delta vs full-frame D maps/rounds/payload "
                "reduction, and block vs loop draw values + generator "
                "state, asserted identical before timing",
            },
            "python": platform.python_version(),
            "results": {
                **results,
                "parallel_feedback_delta_rounds_per_sec": delta_results,
                "hop_draws_per_sec": draw_results,
            },
        }
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.json}")

    failed = False
    if delta_results is not None:
        delta_speedup = delta_results[n_max]["speedup"]
        if delta_speedup < args.min_delta_speedup:
            print(
                f"FAIL: delta-frame speedup at n={n_max} is {delta_speedup}x "
                f"(< {args.min_delta_speedup}x floor)",
                file=sys.stderr,
            )
            failed = True
        else:
            print(
                f"\nOK: delta-frame speedup at n={n_max} is {delta_speedup}x"
            )

    if draw_results is not None:
        draw_speedup = draw_results[n_max]["speedup"]
        if draw_speedup < args.min_draw_speedup:
            print(
                f"FAIL: block-draw speedup at n={n_max} is {draw_speedup}x "
                f"(< {args.min_draw_speedup}x floor)",
                file=sys.stderr,
            )
            failed = True
        else:
            print(f"OK: block-draw speedup at n={n_max} is {draw_speedup}x")

    if results is not None:
        speedup = results["serial_feedback_rounds_per_sec"][n_max]["speedup"]
        if speedup < args.min_speedup:
            print(
                f"FAIL: serial feedback speedup at n={n_max} is {speedup}x "
                f"(< {args.min_speedup}x floor)",
                file=sys.stderr,
            )
            failed = True
        else:
            print(f"OK: serial feedback speedup at n={n_max} is {speedup}x")
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
