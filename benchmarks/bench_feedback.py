"""E2 — Lemma 5: communication-feedback costs O(t^2 log n) and is correct.

Measures the radio-round cost of one full feedback invocation across a
``t`` sweep (fixed n) and an ``n`` sweep (fixed t), checks the measured
growth against the formula's shape, and verifies output correctness under
a full-budget jammer on every run.
"""

from __future__ import annotations

import random

import pytest

from repro.adversary import RandomJammer
from repro.analysis.complexity import normalized_cost
from repro.feedback.protocol import run_feedback
from repro.feedback.witness import WitnessAssignment
from repro.params import log2n
from repro.rng import RngRegistry

from bench_common import make_network, report


def run_one(n, t, seed):
    channels = t + 1
    net = make_network(
        n, channels, t, adversary=RandomJammer(random.Random(seed))
    )
    sets = tuple(
        tuple(range(slot * channels, (slot + 1) * channels))
        for slot in range(channels)
    )
    wa = WitnessAssignment(sets=sets, channels=tuple(range(channels)))
    truth = tuple(slot % 2 == 0 for slot in range(channels))
    flags = {w: truth[slot] for slot, ws in enumerate(sets) for w in ws}
    out = run_feedback(
        net, wa, flags, list(range(n)), RngRegistry(seed=seed)
    )
    expected = {s for s, f in enumerate(truth) if f}
    correct = all(d == expected for d in out.values())
    return net.metrics.rounds, correct


@pytest.mark.parametrize("t", [1, 2, 3])
def test_feedback_cost_t_sweep(benchmark, t):
    n = 80
    rounds, correct = benchmark.pedantic(
        run_one, args=(n, t, t), rounds=3, iterations=1
    )
    benchmark.extra_info.update({"n": n, "t": t, "rounds": rounds})
    assert correct


@pytest.mark.parametrize("n", [40, 80, 160])
def test_feedback_cost_n_sweep(benchmark, n):
    t = 2
    rounds, correct = benchmark.pedantic(
        run_one, args=(n, t, n), rounds=3, iterations=1
    )
    benchmark.extra_info.update({"n": n, "t": t, "rounds": rounds})
    assert correct


def _e2_table():
    rows, t_points = [], []
    for t in (1, 2, 3, 4):
        n = 120
        rounds, correct = run_one(n, t, seed=t)
        predicted = (t + 1) ** 2 * log2n(n)  # slots * C/(C-t) * log n shape
        rows.append([n, t, rounds, round(predicted, 1),
                     round(rounds / predicted, 2), correct])
        t_points.append((predicted, rounds))
    n_points = []
    for n in (40, 80, 160, 320):
        t = 2
        rounds, correct = run_one(n, t, seed=n)
        predicted = (t + 1) ** 2 * log2n(n)
        rows.append([n, t, rounds, round(predicted, 1),
                     round(rounds / predicted, 2), correct])
        n_points.append((predicted, rounds))
    report(
        "E2 / Lemma 5 — feedback rounds vs t^2 log n",
        ["n", "t", "rounds", "t²·log n", "ratio", "correct"],
        rows,
    )
    # Shape: measured/predicted stays within a 3x band across the sweep.
    for points in (t_points, n_points):
        ratios = normalized_cost(
            [rounds for _p, rounds in points], [p for p, _r in points]
        )
        assert max(ratios) / min(ratios) < 3.0
    assert all(row[-1] for row in rows)


def test_e2_table(benchmark):
    """Benchmark wrapper so the table regenerates under --benchmark-only."""
    benchmark.pedantic(_e2_table, rounds=1, iterations=1)
