"""E5 — Theorem 2: no protocol beats t-disruptability; spoofing wins
against unscheduled randomness.

The simulating adversary runs a faithful copy of the sender with fake
content.  Against the purely randomized exchange strawman the receiver
accepts the forgery about half the time it hears anything (the executions
are equiprobable); against f-AME the same adversary never lands a forgery,
because the transmission schedule leaves spoofs nowhere to go.
"""

from __future__ import annotations

import random

import pytest

from repro.adversary import SimulatingAdversary
from repro.baselines import run_randomized_exchange
from repro.baselines.randomized_exchange import exchange_frame
from repro.fame import run_fame
from repro.radio.messages import Transmission
from repro.rng import RngRegistry

from bench_common import make_network, report

PAIR = (0, 10)
REAL = ("real-msg",)
FAKE = ("fake-msg",)


def simulator(view, rng):
    return Transmission(
        rng.randrange(view.channels), exchange_frame(*PAIR, FAKE)
    )


def strawman_trial(seed):
    net = make_network(
        20, 2, 1,
        adversary=SimulatingAdversary(random.Random(seed), [simulator]),
    )
    res = run_randomized_exchange(
        net, [PAIR], {PAIR: REAL}, rng=RngRegistry(seed=seed)
    )
    got = res.accepted.get(PAIR)
    return got


def fame_trial(seed):
    net = make_network(
        20, 2, 1,
        adversary=SimulatingAdversary(random.Random(seed), [simulator]),
    )
    res = run_fame(
        net, [PAIR, (2, 3), (4, 5)],
        messages={PAIR: REAL, (2, 3): "x", (4, 5): "y"},
        rng=RngRegistry(seed=seed),
    )
    return res.outcomes[PAIR]


def test_strawman_spoof_rate(benchmark):
    def run_many():
        outcomes = [strawman_trial(seed) for seed in range(60)]
        spoofs = sum(1 for o in outcomes if o == FAKE)
        delivered = sum(1 for o in outcomes if o is not None)
        return spoofs, delivered

    spoofs, delivered = benchmark.pedantic(run_many, rounds=1, iterations=1)
    benchmark.extra_info.update({"spoofs": spoofs, "delivered": delivered})
    assert delivered > 30
    assert spoofs / delivered > 0.2  # theory: ~0.5


def test_fame_spoof_rate(benchmark):
    def run_many():
        outcomes = [fame_trial(seed) for seed in range(15)]
        spoofs = sum(
            1 for o in outcomes if o.success and o.message != REAL
        )
        delivered = sum(1 for o in outcomes if o.success)
        return spoofs, delivered

    spoofs, delivered = benchmark.pedantic(run_many, rounds=1, iterations=1)
    benchmark.extra_info.update({"spoofs": spoofs, "delivered": delivered})
    assert spoofs == 0


def _e5_table():
    straw_outcomes = [strawman_trial(seed) for seed in range(60)]
    straw_delivered = sum(1 for o in straw_outcomes if o is not None)
    straw_spoofed = sum(1 for o in straw_outcomes if o == FAKE)

    fame_outcomes = [fame_trial(seed) for seed in range(15)]
    fame_delivered = sum(1 for o in fame_outcomes if o.success)
    fame_spoofed = sum(
        1 for o in fame_outcomes if o.success and o.message != REAL
    )
    rows = [
        ["randomized-exchange", len(straw_outcomes), straw_delivered,
         straw_spoofed,
         round(straw_spoofed / max(1, straw_delivered), 2), "~0.5"],
        ["f-AME", len(fame_outcomes), fame_delivered, fame_spoofed,
         round(fame_spoofed / max(1, fame_delivered), 2), "0.0"],
    ]
    report(
        "E5 / Theorem 2 — spoof acceptance under the simulating adversary",
        ["protocol", "trials", "delivered", "spoofed", "spoof rate", "theory"],
        rows,
    )
    assert straw_spoofed > 0
    assert fame_spoofed == 0


def test_e5_table(benchmark):
    """Benchmark wrapper so the table regenerates under --benchmark-only."""
    benchmark.pedantic(_e5_table, rounds=1, iterations=1)
