"""E1 — Theorem 4: greedy-removal finishes in O(|E|) moves.

Regenerates the claim by playing the abstract game on several graph
families against the strongest referee and checking that moves/|E| stays
bounded by the theorem's constant 3 (|E| removals + at most 2|E| stars),
and roughly flat as |E| grows.
"""

from __future__ import annotations

import pytest

from repro.analysis.complexity import fit_power_law
from repro.game.engine import StarredEdgeRemovalGame
from repro.game.graph import GameGraph
from repro.game.referees import AdversarialReferee, SingleGrantReferee

from bench_common import report


def complete(n):
    return [(v, w) for v in range(n) for w in range(n) if v != w]


def star(center, leaves):
    return [(center, leaf) for leaf in range(1, leaves + 1)]


def disjoint(count):
    return [(2 * i, 2 * i + 1) for i in range(count)]


def grid(rows, cols):
    edges = []
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                edges.append((v, v + 1))
            if r + 1 < rows:
                edges.append((v, v + cols))
    return edges


FAMILIES = {
    "complete-8": complete(8),
    "complete-12": complete(12),
    "disjoint-24": disjoint(24),
    "disjoint-48": disjoint(48),
    "grid-6x6": grid(6, 6),
    "grid-8x8": grid(8, 8),
}


def play(edges, t, referee):
    graph = GameGraph.from_pairs(edges, vertices=range(200))
    game = StarredEdgeRemovalGame(graph, t)
    return game.play(referee)


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("t", [1, 2, 4])
def test_moves_linear_in_edges(benchmark, family, t):
    edges = FAMILIES[family]
    result = benchmark.pedantic(
        play, args=(edges, t, AdversarialReferee()), rounds=3, iterations=1
    )
    ratio = result.moves / max(1, len(edges))
    benchmark.extra_info.update(
        {"family": family, "t": t, "edges": len(edges),
         "moves": result.moves, "moves_per_edge": round(ratio, 3),
         "final_cover": result.cover_size}
    )
    assert result.cover_size <= t
    assert result.moves <= 3 * len(edges)


def _e1_table():
    """Print the E1 table: moves/|E| flat across sizes and referees."""
    rows = []
    exponents = {}
    for t in (1, 2):
        for referee_name, referee_fn in (
            ("adversarial", AdversarialReferee),
            ("single-grant", lambda: SingleGrantReferee("last")),
        ):
            sizes, moves = [], []
            for n in (6, 8, 10, 12):
                edges = complete(n)
                result = play(edges, t, referee_fn())
                rows.append(
                    [f"complete-{n}", t, referee_name, len(edges),
                     result.moves, round(result.moves / len(edges), 3),
                     result.cover_size]
                )
                sizes.append(len(edges))
                moves.append(result.moves)
            fit = fit_power_law(sizes, moves)
            exponents[(t, referee_name)] = fit.exponent
    report(
        "E1 / Theorem 4 — greedy-removal moves vs |E|",
        ["graph", "t", "referee", "|E|", "moves", "moves/|E|", "cover"],
        rows,
    )
    print("power-law exponents (theory: 1.0):",
          {k: round(v, 3) for k, v in exponents.items()})
    # Shape check: growth is linear in |E| (exponent ~1), never superlinear.
    for exponent in exponents.values():
        assert 0.7 < exponent < 1.3


def test_e1_table(benchmark):
    """Benchmark wrapper so the table regenerates under --benchmark-only."""
    benchmark.pedantic(_e1_table, rounds=1, iterations=1)
