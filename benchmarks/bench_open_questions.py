"""Q2 — restricted listening: the secrecy/reliability tension, measured.

The paper conjectures that information-theoretically secure key agreement
against a ``t``-channel listener is inherently exponential.  The natural
share-spray protocol makes the difficulty quantitative: sweeping the
per-share repetition count, the probability that the *receiver* assembles
the pad and the probability that the *eavesdropper* does track each other
almost exactly — both listen on the same number of channels, and nothing
authenticated exists yet to break the symmetry.  There is no repetition
count that is simultaneously reliable and secret.
"""

from __future__ import annotations

import random

from repro.extensions import (
    HoppingEavesdropper,
    RestrictedListeningNetwork,
    run_share_spray,
)
from repro.rng import RngRegistry

from bench_common import report

N, C, T = 10, 3, 1
SHARES = 4
TRIALS = 40


def sweep_point(repetitions):
    delivered = leaked = 0
    for seed in range(TRIALS):
        net = RestrictedListeningNetwork(
            N, C, T, HoppingEavesdropper(random.Random(seed)),
            keep_trace=True,
        )
        res = run_share_spray(
            net, 0, 1, RngRegistry(seed=seed),
            shares=SHARES, repetitions=repetitions,
        )
        delivered += res.receiver_has_pad
        leaked += res.adversary_has_pad
    return delivered / TRIALS, leaked / TRIALS


def _q2_table():
    rows = []
    curve = []
    for repetitions in (1, 2, 4, 8, 16, 32):
        p_deliver, p_leak = sweep_point(repetitions)
        rows.append([
            repetitions, round(p_deliver, 2), round(p_leak, 2),
            round(p_deliver - p_leak, 2),
        ])
        curve.append((p_deliver, p_leak))
    report(
        f"Q2 — share-spray over {C} channels, t={T} listener "
        f"({SHARES} shares, {TRIALS} trials/point)",
        ["repetitions/share", "P(receiver has pad)", "P(adversary has pad)",
         "advantage"],
        rows,
    )
    # The tension: delivery and leakage rise together; the receiver's
    # advantage never becomes substantial at any repetition count.
    assert all(abs(d - l) < 0.35 for d, l in curve)
    # Extremes behave as predicted: unreliable when secret...
    assert curve[0][0] < 0.3
    # ...and fully leaked when reliable.
    assert curve[-1][0] > 0.9 and curve[-1][1] > 0.9


def test_q2_table(benchmark):
    """Benchmark wrapper so the table regenerates under --benchmark-only."""
    benchmark.pedantic(_q2_table, rounds=1, iterations=1)
