"""Sweep dispatcher benchmark: serial vs multiprocess vs socket backends.

Runs the *same* :class:`~repro.dispatch.SweepSpec` through all three
dispatch backends and — **before** timing anything — asserts the three
reports are byte-identical (``json.dumps(..., sort_keys=True)``): the
backend layer's whole contract is that dispatch never changes the
report, so an equivalence regression fails the bench rather than
inflating it.  Then trials/sec per backend.

Run ``PYTHONPATH=src python benchmarks/bench_sweep.py`` to regenerate
``benchmarks/BENCH_sweep.json``; ``--quick`` is the CI smoke mode (tiny
grid, no JSON unless ``--json`` is given).  As with
``BENCH_montecarlo.json``, ``os.cpu_count()`` is recorded and the
``--min-speedup`` floor (on the multiprocess backend) is enforced only
when the machine has at least ``--workers`` cores; the socket backend's
numbers are recorded but never floored — its per-trial socket round
trips and worker spawn are overhead the cluster story pays for
machine-spanning, not local, speed.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

from repro.dispatch import (
    MultiprocessBackend,
    SerialBackend,
    SocketBackend,
    SweepRunner,
    SweepSpec,
)


def run_sweep(spec: SweepSpec, backend) -> tuple[dict, float]:
    """One full sweep on one backend; returns (report dict, trials/sec)."""
    runner = SweepRunner(spec, backend=backend)
    start = time.perf_counter()
    report = runner.run()
    elapsed = time.perf_counter() - start
    return report.as_dict(), spec.total_trials / elapsed


def assert_equivalent(reports: dict[str, dict]) -> None:
    """All backends must produce byte-identical reports before timing."""
    rendered = {
        name: json.dumps(report, sort_keys=True)
        for name, report in reports.items()
    }
    reference_name = "serial"
    reference = rendered[reference_name]
    for name, text in rendered.items():
        if text != reference:
            raise AssertionError(
                f"backend divergence: {name!r} report differs from "
                f"{reference_name!r}:\n  {reference_name}: "
                f"{reference[:200]}\n  {name}: {text[:200]}"
            )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="sweep dispatcher throughput benchmark"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: tiny grid, no JSON written unless --json is given",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="pool size for the procs/socket backends (default: 4, quick: 2)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=1.3,
        help="fail (exit 1) if the procs-backend speedup drops below this "
        "— enforced only when os.cpu_count() >= workers",
    )
    parser.add_argument(
        "--json", type=Path, default=None,
        help="output path for the JSON baseline (default: "
        "benchmarks/BENCH_sweep.json; written automatically in full mode, "
        "and in --quick mode only when this flag is given)",
    )
    args = parser.parse_args(argv)
    json_path = (
        args.json
        if args.json is not None
        else Path(__file__).parent / "BENCH_sweep.json"
    )
    write_json = not args.quick or args.json is not None
    workers = (
        args.workers if args.workers is not None else (2 if args.quick else 4)
    )
    cpu_count = os.cpu_count() or 1

    if args.quick:
        spec = SweepSpec(ns=(18,), trials=8, seed=7, pairs=4)
    else:
        spec = SweepSpec(
            ns=(24,), adversaries=("schedule", "random"), trials=16,
            seed=7, pairs=5,
        )

    backends = {
        "serial": SerialBackend(),
        "procs": MultiprocessBackend(workers),
        "socket": SocketBackend(workers=workers),
    }
    reports: dict[str, dict] = {}
    throughput: dict[str, float] = {}
    for name, backend in backends.items():
        reports[name], throughput[name] = run_sweep(spec, backend)
    assert_equivalent(reports)

    speedup = {
        name: throughput[name] / throughput["serial"] for name in backends
    }
    for name in backends:
        print(
            f"{name:>6}: {throughput[name]:8.2f} trials/s  "
            f"({speedup[name]:.2f}x vs serial)  (equivalence OK)"
        )

    enforceable = cpu_count >= workers
    if write_json:
        payload = {
            "generated_by": "benchmarks/bench_sweep.py",
            "sweep": spec.as_dict(),
            "equivalence": "serial/procs/socket SweepReport.as_dict "
            "asserted byte-identical (sort_keys dumps) before timing",
            "python": platform.python_version(),
            "cpu_count": cpu_count,
            "workers": workers,
            "speedup_floor_enforced": enforceable,
            "results": {
                name: {
                    "trials_per_sec": round(throughput[name], 2),
                    "speedup_vs_serial": round(speedup[name], 2),
                }
                for name in backends
            },
        }
        json_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {json_path}")

    if not enforceable:
        print(
            f"NOTE: {cpu_count} CPU(s) < {workers} workers — parallel "
            f"backends cannot beat serial here; speedup floor not enforced "
            f"(procs measured {speedup['procs']:.2f}x, equivalence still "
            "asserted)"
        )
        return 0
    if speedup["procs"] < args.min_speedup:
        print(
            f"FAIL: procs-backend speedup is {speedup['procs']:.2f}x "
            f"(< {args.min_speedup}x floor with {workers} workers on "
            f"{cpu_count} CPUs)",
            file=sys.stderr,
        )
        return 1
    print(f"\nOK: procs-backend speedup is {speedup['procs']:.2f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
