"""Sweep dispatcher benchmark: serial vs multiprocess vs socket backends.

Runs the *same* :class:`~repro.dispatch.SweepSpec` through all three
dispatch backends and — **before** timing anything — asserts the
reports are byte-identical (``json.dumps(..., sort_keys=True)``),
including a fault-injected socket run (one worker killed mid-sweep, the
coordinator stopped halfway, the journal resumed on a fresh pool): the
backend layer's whole contract is that dispatch never changes the
report, so an equivalence regression fails the bench rather than
inflating it.  Then trials/sec per backend.

The socket backend is timed twice: **cold** (spawn + import + handshake
included — what a one-shot ``--backend socket`` run pays) and **warm**
(pool pre-warmed via :meth:`SocketBackend.warm_up`, measuring dispatch
throughput alone — what a long-lived cluster pool looks like in steady
state, and the number the protocol-v2 batching work targets).  The
headline ``socket`` entry is the warm one; ``socket_cold`` is recorded
alongside.

Run ``PYTHONPATH=src python benchmarks/bench_sweep.py`` to regenerate
``benchmarks/BENCH_sweep.json``; ``--quick`` is the CI smoke mode (tiny
grid, no JSON unless ``--json`` is given).  As with
``BENCH_montecarlo.json``, ``os.cpu_count()`` is recorded and the
floors are enforced only when the machine has at least ``--workers``
cores: the procs backend must beat ``--min-speedup``, the warm socket
backend must match the procs backend (``--min-socket-vs-procs``) and
must beat the protocol-v1 baseline of 0.13x serial by at least
``--min-socket-improvement`` (default 3x).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import tempfile
import time
from pathlib import Path

from repro.dispatch import (
    MultiprocessBackend,
    SerialBackend,
    SocketBackend,
    SweepRunner,
    SweepSpec,
)
from repro.errors import SweepInterrupted

SOCKET_V1_BASELINE = 0.13
"""Recorded speedup-vs-serial of the one-spec-per-frame protocol v1."""


def run_sweep(spec: SweepSpec, backend) -> tuple[dict, float]:
    """One full sweep on one backend; returns (report dict, trials/sec)."""
    runner = SweepRunner(spec, backend=backend)
    start = time.perf_counter()
    report = runner.run()
    elapsed = time.perf_counter() - start
    return report.as_dict(), spec.total_trials / elapsed


def run_kill_and_resume(spec: SweepSpec, workers: int, batch_size) -> dict:
    """The fault-injected socket run: kill a worker, stop, resume.

    One worker is killed on the first completed trial (its in-flight
    batches are requeued with applied indices filtered out), the
    coordinator stops after half the trials (``SweepInterrupted``), and
    a fresh pool resumes from the journal.  Returns the resumed report.
    """
    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "sweep.jsonl"
        backend = SocketBackend(
            workers=workers, batch_size=batch_size, accept_timeout=60.0
        )
        runner = SweepRunner(
            spec,
            backend=backend,
            journal_path=str(journal),
            stop_after=max(1, spec.total_trials // 2),
        )
        killed = []
        original_add = runner.state.add

        def add_and_kill(result):
            if not killed and backend.spawned:
                backend.spawned[0].kill()
                killed.append(True)
            return original_add(result)

        runner.state.add = add_and_kill
        try:
            runner.run()
        except SweepInterrupted:
            pass
        else:  # stop_after < total_trials always interrupts
            raise AssertionError("fault-injected run was not interrupted")
        report = SweepRunner(
            spec,
            backend=SocketBackend(
                workers=workers, batch_size=batch_size, accept_timeout=60.0
            ),
            journal_path=str(journal),
            resume=True,
        ).run()
        return report.as_dict()


def assert_equivalent(reports: dict[str, dict]) -> None:
    """All backends must produce byte-identical reports before timing."""
    rendered = {
        name: json.dumps(report, sort_keys=True)
        for name, report in reports.items()
    }
    reference_name = "serial"
    reference = rendered[reference_name]
    for name, text in rendered.items():
        if text != reference:
            raise AssertionError(
                f"backend divergence: {name!r} report differs from "
                f"{reference_name!r}:\n  {reference_name}: "
                f"{reference[:200]}\n  {name}: {text[:200]}"
            )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="sweep dispatcher throughput benchmark"
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: tiny grid, no JSON written unless --json is given",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="pool size for the procs/socket backends (default: 4, quick: 2)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=None,
        help="pin the socket backend's trials per batch frame "
        "(default: adaptive)",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=1.3,
        help="fail (exit 1) if the procs-backend speedup drops below this "
        "— enforced only when os.cpu_count() >= workers",
    )
    parser.add_argument(
        "--min-socket-vs-procs", type=float, default=1.0,
        help="fail if warm-socket trials/sec divided by procs trials/sec "
        "drops below this — enforced only when os.cpu_count() >= workers",
    )
    parser.add_argument(
        "--min-socket-improvement", type=float, default=3.0,
        help=f"fail if the warm socket backend's speedup-vs-serial is not "
        f"at least this many times the protocol-v1 baseline "
        f"({SOCKET_V1_BASELINE}x) — enforced only when os.cpu_count() >= "
        "workers",
    )
    parser.add_argument(
        "--json", type=Path, default=None,
        help="output path for the JSON baseline (default: "
        "benchmarks/BENCH_sweep.json; written automatically in full mode, "
        "and in --quick mode only when this flag is given)",
    )
    args = parser.parse_args(argv)
    json_path = (
        args.json
        if args.json is not None
        else Path(__file__).parent / "BENCH_sweep.json"
    )
    write_json = not args.quick or args.json is not None
    workers = (
        args.workers if args.workers is not None else (2 if args.quick else 4)
    )
    cpu_count = os.cpu_count() or 1

    if args.quick:
        spec = SweepSpec(ns=(18,), trials=8, seed=7, pairs=4)
    else:
        spec = SweepSpec(
            ns=(24,), adversaries=("schedule", "random"), trials=16,
            seed=7, pairs=5,
        )

    reports: dict[str, dict] = {}
    throughput: dict[str, float] = {}

    reports["serial"], throughput["serial"] = run_sweep(spec, SerialBackend())
    reports["procs"], throughput["procs"] = run_sweep(
        spec, MultiprocessBackend(workers)
    )
    # Cold socket: one-shot pool, spawn + import + handshake on the clock.
    reports["socket_cold"], throughput["socket_cold"] = run_sweep(
        spec, SocketBackend(workers=workers, batch_size=args.batch_size)
    )
    # Warm socket: pool pre-warmed off the clock, dispatch alone timed.
    warm = SocketBackend(
        workers=workers, batch_size=args.batch_size, keep_alive=True
    )
    try:
        warm.warm_up(timeout=60.0)
        reports["socket"], throughput["socket"] = run_sweep(spec, warm)
    finally:
        warm.close()
    # Fault injection: kill one worker + stop halfway + journal resume
    # must still reproduce the serial report byte-for-byte.
    reports["socket_kill_resume"] = run_kill_and_resume(
        spec, workers, args.batch_size
    )
    assert_equivalent(reports)

    speedup = {
        name: rate / throughput["serial"]
        for name, rate in throughput.items()
    }
    for name, rate in throughput.items():
        print(
            f"{name:>12}: {rate:8.2f} trials/s  "
            f"({speedup[name]:.2f}x vs serial)  (equivalence OK)"
        )
    print(
        f"{'equivalence':>12}: serial == procs == socket_cold == socket "
        "== socket_kill_resume (byte-identical reports)"
    )

    enforceable = cpu_count >= workers
    if write_json:
        payload = {
            "generated_by": "benchmarks/bench_sweep.py",
            "sweep": spec.as_dict(),
            "equivalence": "serial/procs/socket(cold+warm) SweepReport."
            "as_dict asserted byte-identical (sort_keys dumps) before "
            "timing, including a kill-one-worker + --resume socket run",
            "python": platform.python_version(),
            "cpu_count": cpu_count,
            "workers": workers,
            "batch_size": args.batch_size or "adaptive",
            "socket_v1_baseline_speedup": SOCKET_V1_BASELINE,
            "speedup_floor_enforced": enforceable,
            "results": {
                name: {
                    "trials_per_sec": round(rate, 2),
                    "speedup_vs_serial": round(speedup[name], 2),
                }
                for name, rate in throughput.items()
            },
        }
        json_path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {json_path}")

    if not enforceable:
        print(
            f"NOTE: {cpu_count} CPU(s) < {workers} workers — parallel "
            f"backends cannot beat serial here; floors not enforced "
            f"(procs {speedup['procs']:.2f}x, warm socket "
            f"{speedup['socket']:.2f}x vs the {SOCKET_V1_BASELINE}x v1 "
            "baseline, equivalence still asserted)"
        )
        return 0
    failures = []
    if speedup["procs"] < args.min_speedup:
        failures.append(
            f"procs-backend speedup is {speedup['procs']:.2f}x "
            f"(< {args.min_speedup}x floor)"
        )
    socket_vs_procs = throughput["socket"] / throughput["procs"]
    if socket_vs_procs < args.min_socket_vs_procs:
        failures.append(
            f"warm socket is {socket_vs_procs:.2f}x the procs backend "
            f"(< {args.min_socket_vs_procs}x floor)"
        )
    improvement = speedup["socket"] / SOCKET_V1_BASELINE
    if improvement < args.min_socket_improvement:
        failures.append(
            f"warm socket speedup {speedup['socket']:.2f}x is only "
            f"{improvement:.1f}x the {SOCKET_V1_BASELINE}x v1 baseline "
            f"(< {args.min_socket_improvement}x floor)"
        )
    if failures:
        for failure in failures:
            print(
                f"FAIL: {failure} with {workers} workers on "
                f"{cpu_count} CPUs",
                file=sys.stderr,
            )
        return 1
    print(
        f"\nOK: procs {speedup['procs']:.2f}x, warm socket "
        f"{socket_vs_procs:.2f}x procs and {improvement:.1f}x the v1 "
        "socket baseline"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
