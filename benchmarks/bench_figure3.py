"""E3 — Figure 3: f-AME total time across the three channel regimes.

Regenerates the paper's complexity table by running the same workload at
``C = t+1``, ``C = 2t`` and ``C = 2t^2`` (with the corresponding regime)
and reporting measured radio rounds next to the predicted shapes

    base     O(|E| · t^2 · log n)
    double   O(|E| · log n)
    squared  O(|E| · log^2 n / t)

The assertion is on the *ordering and gaps*, not absolute constants.
"""

from __future__ import annotations

import random

import pytest

from repro.adversary import ScheduleAwareJammer
from repro.fame import Regime, make_config, predicted_rounds, run_fame
from repro.rng import RngRegistry

from bench_common import make_network, report

T = 2
N = 120
EDGES = [(i, i + 50) for i in range(16)]

REGIME_CHANNELS = {
    Regime.BASE: T + 1,
    Regime.DOUBLE: 2 * T,
    Regime.SQUARED: 2 * T * T * 2,  # C = 4t^2 => C/t = 8 proposal channels
}


def run_regime(regime, seed=0):
    channels = REGIME_CHANNELS[regime]
    net = make_network(
        N, channels, T,
        adversary=ScheduleAwareJammer(random.Random(seed), policy="prefix"),
    )
    cfg = make_config(N, channels, T, regime=regime)
    res = run_fame(net, EDGES, rng=RngRegistry(seed=seed), config=cfg)
    return res


@pytest.mark.parametrize("regime", list(Regime), ids=lambda r: r.value)
def test_regime_cost(benchmark, regime):
    res = benchmark.pedantic(run_regime, args=(regime,), rounds=3, iterations=1)
    benchmark.extra_info.update(
        {"regime": regime.value, "rounds": res.rounds, "moves": res.moves,
         "disruptability": res.disruptability()}
    )
    assert res.is_d_disruptable(T)


def _e3_figure3_table():
    rows = []
    measured = {}
    for regime in Regime:
        res = run_regime(regime, seed=1)
        cfg = res.config
        predicted = predicted_rounds(cfg, len(EDGES))
        measured[regime] = res.rounds
        rows.append([
            regime.value, cfg.channels, cfg.proposal_size, len(EDGES),
            res.moves, res.rounds, round(predicted, 0),
            round(res.rounds / predicted, 2), res.disruptability(),
        ])
    report(
        "E3 / Figure 3 — f-AME cost by channel regime "
        f"(n={N}, t={T}, |E|={len(EDGES)})",
        ["regime", "C", "proposal", "|E|", "moves", "rounds",
         "predicted", "ratio", "disrupt"],
        rows,
    )
    # Figure 3's ordering: base is the most expensive by a wide margin.
    assert measured[Regime.BASE] > 2 * measured[Regime.DOUBLE]
    assert measured[Regime.BASE] > 2 * measured[Regime.SQUARED]


def _e3_scaling_in_edges():
    # Every row of Figure 3 is linear in |E| — verify for the base regime.
    rows = []
    points = []
    for count in (6, 12, 24):
        edges = [(i, i + 50) for i in range(count)]
        net = make_network(
            N, T + 1, T,
            adversary=ScheduleAwareJammer(random.Random(2), policy="prefix"),
        )
        res = run_fame(net, edges, rng=RngRegistry(seed=2))
        rows.append([count, res.moves, res.rounds,
                     round(res.rounds / count, 1)])
        points.append((count, res.rounds))
    report(
        "E3b — base-regime rounds vs |E| (linear shape)",
        ["|E|", "moves", "rounds", "rounds/|E|"],
        rows,
    )
    per_edge = [rounds / count for count, rounds in points]
    assert max(per_edge) / min(per_edge) < 2.0


def test_e3_scaling_in_edges(benchmark):
    """Benchmark wrapper so the table regenerates under --benchmark-only."""
    benchmark.pedantic(_e3_scaling_in_edges, rounds=1, iterations=1)


def test_e3_figure3_table(benchmark):
    """Benchmark wrapper so the table regenerates under --benchmark-only."""
    benchmark.pedantic(_e3_figure3_table, rounds=1, iterations=1)
