"""E8 — Section 7: Θ(t log n) per emulated round; the setup amortises.

Measures the real-round cost of emulated rounds across ``t`` and ``n``,
verifies reliability under jamming (every key holder receives every sole
broadcast), and reports the setup-vs-usage amortisation the long-lived
design is about.
"""

from __future__ import annotations

import random

import pytest

from repro.adversary import RandomJammer
from repro.crypto.dh import TEST_GROUP_64
from repro.params import log2n
from repro.rng import RngRegistry
from repro.service import LongLivedChannel, SecureSession

from bench_common import make_network, report

KEY = b"bench-key-for-emulated-channel!!"


def channel_for(n, t, seed):
    net = make_network(
        n, t + 1, t, adversary=RandomJammer(random.Random(seed))
    )
    return net, LongLivedChannel(net, KEY, list(range(n)))


def emulated_round_cost(n, t, seed=0, rounds=5):
    net, ch = channel_for(n, t, seed)
    delivered = 0
    expected = 0
    for i in range(rounds):
        out = ch.run_round({i % n: b"payload"})
        expected += len(out)
        delivered += sum(1 for d in out.values() if d is not None)
    return net.metrics.rounds / rounds, delivered, expected


@pytest.mark.parametrize("t", [1, 2, 3])
def test_emulated_round_cost_t_sweep(benchmark, t):
    per_round, delivered, expected = benchmark.pedantic(
        emulated_round_cost, args=(40, t), rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        {"t": t, "real_rounds_per_emulated": per_round,
         "delivered": delivered, "expected": expected}
    )
    assert delivered == expected  # whp reliability, observed exactly


def _e8_table():
    rows = []
    for t in (1, 2, 3):
        n = 40
        per_round, delivered, expected = emulated_round_cost(n, t, seed=t)
        predicted = (t + 1) * log2n(n)
        rows.append([
            n, t, round(per_round, 1), round(predicted, 1),
            round(per_round / predicted, 2), f"{delivered}/{expected}",
        ])
    for n in (20, 80, 160):
        per_round, delivered, expected = emulated_round_cost(n, 1, seed=n)
        predicted = 2 * log2n(n)
        rows.append([
            n, 1, round(per_round, 1), round(predicted, 1),
            round(per_round / predicted, 2), f"{delivered}/{expected}",
        ])
    report(
        "E8 / Section 7 — real rounds per emulated round vs Θ(t log n)",
        ["n", "t", "measured", "t·log n", "ratio", "deliveries"],
        rows,
    )
    ratios = [row[4] for row in rows]
    assert max(ratios) / min(ratios) < 3.0


def _e8_amortisation():
    # One secure session: the setup costs Θ(n t^3 log n) once; each message
    # afterwards costs Θ(t log n) — orders of magnitude cheaper.
    net = make_network(
        18, 2, 1, adversary=RandomJammer(random.Random(5))
    )
    session = SecureSession(net, RngRegistry(seed=5), group=TEST_GROUP_64)
    for i in range(10):
        session.send(session.members[i % len(session.members)], b"msg")
    session.flush()
    per_message = session.stats.real_rounds / max(1, session.stats.emulated_rounds)
    rows = [[
        session.stats.setup_rounds, session.stats.emulated_rounds,
        round(per_message, 1),
        round(session.stats.setup_rounds / per_message, 0),
    ]]
    report(
        "E8b — setup amortisation (messages until setup cost is matched)",
        ["setup rounds", "messages sent", "rounds/message", "break-even msgs"],
        rows,
    )
    assert per_message * 20 < session.stats.setup_rounds


def test_e8_amortisation(benchmark):
    """Benchmark wrapper so the table regenerates under --benchmark-only."""
    benchmark.pedantic(_e8_amortisation, rounds=1, iterations=1)


def test_e8_table(benchmark):
    """Benchmark wrapper so the table regenerates under --benchmark-only."""
    benchmark.pedantic(_e8_table, rounds=1, iterations=1)
