"""Ablations over the design choices DESIGN.md calls out.

A1 — the w.h.p. constants: sweeping ``feedback_factor`` shows why the
     default sits at 3.0 — smaller constants trade rounds for feedback
     divergences (the Lemma 5 failure event), larger ones buy nothing.
A2 — channel-aware hopping epochs (the Section 7 parenthetical): the cost
     of an emulated round falls from Θ(t log n) to Θ(log n) once C >= 2t.
A3 — the Byzantine-hardened variant (Section 8 Q1): with up to t corrupt
     nodes lying in feedback and garbling messages, the hardened exchange
     stays within 2t-disruptability, at a measurable round premium over
     plain f-AME.
"""

from __future__ import annotations

import random

import pytest

from repro.adversary import RandomJammer, ScheduleAwareJammer
from repro.fame import CorruptionModel, run_byzantine_exchange, run_fame
from repro.params import ProtocolParameters, log2n
from repro.rng import RngRegistry
from repro.service import LongLivedChannel

from bench_common import make_network, report

EDGES = [(0, 1), (2, 3), (4, 5), (6, 7), (1, 8)]


# ---------------------------------------------------------------------------
# A1: the explicit Θ(·) constants.
# ---------------------------------------------------------------------------

def _run_with_factor(factor, seed):
    params = ProtocolParameters(
        feedback_factor=factor, strict_consistency=False
    ).validate()
    net = make_network(
        20, 2, 1, adversary=RandomJammer(random.Random(seed)), params=params
    )
    return run_fame(net, EDGES, rng=RngRegistry(seed=seed))


def _a1_constants_table():
    rows = []
    for factor in (0.25, 0.5, 1.0, 2.0, 3.0, 4.0):
        divergences = rounds = failures = 0
        trials = 10
        for seed in range(trials):
            res = _run_with_factor(factor, seed)
            divergences += res.divergence_events
            rounds += res.rounds
            failures += len(res.failed)
            assert res.is_d_disruptable(1)  # resync keeps correctness
        rows.append([
            factor, round(rounds / trials), divergences,
            round(divergences / trials, 2), failures,
        ])
    report(
        "A1 — feedback_factor vs divergence rate (10 seeds each, t=1)",
        ["factor", "avg rounds", "divergent moves", "per run", "failed pairs"],
        rows,
    )
    # The default (3.0) sits where divergences vanish.
    by_factor = {row[0]: row[2] for row in rows}
    assert by_factor[0.25] > 0  # starved constants do diverge
    assert by_factor[3.0] == 0
    assert by_factor[4.0] == 0


def test_a1_constants_table(benchmark):
    benchmark.pedantic(_a1_constants_table, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# A2: channel-aware hopping epochs.
# ---------------------------------------------------------------------------

def _service_cost(channels, t, channel_aware, seed=0):
    n = 40
    net = make_network(
        n, channels, t, adversary=RandomJammer(random.Random(seed))
    )
    ch = LongLivedChannel(
        net, b"a" * 32, list(range(n)), channel_aware_epochs=channel_aware
    )
    delivered = expected = 0
    for i in range(4):
        out = ch.run_round({i: b"x"})
        expected += len(out)
        delivered += sum(1 for d in out.values() if d is not None)
    return net.metrics.rounds / 4, delivered, expected


def _a2_epoch_table():
    rows = []
    t = 2
    for channels, label in ((3, "C = t+1"), (4, "C = 2t"), (8, "C = 4t")):
        base, d1, e1 = _service_cost(channels, t, channel_aware=False)
        aware, d2, e2 = _service_cost(channels, t, channel_aware=True)
        rows.append([
            label, base, aware, round(base / aware, 2),
            f"{d1}/{e1}", f"{d2}/{e2}",
        ])
        assert d2 == e2  # the shorter epochs still deliver w.h.p.
    report(
        "A2 — emulated-round cost: fixed Θ(t log n) vs channel-aware epochs",
        ["channels", "base rounds", "aware rounds", "speedup",
         "base deliveries", "aware deliveries"],
        rows,
    )
    # With C = 2t, the channel-aware epoch is ~t times shorter.
    speedups = {row[0]: row[3] for row in rows}
    assert speedups["C = 2t"] > 1.5
    assert speedups["C = 4t"] >= speedups["C = 2t"]


def test_a2_epoch_table(benchmark):
    benchmark.pedantic(_a2_epoch_table, rounds=1, iterations=1)


# ---------------------------------------------------------------------------
# A3: the Byzantine-hardened exchange.
# ---------------------------------------------------------------------------

def _a3_byzantine_table():
    rows = []
    for t in (1, 2):
        n = 20 if t == 1 else 40
        edges = [(i, i + n // 2) for i in range(6)]
        corrupt = tuple(range(t))  # corrupt the first t sources

        net_b = make_network(
            n, t + 1, t,
            adversary=ScheduleAwareJammer(random.Random(t), policy="prefix"),
        )
        byz = run_byzantine_exchange(
            net_b, edges, rng=RngRegistry(seed=t),
            corruption=CorruptionModel.of(*corrupt),
        )
        net_f = make_network(
            n, t + 1, t,
            adversary=ScheduleAwareJammer(random.Random(t), policy="prefix"),
        )
        fame = run_fame(net_f, edges, rng=RngRegistry(seed=t))
        rows.append([
            t, len(corrupt), byz.disruptability(), 2 * t,
            fame.disruptability(), t,
            byz.rounds, fame.rounds,
        ])
        assert byz.disruptability() <= 2 * t
        assert fame.disruptability() <= t
    report(
        "A3 — Byzantine-hardened exchange (t corrupt nodes) vs plain f-AME",
        ["t", "corrupt", "byz cover", "bound 2t", "f-AME cover", "bound t",
         "byz rounds", "f-AME rounds"],
        rows,
    )


def test_a3_byzantine_table(benchmark):
    benchmark.pedantic(_a3_byzantine_table, rounds=1, iterations=1)
