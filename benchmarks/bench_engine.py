"""Engine microbenchmark: rounds/sec and moves/sec across the stack.

Measures the three layers this repo's simulations are gated on, at
``n ∈ {64, 256, 1024}``:

1. **Radio rounds/sec** — a representative f-AME-shaped transmission round
   (a few busy channels, one transmitter + a witness group of listeners
   each) resolved two ways:

   * ``legacy_dense``: the pre-PR cost model — every idle node submits an
     explicit ``Sleep``, per-round action validation on, the full
     ``RoundRecord`` built and retained;
   * ``sparse_fast``: only non-sleeping nodes submitted, validation off
     (``ProtocolParameters(validate_actions=False)``), trace retention off
     (which now skips record construction and the spoof scan entirely).

2. **Game moves/sec** — greedy proposal + grant application with the pools
   re-derived from scratch each move (pre-PR) vs the incremental
   :class:`repro.game.greedy.GreedyPools`.

3. **Invariant-1 certifications/sec** — asserting that all ``n`` replicas
   agree, by hashing ``n`` full sorted state snapshots (pre-PR) vs
   comparing ``n`` incrementally-advanced fingerprints.

Run ``PYTHONPATH=src python benchmarks/bench_engine.py`` to regenerate
``benchmarks/BENCH_engine.json`` (the committed perf trajectory for future
PRs), or with ``--quick`` for the CI smoke invocation (small sizes, no
file written, non-zero exit if the n-max radio speedup drops below the
``--min-speedup`` floor).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

from repro.game.graph import GameGraph
from repro.game.greedy import GreedyPools, GreedyTermination, greedy_proposal
from repro.params import ProtocolParameters
from repro.radio.actions import SLEEP, Listen, Transmit
from repro.radio.messages import Message
from repro.radio.network import RadioNetwork

CHANNELS = 8
BUSY_CHANNELS = 4
WITNESSES_PER_CHANNEL = 3
T = 1


def _round_actions(n: int) -> dict:
    """One f-AME-shaped sparse round: BUSY_CHANNELS broadcasts, each with
    a destination listener and a small witness group."""
    actions = {}
    node = 0
    for channel in range(BUSY_CHANNELS):
        actions[node] = Transmit(
            channel, Message(kind="bench", sender=node, payload=("m", node))
        )
        node += 1
        for _ in range(1 + WITNESSES_PER_CHANNEL):  # destination + witnesses
            actions[node] = Listen(channel)
            node += 1
    assert node <= n, "population too small for the bench workload"
    return actions


def _time(fn, *, min_seconds: float) -> tuple[float, int]:
    """Run ``fn(iterations)`` long enough to trust the clock; return
    (seconds, iterations)."""
    iterations = 64
    while True:
        start = time.perf_counter()
        fn(iterations)
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            return elapsed, iterations
        iterations *= 4


def bench_radio(n: int, *, sparse: bool, min_seconds: float) -> float:
    """Rounds/sec for the representative round in one submission style."""
    base = _round_actions(n)
    if sparse:
        # The lean fast-path configuration: per-round validation and
        # payload metering both gated off (each is id-cache-free work the
        # trusted benchmark driver does not need).
        params = ProtocolParameters(
            validate_actions=False, meter_payloads=False
        ).validate()
        actions = base
        keep_trace = False
    else:
        params = ProtocolParameters().validate()
        actions = dict(base)
        for node in range(n):
            actions.setdefault(node, SLEEP)
        keep_trace = True

    def run(iterations: int) -> None:
        net = RadioNetwork(
            n, CHANNELS, T, params=params, keep_trace=keep_trace
        )
        execute = net.execute_round
        for _ in range(iterations):
            execute(actions)

    elapsed, iterations = _time(run, min_seconds=min_seconds)
    return iterations / elapsed


def _bench_edges(n: int) -> list[tuple[int, int]]:
    """A 2n-edge workload with shared sources (stars the surrogate path)."""
    edges = []
    for i in range(n):
        edges.append((i, (i + 1) % n))
        edges.append((i, (i + n // 2 + 1) % n))
    return sorted(set(e for e in edges if e[0] != e[1]))


def _play_game(graph: GameGraph, pools: GreedyPools | None, t: int) -> int:
    """Drive one generous-referee game to termination; return move count."""
    moves = 0
    while True:
        if pools is not None:
            move = pools.proposal(t)
        else:
            move = greedy_proposal(graph, t)
        if isinstance(move, GreedyTermination):
            return moves
        for item in move:
            if hasattr(item, "pair"):
                (pools.remove_edge if pools else graph.remove_edge)(item.pair)
            else:
                (pools.star if pools else graph.star)(item.node)
        moves += 1


def bench_game(n: int, *, incremental: bool, min_seconds: float) -> float:
    """Greedy moves/sec against a grant-everything referee."""
    edges = _bench_edges(n)
    counted: list[int] = []

    def run(iterations: int) -> None:
        counted.clear()
        total = 0
        for _ in range(iterations):
            graph = GameGraph.from_pairs(edges, vertices=range(n))
            pools = GreedyPools(graph) if incremental else None
            total += _play_game(graph, pools, t=4)
        counted.append(total)

    elapsed, _ = _time(run, min_seconds=min_seconds)
    return counted[0] / elapsed


def bench_invariant1(n: int, *, fingerprints: bool, min_seconds: float) -> float:
    """Invariant-1 certifications/sec over n replicas of a 2n-edge state."""
    edges = _bench_edges(n)
    graph = GameGraph.from_pairs(edges, vertices=range(n))

    if fingerprints:
        replicas = [graph.fingerprint] * n

        def run(iterations: int) -> None:
            canonical = graph.fingerprint
            for _ in range(iterations):
                assert not any(fp != canonical for fp in replicas)

    else:
        replicas_g = [graph.copy() for _ in range(n)]

        def run(iterations: int) -> None:
            for _ in range(iterations):
                assert len({g.state_key() for g in replicas_g}) == 1

    elapsed, iterations = _time(run, min_seconds=min_seconds)
    return iterations / elapsed


def run_suite(sizes: list[int], min_seconds: float) -> dict:
    results: dict = {
        "radio_rounds_per_sec": {},
        "game_moves_per_sec": {},
        "invariant1_certs_per_sec": {},
    }
    for n in sizes:
        legacy = bench_radio(n, sparse=False, min_seconds=min_seconds)
        fast = bench_radio(n, sparse=True, min_seconds=min_seconds)
        results["radio_rounds_per_sec"][str(n)] = {
            "legacy_dense": round(legacy, 1),
            "sparse_fast": round(fast, 1),
            "speedup": round(fast / legacy, 2),
        }
        scratch = bench_game(n, incremental=False, min_seconds=min_seconds)
        pooled = bench_game(n, incremental=True, min_seconds=min_seconds)
        results["game_moves_per_sec"][str(n)] = {
            "from_scratch": round(scratch, 1),
            "incremental_pools": round(pooled, 1),
            "speedup": round(pooled / scratch, 2),
        }
        snapshots = bench_invariant1(
            n, fingerprints=False, min_seconds=min_seconds
        )
        fp = bench_invariant1(n, fingerprints=True, min_seconds=min_seconds)
        results["invariant1_certs_per_sec"][str(n)] = {
            "state_key_snapshots": round(snapshots, 1),
            "fingerprints": round(fp, 1),
            "speedup": round(fp / snapshots, 2),
        }
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: small sizes, short timings, no JSON written",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="fail (exit 1) if the largest-n radio speedup drops below this",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=Path(__file__).parent / "BENCH_engine.json",
        help="output path for the committed baseline",
    )
    args = parser.parse_args(argv)

    sizes = [64] if args.quick else [64, 256, 1024]
    min_seconds = 0.05 if args.quick else 0.4
    results = run_suite(sizes, min_seconds)

    for section, rows in results.items():
        print(f"\n=== {section} ===")
        for n, row in rows.items():
            cells = "  ".join(f"{k}={v}" for k, v in row.items())
            print(f"  n={n:>5}  {cells}")

    n_max = str(max(sizes))
    radio_speedup = results["radio_rounds_per_sec"][n_max]["speedup"]
    if not args.quick:
        payload = {
            "generated_by": "benchmarks/bench_engine.py",
            "workload": {
                "channels": CHANNELS,
                "busy_channels": BUSY_CHANNELS,
                "witnesses_per_channel": WITNESSES_PER_CHANNEL,
                "t": T,
                "game_t": 4,
                "edges": "2n ring+chord pairs (see _bench_edges)",
            },
            "python": platform.python_version(),
            "results": results,
        }
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"\nwrote {args.json}")

    if radio_speedup < args.min_speedup:
        print(
            f"FAIL: radio speedup at n={n_max} is {radio_speedup}x "
            f"(< {args.min_speedup}x floor)",
            file=sys.stderr,
        )
        return 1
    print(f"\nOK: radio speedup at n={n_max} is {radio_speedup}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
