#!/usr/bin/env python3
"""Piconet pairing without passkeys (the paper's motivating scenario).

Bluetooth-style piconets bootstrap security from a manually entered
passkey.  This example shows the paper's alternative: 18 devices meet on
t+1 = 2 channels with a malicious jammer present, and — with no pre-shared
secrets whatsoever — establish a shared group key via

  Part 1: f-AME over a (t+1)-leader spanner carrying Diffie-Hellman halves,
  Part 2: leader-key dissemination on key-derived channel-hopping epochs,
  Part 3: agreement through 2t+1 reporters.

At the end, all but at most t devices hold the same secret key, and the
(eavesdropping) adversary has seen only DH publics and ciphertexts.

Run:  python examples/piconet_pairing.py
"""

import random

from repro import RadioNetwork, RngRegistry
from repro.adversary import RandomJammer
from repro.crypto.dh import TEST_GROUP_128
from repro.groupkey import establish_group_key


def main() -> None:
    n, channels, t = 18, 2, 1
    network = RadioNetwork(
        n, channels, t,
        adversary=RandomJammer(random.Random(3)),
        keep_trace=False,
    )

    print(f"{n} devices, {channels} channels, adversary jams {t}/round")
    print("no passkeys, no PKI — establishing a group key...\n")

    result = establish_group_key(
        network, RngRegistry(seed=2026), group=TEST_GROUP_128
    )

    print(f"Part 1 (pairwise keys via f-AME + DH): "
          f"{result.part1_rounds} rounds, "
          f"{len(result.pairwise_established)} pairwise keys")
    print(f"Part 2 (leader-key dissemination):     "
          f"{result.part2_rounds} rounds, "
          f"{len(result.completed_leaders)} complete leaders")
    print(f"Part 3 (agreement):                    "
          f"{result.part3_rounds} rounds")
    print(f"total setup: {result.total_rounds} rounds\n")

    holders = result.holders()
    print(f"group key adopted by {len(holders)}/{n} devices "
          f"(guarantee: >= n - t = {n - t})")
    if result.non_holders():
        print(f"devices without the key: {result.non_holders()} "
              "(they know they lack it)")
    key = result.group_key
    assert key is not None
    print(f"group key fingerprint: {key.hex()[:16]}…")
    print("\nThe adversary observed every frame but holds neither a DH")
    print("private exponent nor any pairwise key: the group key is secret.")


if __name__ == "__main__":
    main()
