#!/usr/bin/env python3
"""A long-lived encrypted group chat over a jammed radio (Section 7).

After the one-time group-key setup, every chat message costs only
Θ(t log n) radio rounds on a secret channel-hopping pattern.  The example
runs a short chat among sensors while the adversary jams blindly, then
demonstrates the service's authentication: a forged frame injected by the
adversary is rejected by every receiver.

Run:  python examples/secure_group_chat.py
"""

import random

from repro import RadioNetwork, RngRegistry
from repro.adversary import RandomJammer, SpoofingAdversary
from repro.crypto.dh import TEST_GROUP_128
from repro.radio.messages import Message
from repro.service import SecureSession

CHAT_SCRIPT = [
    (2, b"temperature spike on sensor 2"),
    (5, b"confirm: 31.4C at my position"),
    (9, b"raising alert level to amber"),
    (2, b"acknowledged"),
]


def main() -> None:
    n, channels, t = 18, 2, 1
    network = RadioNetwork(
        n, channels, t,
        adversary=RandomJammer(random.Random(11)),
        keep_trace=False,
    )

    print("setting up the secure session (group key + emulated channel)...")
    session = SecureSession(network, RngRegistry(seed=7), group=TEST_GROUP_128)
    print(f"  setup cost: {session.stats.setup_rounds} radio rounds, "
          f"{len(session.members)} members\n")

    for sender, text in CHAT_SCRIPT:
        session.send(sender, text)
    session.flush()

    reader = session.members[3]
    print(f"chat transcript as seen by node {reader}:")
    for delivery in session.inbox(reader):
        print(f"  [round {delivery.emulated_round}] node {delivery.sender}: "
              f"{delivery.payload.decode()}")
    per_message = session.stats.real_rounds / session.stats.emulated_rounds
    print(f"\ncost per message: {per_message:.0f} real rounds "
          f"(vs {session.stats.setup_rounds} for setup — amortised away)")

    # Now switch the adversary to an active forger and run a silent round:
    # the only frames in the air are forgeries, and nobody accepts them.
    def forge(view, channel):
        return Message(
            kind="service-frame",
            sender=2,
            payload=(2, session.channel.emulated_round,
                     (b"nonce", b"fake ciphertext", b"fake tag" + b"!" * 24)),
        )

    network.adversary = SpoofingAdversary(
        random.Random(13), forge=forge, target_scheduled=False
    )
    before = {m: len(session.inbox(m)) for m in session.members}
    session.idle_round()
    after = {m: len(session.inbox(m)) for m in session.members}
    assert before == after
    print("\nadversary injected forged ciphertexts for a full emulated "
          "round:\n  every receiver rejected them (bad MAC) — "
          "authentication holds.")


if __name__ == "__main__":
    main()
