#!/usr/bin/env python3
"""Extensions tour: re-keying, point-to-point channels, Byzantine nodes.

Three features beyond the paper's core protocol stack, each motivated by
the paper itself:

1. **dynamic re-keying** (Introduction): after "detecting" a compromised
   device, a surviving leader distributes a fresh group key over the
   Part 1 pairwise keys — the compromised node is simply skipped and can
   decrypt nothing afterwards;
2. **point-to-point channels** (Section 8, Q4): two nodes reuse their
   pairwise key for a private hopping channel — no group coordination,
   Θ(t log n) rounds per exchange (Θ(log n) with channel-aware epochs);
3. **Byzantine corruption** (Section 8, Q1): the hardened exchange
   tolerates t corrupt nodes — lying witnesses are outvoted, garbling
   sources are confined to their own pairs — at 2t-disruptability.

Run:  python examples/rekey_and_pairwise.py
"""

import random

from repro import RadioNetwork, RngRegistry
from repro.adversary import RandomJammer, ScheduleAwareJammer
from repro.crypto.dh import TEST_GROUP_128, pairwise_context
from repro.fame import CorruptionModel, run_byzantine_exchange
from repro.service import PairwiseChannel, SecureSession


def main() -> None:
    n, channels, t = 18, 2, 1
    network = RadioNetwork(
        n, channels, t,
        adversary=RandomJammer(random.Random(17)),
        keep_trace=False,
    )
    rng = RngRegistry(seed=314)

    print("1. setup: establishing the session (group key)...")
    session = SecureSession(network, rng, group=TEST_GROUP_128)
    print(f"   members: {len(session.members)}, "
          f"setup {session.stats.setup_rounds} rounds")

    compromised = session.members[4]
    print(f"\n2. device {compromised} flagged as compromised — re-keying...")
    rekey = session.rekey(compromised=[compromised])
    print(f"   generation {rekey.generation}: {len(rekey.members)} members, "
          f"{rekey.rounds} rounds (vs {session.stats.setup_rounds} for full "
          "setup)")
    session.send(rekey.members[0], b"post-compromise traffic")
    session.flush()
    print(f"   node {compromised} excluded: holds neither the new group key "
          "nor any epoch")

    print("\n3. point-to-point: nodes 3 and 9 open a private channel")
    pair_key = session.setup.pairwise_keys.get(frozenset((3, 9)))
    if pair_key is None:
        # 3 and 9 are both non-leaders: derive through their leader keys
        # is out of scope here; fall back to a leader pair.
        a, b = 0, 9
        pair_key = session.setup.pairwise_keys[frozenset((a, b))]
    else:
        a, b = 3, 9
    channel = PairwiseChannel(network, pair_key, a, b)
    delivery = channel.send(a, b"just between us")
    print(f"   node {b} received {delivery.payload!r} from {delivery.sender} "
          f"in {channel.epoch_length()} rounds; nobody else was listening")

    print("\n4. Byzantine corruption: 1 node runs adversarial code")
    byz_net = RadioNetwork(
        20, 2, 1,
        adversary=ScheduleAwareJammer(random.Random(23), policy="prefix"),
    )
    edges = [(0, 1), (2, 3), (4, 5), (6, 7)]
    result = run_byzantine_exchange(
        byz_net, edges, rng=RngRegistry(seed=23),
        corruption=CorruptionModel.of(0),  # node 0 garbles and lies
    )
    print(f"   failed pairs: {result.failed} "
          f"(cover {result.disruptability()} <= 2t = {2 * t})")
    print(f"   garbled by corrupt sources: {result.garbled}")
    print("   lying witnesses were outvoted by the 3(t+1) honest majority.")


if __name__ == "__main__":
    main()
