#!/usr/bin/env python3
"""Running f-AME and its ablations through the adversary gauntlet.

Reproduces the paper's core resilience story on one screen:

1. every adversary in the gallery — from blind jammers to the
   schedule-aware worst case — leaves f-AME's disruption graph with a
   vertex cover of at most t (Theorem 6);
2. the triangle-isolation attack forces the surrogate-free baselines to
   2t, twice f-AME's failures (Section 5's second insight / Section 8 Q1).

Run:  python examples/adversary_gauntlet.py
"""

import random

from repro import RadioNetwork, RngRegistry, run_fame
from repro.adversary import (
    NullAdversary,
    RandomJammer,
    ReactiveJammer,
    ScheduleAwareJammer,
    SpoofingAdversary,
    SweepJammer,
    TriangleIsolationAdversary,
)
from repro.baselines import run_direct_exchange, run_no_surrogate

N, C, T = 40, 3, 2
PAIRS = [(i, i + 20) for i in range(8)] + [(3, 30), (3, 31)]

GALLERY = {
    "no adversary": lambda r: NullAdversary(),
    "random jammer": RandomJammer,
    "sweep jammer": lambda r: SweepJammer(),
    "reactive jammer": ReactiveJammer,
    "spoofer": SpoofingAdversary,
    "schedule-aware (prefix)": lambda r: ScheduleAwareJammer(r, policy="prefix"),
    "schedule-aware (random)": lambda r: ScheduleAwareJammer(r, policy="random"),
}


def gauntlet() -> None:
    print(f"f-AME gauntlet: n={N}, C={C}, t={T}, {len(PAIRS)} pairs")
    print(f"{'adversary':26} {'failed':>6} {'cover':>6}  bound")
    for name, factory in GALLERY.items():
        net = RadioNetwork(N, C, T, adversary=factory(random.Random(1)))
        res = run_fame(net, PAIRS, rng=RngRegistry(seed=5))
        print(f"{name:26} {len(res.failed):>6} {res.disruptability():>6}"
              f"  <= {T}")
        assert res.is_d_disruptable(T)


def ablation() -> None:
    triples = [(0, 1, 2), (3, 4, 5)]
    edges = [(a, b) for tr in triples for a in tr for b in tr if a != b]
    edges += [(20 + i, 30 + i) for i in range(4)]

    def fresh_net():
        return RadioNetwork(
            N, C, T, adversary=TriangleIsolationAdversary(triples)
        )

    direct = run_direct_exchange(fresh_net(), edges, passes=5)
    nosur = run_no_surrogate(fresh_net(), edges, rng=RngRegistry(seed=9))
    fame = run_fame(fresh_net(), edges, rng=RngRegistry(seed=9))

    print("\ntriangle-isolation attack (t vertex-disjoint triples):")
    print(f"  direct exchange   cover = {direct.disruptability()}  (theory 2t = {2*T})")
    print(f"  no-surrogate      cover = {nosur.disruptability()}  (theory 2t = {2*T})")
    print(f"  f-AME             cover = {fame.disruptability()}  (theory  t = {T})")
    print("\nsurrogates are what reroute around the isolated triples —")
    print("without them the adversary doubles the damage.")


if __name__ == "__main__":
    gauntlet()
    ablation()
