#!/usr/bin/env python3
"""Quickstart: authenticated message exchange under active jamming.

Builds a 20-node, 2-channel radio network where a worst-case adversary
jams one channel per round (t = 1), and runs f-AME to exchange five
messages.  The protocol needs no pre-shared secrets: authentication comes
from the deterministic broadcast schedule, and the adversary can block at
most a vertex-cover-1 subset of the pairs.

Run:  python examples/quickstart.py
"""

import random

from repro import (
    RadioNetwork,
    RngRegistry,
    ScheduleAwareJammer,
    run_fame,
)


def main() -> None:
    n, channels, t = 20, 2, 1

    # The strongest adversary the model allows against f-AME: it reads the
    # public schedule each round and jams t of the t+1 channels in use.
    adversary = ScheduleAwareJammer(random.Random(7), policy="suffix")
    network = RadioNetwork(n, channels, t, adversary=adversary)

    pairs = [(0, 1), (2, 3), (4, 5), (1, 6), (7, 8)]
    messages = {pair: f"hello from {pair[0]} to {pair[1]}" for pair in pairs}

    result = run_fame(
        network, pairs, messages=messages, rng=RngRegistry(seed=42)
    )

    print(f"f-AME finished in {result.moves} game moves / "
          f"{result.rounds} radio rounds\n")
    for pair, outcome in sorted(result.outcomes.items()):
        if outcome.success:
            print(f"  {pair}: delivered {outcome.message!r} "
                  f"(move {outcome.move})")
        else:
            print(f"  {pair}: FAIL (adversary blocked it)")

    print(f"\ndisruptability (min vertex cover of failures): "
          f"{result.disruptability()}  <=  t = {t}")
    print(f"adversary transmissions spent: "
          f"{network.metrics.adversary_transmissions}")
    print(f"spoofed frames accepted by anyone: "
          f"{network.metrics.spoofs_delivered} (always 0 in f-AME rounds)")


if __name__ == "__main__":
    main()
