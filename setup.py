"""Setuptools shim.

All metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works in offline environments whose setuptools lacks
the ``wheel`` package required by the PEP-517 editable path
(``pip install -e . --no-build-isolation --no-use-pep517``).
"""

from setuptools import setup

setup()
