"""repro — a full reproduction of *Secure Communication Over Radio Channels*.

Dolev, Gilbert, Guerraoui, Newport (PODC 2008): secure, authenticated
communication in a multi-channel single-hop radio network with a malicious
jamming/spoofing adversary and **no pre-shared secrets**.

Layers (bottom-up):

* :mod:`repro.radio` — the synchronous multi-channel radio model (Section 3);
* :mod:`repro.adversary` — pluggable interference strategies, including the
  worst-case constructions from the proofs;
* :mod:`repro.game` — the (G, t)-starred-edge removal game and the greedy
  strategy (Sections 5.1-5.2);
* :mod:`repro.feedback` — communication-feedback (Section 5.3) and the
  parallel-prefix merge (Section 5.5);
* :mod:`repro.fame` — the f-AME protocol (Sections 5.4-5.6);
* :mod:`repro.crypto` — from-scratch DH, hashes, PRG, authenticated
  encryption, channel hopping;
* :mod:`repro.groupkey` — shared group-key establishment (Section 6);
* :mod:`repro.service` — the long-lived communication service (Section 7);
* :mod:`repro.baselines` — direct exchange, no-surrogate ablation,
  oblivious gossip;
* :mod:`repro.analysis` — vertex covers, disruptability, statistics.

Quickstart
----------
>>> from repro import RadioNetwork, RngRegistry, run_fame
>>> net = RadioNetwork(n=20, channels=2, t=1)
>>> result = run_fame(net, edges=[(0, 1), (2, 3)], rng=RngRegistry(seed=7))
>>> sorted(result.succeeded)
[(0, 1), (2, 3)]
"""

from .errors import (
    ConfigurationError,
    CryptoError,
    GameRuleViolation,
    ProtocolViolation,
    ReproError,
    ScheduleError,
    ServiceError,
    SimulationDiverged,
)
from .params import DEFAULT_PARAMETERS, ProtocolParameters, min_population, validate_model
from .rng import RngRegistry

from .radio import (
    SLEEP,
    ExecutionTrace,
    Jam,
    Listen,
    Message,
    NetworkMetrics,
    RadioNetwork,
    RoundMeta,
    RoundRecord,
    Sleep,
    Transmit,
)
from .adversary import (
    Adversary,
    BudgetAdversary,
    NullAdversary,
    RandomJammer,
    ReactiveJammer,
    ScheduleAwareJammer,
    SimulatingAdversary,
    SpoofingAdversary,
    SweepJammer,
    TriangleIsolationAdversary,
)
from .game import (
    EdgeItem,
    GameGraph,
    GameResult,
    GreedyPools,
    GreedyTermination,
    NodeItem,
    StarredEdgeRemovalGame,
    greedy_proposal,
)
from .feedback import WitnessAssignment, run_feedback, run_parallel_feedback
from .fame import (
    FameConfig,
    FameProtocol,
    FameResult,
    PairOutcome,
    Regime,
    make_config,
    run_fame,
    run_fame_with_digests,
)
from .groupkey import (
    GroupKeyProtocol,
    GroupKeyResult,
    establish_group_key,
    leader_spanner,
)
from .service import Delivery, LongLivedChannel, SecureSession
from .baselines import (
    run_direct_exchange,
    run_no_surrogate,
    run_oblivious_gossip,
)
from .analysis import disruptability, min_vertex_cover

__version__ = "1.0.0"

__all__ = [
    "Adversary",
    "BudgetAdversary",
    "ConfigurationError",
    "CryptoError",
    "DEFAULT_PARAMETERS",
    "Delivery",
    "EdgeItem",
    "ExecutionTrace",
    "FameConfig",
    "FameProtocol",
    "FameResult",
    "GameGraph",
    "GameResult",
    "GameRuleViolation",
    "GreedyPools",
    "GreedyTermination",
    "GroupKeyProtocol",
    "GroupKeyResult",
    "Jam",
    "Listen",
    "LongLivedChannel",
    "Message",
    "NetworkMetrics",
    "NodeItem",
    "NullAdversary",
    "PairOutcome",
    "ProtocolParameters",
    "ProtocolViolation",
    "RadioNetwork",
    "RandomJammer",
    "ReactiveJammer",
    "Regime",
    "ReproError",
    "RngRegistry",
    "RoundMeta",
    "RoundRecord",
    "SLEEP",
    "ScheduleAwareJammer",
    "ScheduleError",
    "SecureSession",
    "ServiceError",
    "SimulatingAdversary",
    "SimulationDiverged",
    "Sleep",
    "SpoofingAdversary",
    "StarredEdgeRemovalGame",
    "SweepJammer",
    "Transmit",
    "TriangleIsolationAdversary",
    "WitnessAssignment",
    "disruptability",
    "establish_group_key",
    "greedy_proposal",
    "leader_spanner",
    "make_config",
    "min_population",
    "min_vertex_cover",
    "run_direct_exchange",
    "run_fame",
    "run_fame_with_digests",
    "run_feedback",
    "run_no_surrogate",
    "run_oblivious_gossip",
    "run_parallel_feedback",
    "validate_model",
    "__version__",
]
