"""Success-probability estimation for with-high-probability claims.

The paper's guarantees hold "with high probability" (conventionally,
``>= 1 - 1/n``).  To check such claims empirically we estimate failure rates
over repeated randomized executions and report Wilson score intervals, which
behave sensibly at the zero-failure boundary where the naive normal interval
collapses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class RateEstimate:
    """An empirical rate with its Wilson confidence interval."""

    successes: int
    trials: int
    low: float
    high: float

    @property
    def point(self) -> float:
        """The maximum-likelihood rate.

        NaN contract: when ``trials == 0`` there is no rate to estimate and
        this returns ``float("nan")`` — *not* ``0.0``, which would read as
        an observed zero rate.  NaN compares false against everything
        (including itself), so thresholds like ``est.point >= 0.9`` safely
        fail on an empty estimate; callers that need to branch must check
        ``trials`` (or ``math.isnan``) explicitly.  :func:`empirical_rate`
        never builds an empty estimate (``wilson_interval`` rejects
        ``trials <= 0``); the contract exists for directly-constructed
        instances, e.g. placeholder rows in sweep reports.
        """
        return self.successes / self.trials if self.trials else float("nan")


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Parameters
    ----------
    successes, trials:
        Observed counts; requires ``0 <= successes <= trials`` and
        ``trials > 0``.
    z:
        Normal quantile; the default 1.96 gives a ~95% interval.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be within [0, trials]")
    p = successes / trials
    denom = 1 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return (max(0.0, center - half), min(1.0, center + half))


def empirical_rate(successes: int, trials: int, z: float = 1.96) -> RateEstimate:
    """Bundle a rate estimate with its Wilson interval."""
    low, high = wilson_interval(successes, trials, z)
    return RateEstimate(successes=successes, trials=trials, low=low, high=high)


def min_informative_trials(n: int, z: float = 1.96) -> int:
    """Smallest trial count whose Wilson interval can resolve a ``1/n`` rate.

    The narrowest interval a binomial experiment of ``T`` trials can
    produce is the zero-failure one, whose Wilson upper bound is
    ``z^2 / (T + z^2)``.  Requiring that bound to reach ``1/n`` gives the
    closed form ``T >= z^2 * (n - 1)``: with fewer trials, even a run with
    *no* observed failures leaves the interval straddling ``1/n``, so no
    outcome of the experiment carries information about the w.h.p. claim.
    """
    if n < 1:
        raise ValueError("n must be positive")
    needed = math.ceil(z * z * (n - 1))
    # ceil() works on a float product, which can land one ulp short of the
    # invariant for (rare) n where z^2 * (n-1) is representable exactly;
    # step forward until the documented bound actually holds.
    while needed >= 1 and wilson_interval(0, needed, z)[1] > 1.0 / n:
        needed += 1
    return needed


def meets_whp(failures: int, trials: int, n: int, z: float = 1.96) -> bool:
    """Conservatively check an observed failure rate against the 1/n target.

    Decision rule
    -------------
    1. **Reject** (return ``False``) when the Wilson lower bound of the
       observed failure rate exceeds ``1/n`` — a rejection is statistically
       valid at *any* trial count (e.g. 72 failures out of 72 trials
       decisively refutes a 1/20 claim).
    2. Otherwise the data is consistent with the claim, and *accepting*
       requires an informative experiment: ``trials`` must be at least
       :func:`min_informative_trials` (``ceil(z^2 * (n - 1))``), the point
       at which a zero-failure run pins the Wilson upper bound at or below
       ``1/n``.  Below that threshold every consistent outcome has a
       Wilson lower bound of ~0 and acceptance would be vacuous — e.g. the
       old behaviour of ``meets_whp(0, 1, n)`` "confirming" a ``1/n``
       claim from a single trial.  Such calls raise :class:`ValueError`
       instead of returning a meaningless ``True``.
    3. Given an informative trial count, accept: the data cannot
       statistically reject the w.h.p. claim.
    """
    if n < 1:
        raise ValueError("n must be positive")
    low, _high = wilson_interval(failures, trials, z)
    if low > 1.0 / n:
        return False
    needed = min_informative_trials(n, z)
    if trials < needed:
        raise ValueError(
            f"{trials} trials cannot support a 1/{n} failure-rate claim: "
            "even zero observed failures would leave the Wilson interval "
            f"straddling 1/{n}; need >= {needed} trials"
        )
    return True
