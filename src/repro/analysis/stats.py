"""Success-probability estimation for with-high-probability claims.

The paper's guarantees hold "with high probability" (conventionally,
``>= 1 - 1/n``).  To check such claims empirically we estimate failure rates
over repeated randomized executions and report Wilson score intervals, which
behave sensibly at the zero-failure boundary where the naive normal interval
collapses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class RateEstimate:
    """An empirical rate with its Wilson confidence interval."""

    successes: int
    trials: int
    low: float
    high: float

    @property
    def point(self) -> float:
        """The maximum-likelihood rate."""
        return self.successes / self.trials if self.trials else float("nan")


def wilson_interval(
    successes: int, trials: int, z: float = 1.96
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Parameters
    ----------
    successes, trials:
        Observed counts; requires ``0 <= successes <= trials`` and
        ``trials > 0``.
    z:
        Normal quantile; the default 1.96 gives a ~95% interval.
    """
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must be within [0, trials]")
    p = successes / trials
    denom = 1 + z * z / trials
    center = (p + z * z / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return (max(0.0, center - half), min(1.0, center + half))


def empirical_rate(successes: int, trials: int, z: float = 1.96) -> RateEstimate:
    """Bundle a rate estimate with its Wilson interval."""
    low, high = wilson_interval(successes, trials, z)
    return RateEstimate(successes=successes, trials=trials, low=low, high=high)


def meets_whp(failures: int, trials: int, n: int) -> bool:
    """Conservatively check an observed failure rate against the 1/n target.

    Accepts when the Wilson lower bound of the *failure* rate is below
    ``1/n`` — i.e. we cannot statistically reject the w.h.p. claim.
    """
    low, _high = wilson_interval(failures, trials)
    return low <= 1.0 / n
