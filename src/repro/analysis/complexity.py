"""Fitting measured round counts against the paper's asymptotic claims.

The evaluation artifacts of this paper are complexity rows (Figure 3) and
theorem-shaped bounds, so "reproducing a figure" means measuring round counts
over a parameter sweep and checking that the growth *shape* matches — e.g.
that f-AME rounds grow linearly in ``|E|`` and that the ``C >= 2t`` variant
beats the ``C = t+1`` variant by roughly the predicted ``t^2 / t·log`` ratios.

We provide a tiny log-log least-squares power-law fit (no scipy dependency at
runtime; numpy only) and ratio tables for the benchmark reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class PowerLawFit:
    """Result of fitting ``y ≈ coefficient * x ** exponent``."""

    exponent: float
    coefficient: float
    r_squared: float


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Least-squares fit of ``log y = a log x + b``.

    Requires at least two strictly positive points.  Returns the exponent
    ``a``, coefficient ``e^b``, and the coefficient of determination on the
    log-log scale.
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    pts = [(x, y) for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len(pts) < 2:
        raise ValueError("need at least two positive points")
    lx = [math.log(x) for x, _ in pts]
    ly = [math.log(y) for _, y in pts]
    n = len(pts)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    sxx = sum((x - mean_x) ** 2 for x in lx)
    if sxx == 0:
        raise ValueError("xs are all equal; cannot fit")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(lx, ly))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum(
        (y - (slope * x + intercept)) ** 2 for x, y in zip(lx, ly)
    )
    ss_tot = sum((y - mean_y) ** 2 for y in ly)
    r2 = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return PowerLawFit(exponent=slope, coefficient=math.exp(intercept), r_squared=r2)


def scaling_ratios(ys: Sequence[float]) -> list[float]:
    """Successive ratios ``y[i+1] / y[i]`` — a quick growth-shape probe."""
    if len(ys) < 2:
        return []
    return [b / a for a, b in zip(ys, ys[1:]) if a > 0]


def normalized_cost(
    ys: Sequence[float], predictions: Sequence[float]
) -> list[float]:
    """Measured cost divided by the theory prediction, point by point.

    A flat sequence (constant ratio) indicates the measured data matches the
    predicted shape up to the constant the theory leaves unspecified.
    """
    if len(ys) != len(predictions):
        raise ValueError("length mismatch")
    return [y / p for y, p in zip(ys, predictions) if p > 0]
