"""Measurement and verification helpers.

These modules do not participate in the protocols; they *judge* them:
computing minimum vertex covers of disruption graphs (the quantity
Definition 1's ``d``-disruptability is phrased in), building disruption
graphs from protocol outcomes, estimating success probabilities, and fitting
measured round counts against the paper's asymptotic claims.
"""

from .vertex_cover import (
    greedy_matching_cover,
    has_cover_at_most,
    min_vertex_cover,
    vertex_cover_number,
)
from .disruption import (
    disruptability,
    disruptability_histogram,
    disruption_graph,
)
from .stats import (
    empirical_rate,
    meets_whp,
    min_informative_trials,
    wilson_interval,
)
from .complexity import fit_power_law, scaling_ratios
from .graphs import (
    is_k_connected,
    matching_lower_bound,
    node_connectivity,
    triangle_count,
)
from .theory import (
    feedback_miss_probability,
    feedback_repetitions_for_target,
    gossip_miss_probability,
    hopping_miss_probability,
    union_bound_failure,
)

__all__ = [
    "disruptability",
    "disruptability_histogram",
    "disruption_graph",
    "empirical_rate",
    "feedback_miss_probability",
    "feedback_repetitions_for_target",
    "fit_power_law",
    "gossip_miss_probability",
    "hopping_miss_probability",
    "is_k_connected",
    "matching_lower_bound",
    "meets_whp",
    "min_informative_trials",
    "node_connectivity",
    "triangle_count",
    "union_bound_failure",
    "greedy_matching_cover",
    "has_cover_at_most",
    "min_vertex_cover",
    "scaling_ratios",
    "vertex_cover_number",
    "wilson_interval",
]
