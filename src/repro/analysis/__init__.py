"""Measurement and verification helpers.

These modules do not participate in the protocols; they *judge* them:
computing minimum vertex covers of disruption graphs (the quantity
Definition 1's ``d``-disruptability is phrased in), building disruption
graphs from protocol outcomes, estimating success probabilities, and fitting
measured round counts against the paper's asymptotic claims.

The pure-stdlib members (:mod:`~repro.analysis.vertex_cover`,
:mod:`~repro.analysis.disruption`, :mod:`~repro.analysis.stats`) are
imported eagerly — they sit on the trial hot path.  The numpy/networkx
ones (:mod:`~repro.analysis.graphs`, :mod:`~repro.analysis.theory`,
:mod:`~repro.analysis.complexity`) load lazily on first attribute
access: ``import repro`` happens once per spawned dispatch worker, and
those third-party imports were more than a third of its cost without
ever being needed to *run* a trial.
"""

from .vertex_cover import (
    greedy_matching_cover,
    has_cover_at_most,
    min_vertex_cover,
    vertex_cover_number,
)
from .disruption import (
    disruptability,
    disruptability_histogram,
    disruption_graph,
)
from .stats import (
    empirical_rate,
    meets_whp,
    min_informative_trials,
    wilson_interval,
)

# Lazily-resolved names (PEP 562), keyed to their defining submodule.
_LAZY_ATTRS = {
    "fit_power_law": "complexity",
    "scaling_ratios": "complexity",
    "is_k_connected": "graphs",
    "matching_lower_bound": "graphs",
    "node_connectivity": "graphs",
    "triangle_count": "graphs",
    "feedback_miss_probability": "theory",
    "feedback_repetitions_for_target": "theory",
    "gossip_miss_probability": "theory",
    "hopping_miss_probability": "theory",
    "union_bound_failure": "theory",
}


def __getattr__(name: str):
    module_name = _LAZY_ATTRS.get(name)
    if module_name is None:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        )
    import importlib

    value = getattr(
        importlib.import_module(f".{module_name}", __name__), name
    )
    globals()[name] = value  # cache: resolve each name at most once
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_ATTRS))


__all__ = [
    "disruptability",
    "disruptability_histogram",
    "disruption_graph",
    "empirical_rate",
    "feedback_miss_probability",
    "feedback_repetitions_for_target",
    "fit_power_law",
    "gossip_miss_probability",
    "hopping_miss_probability",
    "is_k_connected",
    "matching_lower_bound",
    "meets_whp",
    "min_informative_trials",
    "node_connectivity",
    "triangle_count",
    "union_bound_failure",
    "greedy_matching_cover",
    "has_cover_at_most",
    "min_vertex_cover",
    "scaling_ratios",
    "vertex_cover_number",
    "wilson_interval",
]
