"""Minimum vertex cover — the metric behind ``d``-disruptability.

Definition 1 measures an AME protocol's resilience by the minimum vertex
cover of the *disruption graph* (the failed pairs).  Minimum vertex cover is
NP-hard in general, but the covers arising here are small (``<= 2t``), so the
classic FPT branch-and-bound — pick an uncovered edge, branch on which
endpoint joins the cover — runs in ``O(2^k · |E|)`` and is exact.

The functions accept edges as iterables of 2-tuples; direction is ignored
(a cover must touch every edge regardless of orientation), matching the
paper's use of vertex cover on the directed disruption graph.
"""

from __future__ import annotations

from typing import Hashable, Iterable, TypeVar

V = TypeVar("V", bound=Hashable)


def _normalize(edges: Iterable[tuple[V, V]]) -> list[tuple[V, V]]:
    """Deduplicate edges ignoring orientation and drop self-loops.

    A self-loop would force its vertex into every cover; the disruption
    graphs produced by AME protocols never contain them (pairs are distinct
    nodes), so we treat them as caller error.
    """
    seen: set[frozenset[V]] = set()
    out: list[tuple[V, V]] = []
    for u, v in edges:
        if u == v:
            raise ValueError(f"self-loop ({u!r}, {v!r}) has no vertex-cover meaning here")
        key = frozenset((u, v))
        if key not in seen:
            seen.add(key)
            out.append((u, v))
    return out


def _cover_at_most(edges: list[tuple[V, V]], k: int) -> set[V] | None:
    """Return a cover of size <= k, or None.  Classic FPT branching."""
    if not edges:
        return set()
    if k == 0:
        return None
    u, v = edges[0]
    for pick in (u, v):
        remaining = [e for e in edges if pick not in e]
        sub = _cover_at_most(remaining, k - 1)
        if sub is not None:
            sub.add(pick)
            return sub
    return None


def has_cover_at_most(edges: Iterable[tuple[V, V]], k: int) -> bool:
    """Decide whether the graph has a vertex cover of size at most ``k``."""
    if k < 0:
        return False
    return _cover_at_most(_normalize(edges), k) is not None


def min_vertex_cover(edges: Iterable[tuple[V, V]]) -> set[V]:
    """Return one minimum vertex cover (exact).

    Searches sizes ``0, 1, 2, ...`` with the FPT routine; the doubling of a
    lower bound from a greedy matching prunes the search start.
    """
    normalized = _normalize(edges)
    if not normalized:
        return set()
    # A maximal matching of size m forces cover size >= m.
    lower = len(_greedy_matching(normalized))
    for k in range(lower, 2 * lower + 1):
        cover = _cover_at_most(normalized, k)
        if cover is not None:
            return cover
    raise AssertionError("unreachable: 2*matching always covers")


def vertex_cover_number(edges: Iterable[tuple[V, V]]) -> int:
    """Size of the minimum vertex cover."""
    return len(min_vertex_cover(edges))


def _greedy_matching(edges: list[tuple[V, V]]) -> list[tuple[V, V]]:
    matched: set[V] = set()
    matching: list[tuple[V, V]] = []
    for u, v in edges:
        if u not in matched and v not in matched:
            matching.append((u, v))
            matched.update((u, v))
    return matching


def greedy_matching_cover(edges: Iterable[tuple[V, V]]) -> set[V]:
    """The classic 2-approximation: both endpoints of a maximal matching.

    Useful as a fast upper bound when exact covers are not required (e.g.
    progress displays inside long benchmark sweeps).
    """
    cover: set[V] = set()
    for u, v in _greedy_matching(_normalize(edges)):
        cover.update((u, v))
    return cover
