"""Graph-theoretic checks built on networkx.

The paper's constructions make structural claims we can verify directly:

* the leader spanner is ``(t+1)``-connected (Section 6 calls it a
  "(t+1)-leader spanner" describing a sparse t+1-connected graph);
* disruption graphs produced by the triangle attack consist of ``t``
  edge-disjoint triangles;
* our exact vertex-cover solver can be cross-checked against networkx's
  matching-based bounds.
"""

from __future__ import annotations

from typing import Hashable, Iterable, TypeVar

import networkx as nx

V = TypeVar("V", bound=Hashable)


def to_undirected_graph(edges: Iterable[tuple[V, V]]) -> "nx.Graph":
    """Build an undirected networkx graph from (possibly directed) pairs."""
    graph = nx.Graph()
    graph.add_edges_from(edges)
    return graph


def node_connectivity(edges: Iterable[tuple[V, V]]) -> int:
    """Vertex connectivity of the undirected support of ``edges``."""
    graph = to_undirected_graph(edges)
    if graph.number_of_nodes() < 2:
        return 0
    return nx.node_connectivity(graph)


def is_k_connected(edges: Iterable[tuple[V, V]], k: int) -> bool:
    """Whether the undirected support is ``k``-vertex-connected."""
    return node_connectivity(edges) >= k


def matching_lower_bound(edges: Iterable[tuple[V, V]]) -> int:
    """Maximum-matching size — a lower bound on the vertex cover.

    König's theorem makes it exact on bipartite graphs; in general
    ``matching <= min-cover <= 2 * matching``.  Used to sanity-check the
    exact FPT solver in :mod:`repro.analysis.vertex_cover`.
    """
    graph = to_undirected_graph(edges)
    return len(nx.max_weight_matching(graph, maxcardinality=True))


def triangle_count(edges: Iterable[tuple[V, V]]) -> int:
    """Number of distinct triangles in the undirected support."""
    graph = to_undirected_graph(edges)
    return sum(nx.triangles(graph).values()) // 3
