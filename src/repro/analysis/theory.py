"""Closed-form success/failure curves for the randomized sub-protocols.

The paper's w.h.p. claims rest on simple per-round success probabilities;
this module states them in closed form (vectorized with numpy for sweep
plots and benchmark tables), so measurements can be compared against the
exact theory rather than only against asymptotic shapes.

* feedback listening (Figure 1): a non-witness hears a ``<true, r>`` frame
  with probability ``(C - t) / C`` per repetition — it must pick one of
  the ``C - t`` unjammed feedback channels;
* key-derived hopping (Sections 6-7): the blind adversary hits the hop
  with probability ``t / C`` per round;
* gossip epochs (Section 5.6): a listener needs transmitter and listener
  on the same unjammed channel — probability ``(C - t) / C^2``.
"""

from __future__ import annotations

import numpy as np


def feedback_miss_probability(
    repetitions: int | np.ndarray, channels: int, t: int
) -> np.ndarray:
    """P(a listener misses a true slot for all ``repetitions`` rounds)."""
    reps = np.asarray(repetitions, dtype=float)
    per_round = (channels - t) / channels
    return np.power(1.0 - per_round, reps)


def feedback_repetitions_for_target(
    target_miss: float, channels: int, t: int
) -> int:
    """Smallest repetition count pushing the miss probability below target."""
    if not 0 < target_miss < 1:
        raise ValueError("target_miss must be in (0, 1)")
    per_round = (channels - t) / channels
    return int(np.ceil(np.log(target_miss) / np.log(1.0 - per_round)))


def hopping_miss_probability(
    rounds: int | np.ndarray, channels: int, t: int
) -> np.ndarray:
    """P(the keyless adversary jams the hop every round of an epoch)."""
    rr = np.asarray(rounds, dtype=float)
    per_round = 1.0 - t / channels
    return np.power(1.0 - per_round, rr)


def gossip_miss_probability(
    rounds: int | np.ndarray, channels: int, t: int
) -> np.ndarray:
    """P(one listener never catches a gossip epoch's frame)."""
    rr = np.asarray(rounds, dtype=float)
    per_round = (channels - t) / (channels * channels)
    return np.power(1.0 - per_round, rr)


def union_bound_failure(per_party: float, parties: int) -> float:
    """Union bound: P(any of ``parties`` independent listeners fails)."""
    return float(min(1.0, per_party * parties))
