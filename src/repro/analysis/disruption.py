"""Disruption graphs and the ``d``-disruptability check of Definition 1.

After an AME execution, the *disruption graph* ``G_d = (Π, E')`` collects the
pairs that output ``fail``.  A protocol run satisfied ``d``-disruptability
iff the minimum vertex cover of ``G_d`` has at most ``d`` vertices — i.e.
some ``d`` nodes account for every failure.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Mapping

from .vertex_cover import has_cover_at_most, min_vertex_cover


def disruption_graph(
    outcomes: Mapping[tuple[int, int], bool]
) -> list[tuple[int, int]]:
    """Extract failed pairs from an outcome map.

    Parameters
    ----------
    outcomes:
        Map from ordered pair ``(v, w)`` to ``True`` (message delivered and
        authenticated) or ``False`` (the pair output ``fail``).
    """
    return [pair for pair, ok in outcomes.items() if not ok]


def disruptability(failed_pairs: Iterable[tuple[int, int]]) -> int:
    """The protocol run's disruptability: min vertex cover of the failures."""
    return len(min_vertex_cover(failed_pairs))


def is_d_disruptable(
    failed_pairs: Iterable[tuple[int, int]], d: int
) -> bool:
    """Check Definition 1's property 3 for a given ``d``."""
    return has_cover_at_most(failed_pairs, d)


def disruptability_histogram(covers: Iterable[int]) -> dict[int, int]:
    """Histogram of per-run disruptability values across many executions.

    Parameters
    ----------
    covers:
        One cover size per execution (each run's :func:`disruptability` of
        its failed pairs).  Takes precomputed values rather than the raw
        failed-pair sets because callers — e.g. the Monte Carlo runner —
        typically need the per-run covers anyway (min vertex cover is
        exact and worst-case exponential, so it should run once per run,
        ideally inside the worker that produced the run).

    Returns the map ``cover size -> number of runs``; an empty input yields
    an empty histogram.
    """
    return dict(Counter(covers))
