"""Channel-regime configuration for f-AME (Sections 5.4 and 5.5).

The paper analyses three regimes, summarised in its Figure 3:

========  =====================  ==========================  ====================
Regime    Channels required      Proposal size (game moves)  Feedback mechanism
========  =====================  ==========================  ====================
BASE      ``C >= t + 1``         ``t + 1``                   serial (Figure 1)
DOUBLE    ``C >= 2t``            ``2t``                      serial, ``O(log n)``
                                                             per slot
SQUARED   ``C >= 2t^2``          ``floor(C / t)``            parallel-prefix merge
========  =====================  ==========================  ====================

A :class:`FameConfig` fixes the regime, the set of channels used for the
message-transmission phase, and the feedback style, and validates the node
population against the witness demand of the schedule.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..params import ProtocolParameters, DEFAULT_PARAMETERS, validate_model


class Regime(enum.Enum):
    """The three channel regimes of Figure 3."""

    BASE = "base"  # C >= t+1, proposals of t+1 items, serial feedback
    DOUBLE = "double"  # C >= 2t, proposals of 2t items, serial feedback
    SQUARED = "squared"  # C >= 2t^2, proposals of C/t items, parallel feedback


def witness_group_size(t: int) -> int:
    """Listeners recruited per in-use channel: the paper's ``3(t+1)``.

    Large enough both to leave ``t+1`` spare surrogates after a starring
    round (Invariant 2 of Theorem 6) and to populate every feedback witness
    set (which needs one member per feedback channel).
    """
    return 3 * (t + 1)


@dataclass(frozen=True)
class FameConfig:
    """Resolved configuration for one f-AME execution.

    Attributes
    ----------
    n, channels, t:
        The model parameters (``channels`` is the network's full ``C``).
    regime:
        Which Figure 3 row this execution follows.
    proposal_size:
        Number of items per game proposal — equal to the number of channels
        used during message-transmission rounds.
    feedback_channels:
        How many channels the serial feedback routine occupies.  Capped at
        ``3(t+1)`` so witness groups can fill every feedback channel; using
        a subset of channels is safe because listeners only tune within it.
    params:
        The Θ(·) constants in force.
    """

    n: int
    channels: int
    t: int
    regime: Regime
    proposal_size: int
    feedback_channels: int
    params: ProtocolParameters = DEFAULT_PARAMETERS

    @property
    def parallel_feedback(self) -> bool:
        """True when the SQUARED regime's parallel-prefix merge is in use."""
        return self.regime is Regime.SQUARED

    def min_nodes_required(self) -> int:
        """Smallest population the schedule can always satisfy.

        Every move needs ``proposal_size`` witness groups of ``3(t+1)``
        listeners, plus at most ``2 * proposal_size`` nodes busy in the
        proposal — the paper's counting argument in Section 5.4: each
        channel contributes at most two busy nodes (a node item, or an
        edge's destination plus whichever of source/surrogate broadcasts;
        an idle source is itself a destination or is covered by the unused
        surrogate slot of another channel).  The ``+ 1`` mirrors the
        paper's strict inequality ``n > 3(t+1)^2 + 2(t+1)``: at the base
        proposal size this evaluates to exactly that bound plus one.
        """
        return (
            self.proposal_size * witness_group_size(self.t)
            + 2 * self.proposal_size
            + 1
        )

    def validate(self) -> "FameConfig":
        """Check regime arithmetic and population; returns ``self``."""
        validate_model(self.n, self.channels, self.t)
        if self.proposal_size < 1:
            raise ConfigurationError("proposal_size must be >= 1")
        if self.proposal_size > self.channels:
            raise ConfigurationError(
                f"proposal_size {self.proposal_size} exceeds C={self.channels}"
            )
        if self.regime is Regime.BASE and self.proposal_size != self.t + 1:
            raise ConfigurationError("BASE regime uses proposals of t+1 items")
        if self.regime is Regime.DOUBLE:
            if self.t < 1:
                raise ConfigurationError("DOUBLE regime needs t >= 1")
            if self.channels < 2 * self.t:
                raise ConfigurationError(
                    f"DOUBLE regime needs C >= 2t (C={self.channels}, t={self.t})"
                )
        if self.regime is Regime.SQUARED:
            if self.t < 1:
                raise ConfigurationError("SQUARED regime needs t >= 1")
            if self.channels < 2 * self.t * self.t:
                raise ConfigurationError(
                    f"SQUARED regime needs C >= 2t^2 "
                    f"(C={self.channels}, t={self.t})"
                )
        if not self.parallel_feedback:
            if self.feedback_channels <= self.t:
                raise ConfigurationError(
                    "serial feedback needs more channels than t"
                )
            if self.feedback_channels > self.channels:
                raise ConfigurationError("feedback_channels exceeds C")
            if self.feedback_channels > witness_group_size(self.t):
                raise ConfigurationError(
                    "feedback_channels exceeds the witness group size; "
                    "witness sets could not occupy every feedback channel"
                )
        if self.n < self.min_nodes_required():
            raise ConfigurationError(
                f"f-AME in regime {self.regime.value} with t={self.t} and "
                f"proposal size {self.proposal_size} needs "
                f"n >= {self.min_nodes_required()} (got n={self.n})"
            )
        return self


def make_config(
    n: int,
    channels: int,
    t: int,
    *,
    regime: Regime | None = None,
    params: ProtocolParameters = DEFAULT_PARAMETERS,
) -> FameConfig:
    """Build and validate a :class:`FameConfig`.

    When ``regime`` is ``None``, the fastest regime the channel count admits
    is selected (SQUARED over DOUBLE over BASE), mirroring Figure 3's advice
    that more channels buy speed.
    """
    validate_model(n, channels, t)
    if regime is None:
        # Pick the regime with the largest proposal size (fastest per
        # Figure 3) whose witness demand the population can satisfy; ties
        # go to the simplest regime, so degenerate cases (e.g. t = 1,
        # C = 2, where all rows coincide) stay BASE.
        def fits(size: int) -> bool:
            return n >= size * witness_group_size(t) + 2 * size + 1

        candidates: list[tuple[int, int, Regime]] = [(t + 1, 0, Regime.BASE)]
        if t >= 1 and channels >= 2 * t and fits(max(t + 1, 2 * t)):
            candidates.append((max(t + 1, 2 * t), -1, Regime.DOUBLE))
        if t >= 1 and channels >= 2 * t * t:
            size = max(t + 1, channels // t)
            if fits(size):
                candidates.append((size, -2, Regime.SQUARED))
        _, _, regime = max(candidates)

    if regime is Regime.BASE:
        proposal_size = t + 1
    elif regime is Regime.DOUBLE:
        proposal_size = max(t + 1, 2 * t)
    else:
        proposal_size = max(t + 1, channels // max(1, t))

    feedback_channels = min(channels, witness_group_size(t))
    config = FameConfig(
        n=n,
        channels=channels,
        t=t,
        regime=regime,
        proposal_size=proposal_size,
        feedback_channels=feedback_channels,
        params=params,
    )
    return config.validate()


def predicted_rounds(config: FameConfig, num_edges: int) -> float:
    """Figure 3's asymptotic total round count for ``num_edges`` pairs.

    Constants are normalised away; callers compare *shapes* (ratios across a
    sweep), not absolute values.
    """
    n, t = config.n, config.t
    log_n = max(1.0, math.log2(max(2, n)))
    if config.regime is Regime.BASE:
        return num_edges * (t + 1) ** 2 * log_n
    if config.regime is Regime.DOUBLE:
        return num_edges * log_n
    return num_edges * log_n * log_n / max(1, t)
