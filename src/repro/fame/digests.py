"""Constant-size messages for f-AME (Section 5.6).

Plain f-AME frames carry a sender's whole message vector.  The optimized
pipeline shrinks protocol messages to constant size in three stages:

1. **Message gossip** — every pair ``(v, w)`` of ``E`` gets one epoch of
   ``Θ(t^2 log n)`` rounds in which ``v`` broadcasts, on a fresh random
   channel each round, the message ``m_{v,i}`` tagged with the
   *reconstruction hash* ``H1(m_{v,i}, ..., m_{v,k})`` over the rest of its
   sequence.  Everyone else listens on random channels.  Delivery is w.h.p.
   but completely unauthenticated: the adversary can inject arbitrary fake
   frames, including internally consistent fake chains.

2. **Reconstruction** — each node arranges the frames it received for
   claimed source ``v`` into levels (one per epoch) and decorates them with
   edges: a level-``i`` frame links to a level-``i+1`` frame exactly when
   its reconstruction hash equals ``H1`` of its own message followed by the
   chained suffix.  Chains from level 1 to level ``k`` are candidate
   vectors ``M_v`` — the true one among (w.h.p. polynomially few) fakes.

3. **Vector signatures** — f-AME runs with each message replaced by the
   constant-size ``H2(M_v)``.  f-AME's schedule authenticates the signature,
   which then selects the unique matching candidate chain; the receiver
   extracts its own message from the validated vector.

All hash evaluations happen locally (cheap, per the paper's aside); only
the gossip epochs and the signature-sized f-AME run cost radio rounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..errors import ProtocolViolation
from ..radio.actions import Action, Listen, Transmit
from ..radio.messages import Message
from ..radio.network import RadioNetwork, RoundMeta
from ..rng import RngRegistry
from .config import FameConfig, make_config
from .protocol import FameProtocol
from .result import FameResult, PairOutcome

GOSSIP_KIND = "ame-gossip"
"""Frame kind used by gossip-phase broadcasts."""

HashFn = Callable[..., bytes]

SLOT_DIGEST_SIZE = 32
"""Byte length of slot-set digests (matches the H1 output width)."""

_SLOT_DOMAIN = "slot-digest"


def _slot_term(slot: int, hash1: HashFn) -> int:
    return int.from_bytes(hash1(_SLOT_DOMAIN, slot), "big")


class SlotSetDigest:
    """Incremental, order-independent digest over a set of slot indices.

    The digest of a slot set is the XOR of one ``H1`` term per member, so
    it can be maintained *incrementally*: adding a batch of new slots costs
    O(batch) hash evaluations regardless of how many slots are already
    digested, and the digest of a disjoint union is the XOR of the parts'
    digests (:func:`combine_digests`).  This is what lets the parallel
    feedback merge tag every knowledge frame with a digest of the frame's
    full slot coverage without ever re-hashing the accumulated set: leaf
    groups hash their single slot once, merged groups combine in O(1).

    Duplicate slots are ignored (a set, not a multiset), which keeps the
    invariant *apply-then-digest equals digest-of-merged*: feeding any
    sequence of possibly-overlapping slot batches through :meth:`update`
    yields exactly ``slot_set_digest(union of the batches)`` —
    ``tests/test_schedule_properties.py`` pins this property.
    """

    __slots__ = ("_acc", "_slots", "_hash1")

    def __init__(
        self, slots: "Iterable[int]" = (), *, hash1: HashFn | None = None
    ) -> None:
        from ..crypto.hashes import h1 as default_h1

        self._hash1 = hash1 or default_h1
        self._acc = 0
        self._slots: set[int] = set()
        self.update(slots)

    def update(self, slots: "Iterable[int]") -> "SlotSetDigest":
        """Fold new slots into the digest (already-present slots are
        no-ops); returns ``self`` for chaining."""
        for slot in slots:
            if slot not in self._slots:
                self._slots.add(slot)
                self._acc ^= _slot_term(slot, self._hash1)
        return self

    @property
    def value(self) -> bytes:
        """The current digest."""
        return self._acc.to_bytes(SLOT_DIGEST_SIZE, "big")

    @property
    def slots(self) -> frozenset[int]:
        """The slot set digested so far."""
        return frozenset(self._slots)

    def __len__(self) -> int:
        return len(self._slots)


def slot_set_digest(
    slots: "Iterable[int]", *, hash1: HashFn | None = None
) -> bytes:
    """One-shot digest of a slot set (see :class:`SlotSetDigest`)."""
    return SlotSetDigest(slots, hash1=hash1).value


def combine_digests(*digests: bytes) -> bytes:
    """Digest of a *disjoint* union, from the parts' digests, in O(parts).

    XOR-combining is only union-compatible when the underlying slot sets
    are pairwise disjoint (a shared slot's term would cancel); the parallel
    merge tree satisfies this by construction — each slot lives in exactly
    one group per level.
    """
    acc = 0
    for digest in digests:
        acc ^= int.from_bytes(digest, "big")
    return acc.to_bytes(SLOT_DIGEST_SIZE, "big")


def message_sequence(
    edges: Sequence[tuple[int, int]], source: int
) -> list[tuple[int, int]]:
    """The canonical epoch order of ``source``'s pairs: sorted by dest.

    Section 5.6 fixes an order ``M_v`` of the values to be sent; every node
    derives the same order from the public edge set.
    """
    return sorted((p for p in edges if p[0] == source), key=lambda p: p[1])


def reconstruction_hashes(
    sequence: Sequence[Any], hash1: HashFn
) -> list[bytes]:
    """Per-level hashes: ``h_i = H1(m_i, m_{i+1}, ..., m_k)``."""
    return [hash1(*sequence[i:]) for i in range(len(sequence))]


@dataclass
class GossipInbox:
    """Frames a node collected during the gossip phase.

    ``levels[source][i]`` is the set of distinct ``(message, hash)``
    candidates heard during the ``i``-th epoch of ``source``.  Everything in
    here is attacker-influencable — candidates are *claims*, validated only
    by reconstruction plus the authenticated vector signature.
    """

    levels: dict[int, list[set[tuple[Any, bytes]]]] = field(default_factory=dict)

    def ensure(self, source: int, num_levels: int) -> None:
        """Make room for ``source``'s epochs."""
        self.levels.setdefault(
            source, [set() for _ in range(num_levels)]
        )

    def add(self, source: int, level: int, message: Any, digest: bytes) -> None:
        """Record a candidate frame (deduplicated)."""
        if source in self.levels and 0 <= level < len(self.levels[source]):
            self.levels[source][level].add((message, digest))

    def candidate_count(self, source: int) -> int:
        """Total candidates stored for ``source`` (spoof pressure metric)."""
        return sum(len(s) for s in self.levels.get(source, ()))


def reconstruct_chains(
    levels: Sequence[set[tuple[Any, bytes]]], hash1: HashFn
) -> list[tuple[Any, ...]]:
    """All hash-consistent message chains through the levels.

    Implements the backwards decoration of Section 5.6: a last-level
    candidate is valid when its tag equals ``H1`` of its own message; a
    level-``i`` candidate chains onto every suffix whose combined hash
    matches its tag.  With a collision-resistant ``H1`` each candidate has
    at most one outgoing edge; a weak hash may fan out, and this function
    faithfully returns every consistent chain.
    """
    if not levels:
        return []
    # suffixes[i] maps each candidate at level i to its valid suffix chains.
    suffix_chains: list[tuple[Any, ...]] = []
    current: dict[tuple[Any, bytes], list[tuple[Any, ...]]] = {}
    for message, digest in levels[-1]:
        if digest == hash1(message):
            current[(message, digest)] = [(message,)]
    for level in range(len(levels) - 2, -1, -1):
        nxt = current
        current = {}
        for message, digest in levels[level]:
            chains: list[tuple[Any, ...]] = []
            for suffixes in nxt.values():
                for suffix in suffixes:
                    if digest == hash1(message, *suffix):
                        chains.append((message,) + suffix)
            if chains:
                current[(message, digest)] = chains
    return [chain for chains in current.values() for chain in chains]


@dataclass
class DigestFameResult:
    """Outcome of the optimized (constant message size) f-AME pipeline.

    ``fame`` is the inner signature-exchange run; ``outcomes`` contains the
    final per-pair results after vector validation.  The candidate/chain
    statistics expose how much spoofing pressure the reconstruction absorbed.
    """

    fame: FameResult
    outcomes: dict[tuple[int, int], PairOutcome]
    gossip_rounds: int
    candidate_stats: dict[int, int]
    chain_stats: dict[int, int]

    @property
    def failed(self) -> list[tuple[int, int]]:
        """Pairs that output fail."""
        return [p for p, o in self.outcomes.items() if not o.success]

    @property
    def succeeded(self) -> list[tuple[int, int]]:
        """Pairs whose message was delivered and authenticated."""
        return [p for p, o in self.outcomes.items() if o.success]

    def disruptability(self) -> int:
        """Minimum vertex cover of the failed pairs."""
        from ..analysis.vertex_cover import min_vertex_cover

        return len(min_vertex_cover(self.failed))


def run_gossip_phase(
    network: RadioNetwork,
    edges: Sequence[tuple[int, int]],
    messages: Mapping[tuple[int, int], Any],
    rng: RngRegistry,
    hash1: HashFn,
    *,
    epoch_rounds: int | None = None,
) -> tuple[list[GossipInbox], int]:
    """Run the message-gossip phase; returns per-node inboxes and rounds.

    Every epoch, the epoch's source hops randomly and broadcasts its frame;
    every other node listens on a random channel and records whatever
    ``ame-gossip`` frames arrive (spoofs included — authentication comes
    later).
    """
    n = network.n
    if epoch_rounds is None:
        epoch_rounds = network.params.gossip_epoch_rounds(n, network.t)
    inboxes = [GossipInbox() for _ in range(n)]

    sources = sorted({v for v, _ in edges})
    sequences = {v: message_sequence(edges, v) for v in sources}
    for node in range(n):
        for v in sources:
            inboxes[node].ensure(v, len(sequences[v]))

    rounds = 0
    for v in sources:
        seq_msgs = [messages[p] for p in sequences[v]]
        tags = reconstruction_hashes(seq_msgs, hash1)
        for level, message in enumerate(seq_msgs):
            frame = Message(
                kind=GOSSIP_KIND,
                sender=v,
                payload=(v, level, message, tags[level]),
            )
            # The source itself trivially knows its own frame.
            inboxes[v].add(v, level, message, tags[level])
            for _ in range(epoch_rounds):
                actions: dict[int, Action] = {}
                for node in range(n):
                    stream = rng.stream("gossip", node)
                    if node == v:
                        actions[node] = Transmit(
                            stream.randrange(network.channels), frame
                        )
                    else:
                        actions[node] = Listen(
                            stream.randrange(network.channels)
                        )
                results = network.execute_round(
                    actions,
                    RoundMeta(
                        phase="gossip", extra={"source": v, "level": level}
                    ),
                )
                rounds += 1
                for node, received in results.items():
                    if received is None or received.kind != GOSSIP_KIND:
                        continue
                    try:
                        src, lvl, msg, digest = received.payload
                    except (TypeError, ValueError):
                        continue  # malformed spoof
                    if isinstance(digest, bytes):
                        inboxes[node].add(src, lvl, msg, digest)
    return inboxes, rounds


def run_fame_with_digests(
    network: RadioNetwork,
    edges: Sequence[tuple[int, int]],
    messages: Mapping[tuple[int, int], Any] | None = None,
    rng: RngRegistry | None = None,
    *,
    config: FameConfig | None = None,
    hash1: HashFn | None = None,
    hash2: HashFn | None = None,
    epoch_rounds: int | None = None,
) -> DigestFameResult:
    """The full Section 5.6 pipeline: gossip, reconstruct, sign, extract."""
    from ..crypto.hashes import h1 as default_h1, h2 as default_h2
    from .protocol import default_messages

    hash1 = hash1 or default_h1
    hash2 = hash2 or default_h2
    rng = rng or RngRegistry(seed=0)
    config = config or make_config(
        network.n, network.channels, network.t, params=network.params
    )
    edges = list(dict.fromkeys((int(v), int(w)) for v, w in edges))
    messages = (
        dict(messages) if messages is not None else default_messages(edges)
    )

    # Stage 1: unauthenticated gossip.
    inboxes, gossip_rounds = run_gossip_phase(
        network, edges, messages, rng, hash1, epoch_rounds=epoch_rounds
    )

    # Stage 2: local reconstruction at every node.
    sources = sorted({v for v, _ in edges})
    sequences = {v: message_sequence(edges, v) for v in sources}
    chains_per_node: list[dict[int, list[tuple[Any, ...]]]] = []
    for node in range(network.n):
        per_source: dict[int, list[tuple[Any, ...]]] = {}
        for v in sources:
            per_source[v] = reconstruct_chains(
                inboxes[node].levels[v], hash1
            )
        chains_per_node.append(per_source)

    # Stage 3: f-AME carrying constant-size vector signatures.
    signatures = {
        v: hash2(*(messages[p] for p in sequences[v])) for v in sources
    }
    signature_messages = {(v, w): signatures[v] for (v, w) in edges}
    fame_result = FameProtocol(
        network, edges, messages=signature_messages, rng=rng, config=config
    ).run()

    # Stage 4: signature validation and message extraction.
    outcomes: dict[tuple[int, int], PairOutcome] = {}
    candidate_stats: dict[int, int] = {}
    chain_stats: dict[int, int] = {}
    for v in sources:
        candidate_stats[v] = max(
            inboxes[node].candidate_count(v) for node in range(network.n)
        )
        chain_stats[v] = max(
            len(chains_per_node[node][v]) for node in range(network.n)
        )
    for pair in edges:
        v, w = pair
        inner = fame_result.outcomes[pair]
        if not inner.success:
            outcomes[pair] = PairOutcome(pair=pair, success=False)
            continue
        received_signature = inner.message
        matching = [
            chain
            for chain in chains_per_node[w][v]
            if hash2(*chain) == received_signature
        ]
        if len(matching) != 1:
            # Either the gossip epoch failed for this receiver (w.h.p. not)
            # or a weak hash produced a signature collision; the pair must
            # conservatively output fail rather than accept ambiguity.
            outcomes[pair] = PairOutcome(pair=pair, success=False)
            continue
        vector = matching[0]
        index = sequences[v].index(pair)
        outcomes[pair] = PairOutcome(
            pair=pair, success=True, message=vector[index], move=inner.move
        )
    return DigestFameResult(
        fame=fame_result,
        outcomes=outcomes,
        gossip_rounds=gossip_rounds,
        candidate_stats=candidate_stats,
        chain_stats=chain_stats,
    )
