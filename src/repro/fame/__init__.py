"""f-AME: fast Authenticated Message Exchange (Sections 5.4-5.6).

The protocol simulates the starred-edge removal game on the radio network:
each game move costs one scheduled *message-transmission* round plus a
feedback phase, and the greedy strategy's termination certifies
``t``-disruptability (Theorem 6).  Total cost ``O(|E| t^2 log n)`` rounds at
``C = t + 1``, dropping to ``O(|E| log n)`` at ``C >= 2t`` and
``O(|E| log^2 n / t)`` at ``C >= 2t^2`` (Figure 3) — pick the regime through
:func:`make_config`.

:func:`run_fame` exchanges full message vectors (simple, larger frames);
:func:`run_fame_with_digests` runs the Section 5.6 pipeline with
constant-size frames (gossip + reconstruction hashes + vector signatures).
"""

from .byzantine import (
    ByzantineResult,
    CorruptionModel,
    run_byzantine_exchange,
    witness_group_size_byz,
)
from .config import FameConfig, Regime, make_config, predicted_rounds, witness_group_size
from .digests import (
    DigestFameResult,
    GossipInbox,
    message_sequence,
    reconstruct_chains,
    reconstruction_hashes,
    run_fame_with_digests,
    run_gossip_phase,
)
from .protocol import AME_DATA_KIND, FameProtocol, default_messages, run_fame, vector_frame
from .result import FameResult, PairOutcome
from .schedule import ChannelAssignment, TransmissionSchedule, build_schedule

__all__ = [
    "AME_DATA_KIND",
    "ByzantineResult",
    "ChannelAssignment",
    "CorruptionModel",
    "DigestFameResult",
    "FameConfig",
    "FameProtocol",
    "FameResult",
    "GossipInbox",
    "PairOutcome",
    "Regime",
    "TransmissionSchedule",
    "build_schedule",
    "default_messages",
    "make_config",
    "message_sequence",
    "predicted_rounds",
    "reconstruct_chains",
    "reconstruction_hashes",
    "run_byzantine_exchange",
    "run_fame",
    "run_fame_with_digests",
    "run_gossip_phase",
    "vector_frame",
    "witness_group_size",
    "witness_group_size_byz",
]
