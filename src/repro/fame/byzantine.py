"""Byzantine node corruption: the Section 8 (Q1) hardened variant.

The paper's first open question asks about *corruption faults*: some
nodes — unknown to the others — run adversarial code.  It sketches a
"simple modification" achieving ``2t``-disruptability:

* **surrogates are eliminated** — every message is received directly from
  its source (a corrupt surrogate could silently garble relayed vectors);
* **redundant witnesses report on every channel** — a corrupt witness can
  lie about whether its channel was disrupted, so single-witness feedback
  is no longer trustworthy.

This module implements that sketch with the following concrete
interpretation (documented in DESIGN.md):

* each move schedules up to ``C`` **vertex-disjoint** pending edges, each
  broadcast directly by its source;
* each in-use channel gets a witness group of ``3(t+1)`` listeners — an
  honest majority from *every* observer's perspective whenever at most
  ``t`` nodes are corrupt, including witnesses themselves, who are deaf to
  their own rotation-mates (see :func:`witness_group_size_byz`);
* feedback runs in witness *rotations*: each rotation fills every feedback
  channel with one witness per channel broadcasting a signed-by-position
  report ``(slot, flag, witness)`` (full occupancy keeps spoofing
  impossible), repeated ``Θ(t log n)`` times so every listener hears every
  witness w.h.p.;
* every node tallies, per slot, the **majority flag over distinct
  witnesses** — corrupt witnesses are outvoted;
* a pair fails if its channel was jammed, its source is corrupt (the
  destination receives a garbled payload it cannot detect), or its
  destination is corrupt.  All failures are covered by (jam victims ∪
  corrupt nodes): at most ``2t`` vertices.

Corruption is modelled by :class:`CorruptionModel`: corrupt sources garble
their payloads, corrupt witnesses invert their feedback flags.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from ..analysis.vertex_cover import min_vertex_cover
from ..errors import ConfigurationError, ProtocolViolation, SimulationDiverged
from ..radio.actions import Action, Listen, Transmit
from ..radio.messages import Message
from ..radio.network import RadioNetwork, RoundMeta
from ..rng import RngRegistry

BYZANTINE_DATA_KIND = "byz-data"
BYZANTINE_REPORT_KIND = "byz-report"


VOTE_POLICIES = ("invert", "random", "equivocate")
"""How a corrupt witness votes: ``invert`` flips the truth every time
(the original model), ``random`` draws a fresh coin per repetition, and
``equivocate`` alternates flags across repetitions — broadcasting *both*
answers for the same slot, the collusion signature a
:class:`~repro.scenarios.injectors.CollusionTracker` detects."""


@dataclass(frozen=True)
class CorruptionModel:
    """Which nodes are corrupt and how they misbehave.

    Attributes
    ----------
    corrupt:
        Node ids running adversarial code.  The protocol never reads this
        set (corruption is unknown to honest nodes); only the simulation
        harness uses it to drive misbehaviour and to verify the cover.
    garble_messages:
        Corrupt sources replace their payload with junk.
    lie_in_feedback:
        Corrupt witnesses misreport their feedback flag.
    vote_policy:
        *How* a lying witness misreports — one of :data:`VOTE_POLICIES`.
        Only consulted when ``lie_in_feedback`` is set; ``invert``
        reproduces the original always-lie behaviour exactly (and draws
        no randomness, so pre-existing executions stay byte-identical).
    """

    corrupt: frozenset[int] = frozenset()
    garble_messages: bool = True
    lie_in_feedback: bool = True
    vote_policy: str = "invert"

    def __post_init__(self) -> None:
        if self.vote_policy not in VOTE_POLICIES:
            raise ConfigurationError(
                f"unknown vote policy {self.vote_policy!r}; "
                f"pick from {VOTE_POLICIES}"
            )

    @classmethod
    def of(cls, *nodes: int, **kwargs) -> "CorruptionModel":
        """Convenience constructor: ``CorruptionModel.of(3, 7)``."""
        return cls(corrupt=frozenset(nodes), **kwargs)

    def is_corrupt(self, node: int) -> bool:
        """Whether ``node`` runs adversarial code."""
        return node in self.corrupt

    def dishonest_flag(self, truth: bool, *, rep: int, coin) -> bool:
        """The flag a corrupt witness reports in repetition ``rep``.

        ``coin`` is the witness's own registry stream; only the
        ``random`` policy draws from it, so the other policies perturb
        no downstream randomness.
        """
        if self.vote_policy == "random":
            return bool(coin.getrandbits(1))
        if self.vote_policy == "equivocate":
            return bool(rep % 2)
        return not truth


@dataclass
class ByzantineResult:
    """Outcome of a Byzantine-hardened exchange."""

    outcomes: dict[tuple[int, int], bool]
    delivered: dict[tuple[int, int], Any]
    garbled: list[tuple[int, int]]
    moves: int
    rounds: int
    divergence_events: int = 0

    @property
    def failed(self) -> list[tuple[int, int]]:
        """Pairs that did not receive their genuine message."""
        return [p for p, ok in self.outcomes.items() if not ok]

    def disruptability(self) -> int:
        """Minimum vertex cover of the failed pairs (bounded by 2t)."""
        return len(min_vertex_cover(self.failed))


def witness_group_size_byz(t: int) -> int:
    """Witnesses per channel: ``3(t+1)``.

    A witness transmits during its own rotation and therefore cannot hear
    its ``t`` rotation-mates: it observes only ``group - t`` votes
    (including its own first-hand flag).  For the majority to survive
    ``t`` lying corrupt witnesses even from a witness's narrowed view, the
    group needs ``group - t - t > t``, i.e. ``group > 3t`` — and the size
    must also be a whole number of ``t+1``-channel rotations.  ``3(t+1)``
    satisfies both (and pleasingly matches the paper's witness-group
    constant from Section 5.4).
    """
    return 3 * (t + 1)


def _matching(pending: Sequence[tuple[int, int]], limit: int) -> list[tuple[int, int]]:
    chosen: list[tuple[int, int]] = []
    used: set[int] = set()
    for v, w in sorted(pending):
        if v in used or w in used:
            continue
        chosen.append((v, w))
        used.update((v, w))
        if len(chosen) == limit:
            break
    return chosen


def _byzantine_feedback(
    network: RadioNetwork,
    witness_groups: Sequence[Sequence[int]],
    flags: Mapping[int, bool],
    corruption: CorruptionModel,
    rng: RngRegistry,
) -> dict[int, set[int]]:
    """Majority-vote feedback with redundant witnesses.

    Returns each node's decided slot set.  Corrupt witnesses report
    inverted flags; they are outvoted as long as at most ``t`` nodes are
    corrupt in total.
    """
    channels = min(network.channels, network.t + 1)
    reps = network.params.feedback_repetitions(network.n, channels, network.t)
    # reports[node][slot][witness] = flag heard
    reports: dict[int, dict[int, dict[int, bool]]] = defaultdict(
        lambda: defaultdict(dict)
    )
    for slot, group in enumerate(witness_groups):
        if len(group) % channels != 0:
            raise ConfigurationError(
                "witness group size must be a multiple of the feedback "
                "channel count"
            )
        rotations = [
            group[i : i + channels] for i in range(0, len(group), channels)
        ]
        for rotation in rotations:
            for rep in range(reps):
                actions: dict[int, Action] = {}
                broadcasters = set(rotation)
                for rank, witness in enumerate(rotation):
                    flag = flags[witness]
                    if corruption.lie_in_feedback and corruption.is_corrupt(
                        witness
                    ):
                        flag = corruption.dishonest_flag(
                            flag,
                            rep=rep,
                            coin=rng.stream("byz-vote", witness),
                        )
                    actions[witness] = Transmit(
                        rank,
                        Message(
                            kind=BYZANTINE_REPORT_KIND,
                            sender=witness,
                            payload=(slot, flag, witness),
                        ),
                    )
                for node in range(network.n):
                    if node not in broadcasters:
                        stream = rng.stream("byz-feedback", node)
                        actions[node] = Listen(stream.randrange(channels))
                results = network.execute_round(
                    actions,
                    RoundMeta(phase="byz-feedback", extra={"slot": slot}),
                )
                for node, frame in results.items():
                    if frame is None or frame.kind != BYZANTINE_REPORT_KIND:
                        continue
                    r_slot, r_flag, r_witness = frame.payload
                    # Full channel occupancy makes spoofing impossible, so
                    # the claimed witness id is authentic.
                    reports[node][r_slot][r_witness] = r_flag
        # Witnesses know their own channel first-hand.
        for witness in group:
            flag = flags[witness]
            reports[witness][slot][witness] = flag

    decisions: dict[int, set[int]] = {}
    for node in range(network.n):
        decided: set[int] = set()
        for slot in range(len(witness_groups)):
            votes = reports[node].get(slot, {})
            if not votes:
                continue
            tally = Counter(votes.values())
            if tally[True] > tally[False]:
                decided.add(slot)
        decisions[node] = decided
    return decisions


def run_byzantine_exchange(
    network: RadioNetwork,
    edges: Sequence[tuple[int, int]],
    messages: Mapping[tuple[int, int], Any] | None = None,
    rng: RngRegistry | None = None,
    *,
    corruption: CorruptionModel | None = None,
) -> ByzantineResult:
    """Run the hardened (surrogate-free, majority-witness) exchange.

    Guarantees ``2t``-disruptability when at most ``t`` nodes are corrupt:
    every failed pair touches a jam victim or a corrupt node.
    """
    t = network.t
    corruption = corruption or CorruptionModel()
    if len(corruption.corrupt) > t:
        raise ConfigurationError(
            f"the 2t-disruptability analysis assumes at most t={t} corrupt "
            f"nodes; got {len(corruption.corrupt)}"
        )
    edges = list(dict.fromkeys((int(v), int(w)) for v, w in edges))
    for v, w in edges:
        if v == w or not (0 <= v < network.n and 0 <= w < network.n):
            raise ProtocolViolation(f"invalid pair ({v}, {w})")
    if messages is None:
        messages = {(v, w): ("msg", v, w) for v, w in edges}
    rng = rng or RngRegistry(seed=0)

    group_size = witness_group_size_byz(t)
    start = network.metrics.rounds
    pending = list(edges)
    delivered: dict[tuple[int, int], Any] = {}
    garbled: list[tuple[int, int]] = []
    moves = 0
    divergence_events = 0
    max_moves = 3 * len(edges) + t + 2

    while True:
        batch = _matching(pending, min(network.channels, t + 1))
        if len(batch) < t + 1:
            break
        busy = {v for pair in batch for v in pair}
        free = [node for node in range(network.n) if node not in busy]
        if len(free) < group_size * len(batch):
            raise ProtocolViolation(
                "population too small for Byzantine witness groups"
            )
        witness_groups = [
            tuple(free[i * group_size : (i + 1) * group_size])
            for i in range(len(batch))
        ]

        actions: dict[int, Action] = {}
        payloads: dict[tuple[int, int], Any] = {}
        for channel, (v, w) in enumerate(batch):
            payload = messages[(v, w)]
            if corruption.garble_messages and corruption.is_corrupt(v):
                payload = ("garbled-by", v)
            payloads[(v, w)] = payload
            actions[v] = Transmit(
                channel,
                Message(
                    kind=BYZANTINE_DATA_KIND, sender=v, payload=(v, w, payload)
                ),
            )
            actions[w] = Listen(channel)
            for witness in witness_groups[channel]:
                actions[witness] = Listen(channel)
        results = network.execute_round(
            actions,
            RoundMeta(
                phase="byz-transmission",
                schedule={
                    "channels_in_use": tuple(range(len(batch))),
                    "assignments": {
                        c: {"broadcaster": v, "source": v, "listener": w}
                        for c, (v, w) in enumerate(batch)
                    },
                },
                extra={"move": moves},
            ),
        )

        flags = {
            witness: (
                results.get(witness) is not None
                and results[witness].kind == BYZANTINE_DATA_KIND
            )
            for group in witness_groups
            for witness in group
        }
        decisions = _byzantine_feedback(
            network, witness_groups, flags, corruption, rng
        )
        honest_decisions = [
            frozenset(d)
            for node, d in decisions.items()
            if not corruption.is_corrupt(node)
        ]
        tally = Counter(honest_decisions)
        majority, _count = tally.most_common(1)[0]
        disagreeing = sum(1 for d in honest_decisions if d != majority)
        if disagreeing:
            if network.params.strict_consistency:
                raise SimulationDiverged(
                    "honest nodes disagree on Byzantine feedback"
                )
            divergence_events += 1
        if not majority:
            raise SimulationDiverged("empty referee response")

        for slot in sorted(majority):
            pair = batch[slot]
            frame = results.get(pair[1])
            if frame is None:  # pragma: no cover - majority vote is truthful
                raise SimulationDiverged("granted slot without delivery")
            got = frame.payload[2]
            delivered[pair] = got
            if got != messages[pair]:
                garbled.append(pair)
            pending.remove(pair)
        moves += 1
        if moves > max_moves:
            raise ProtocolViolation("Byzantine exchange exceeded move cap")

    outcomes = {
        p: (p in delivered and p not in set(garbled)) for p in edges
    }
    return ByzantineResult(
        outcomes=outcomes,
        delivered=delivered,
        garbled=garbled,
        moves=moves,
        rounds=network.metrics.rounds - start,
        divergence_events=divergence_events,
    )
