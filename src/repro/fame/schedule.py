"""Deterministic transmission-round scheduling (Section 5.4).

Given a legal game proposal, every node must derive the *same* mapping of
items onto channels — who broadcasts, who listens, which surrogates stand in
for busy sources, and which free nodes witness each channel.  The mapping is
a pure function of the proposal, the starred set, and the (shared) surrogate
table, so identical local game states yield identical schedules (Invariant 1
of Theorem 6).

Scheduling rules, in order:

1. item ``i`` of the proposal gets channel ``i``;
2. the destination of every edge item listens on its edge's channel;
3. a source broadcasts its own edge when it is free (not a listener) and the
   edge is its first (lowest channel); every other edge of that source is
   broadcast by a *surrogate* — the lowest-id holder of the source's message
   vector not otherwise involved in the round (possible only for starred
   sources; Invariant 2 guarantees them at least ``3(t+1)`` holders);
4. each in-use channel is assigned a witness group of ``3(t+1)`` free nodes
   (lowest ids first) who listen on it; the leading members of each group
   double as the feedback witness set ``W[c]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..errors import ScheduleError
from ..feedback.witness import WitnessAssignment
from ..game.graph import EdgeItem, Item, NodeItem
from .config import FameConfig, witness_group_size


@dataclass(frozen=True)
class ChannelAssignment:
    """What happens on one channel during the transmission round.

    Attributes
    ----------
    channel:
        The channel id.
    item:
        The proposal item the channel carries.
    broadcaster:
        The node transmitting (for edges: the source or its surrogate).
    source:
        Whose message vector is transmitted (equals ``broadcaster`` except
        when a surrogate stands in).
    listener:
        The destination scheduled to receive, or ``None`` for node items
        (whose receivers are the channel's witnesses).
    """

    channel: int
    item: Item
    broadcaster: int
    source: int
    listener: int | None

    @property
    def uses_surrogate(self) -> bool:
        """True when a surrogate broadcasts on the source's behalf."""
        return self.broadcaster != self.source


@dataclass(frozen=True)
class TransmissionSchedule:
    """The full deterministic plan for one message-transmission round.

    ``witness_groups[i]`` lists the ``3(t+1)`` listeners recruited for
    ``channels_in_use[i]``; ``feedback_sets[i]`` is the leading slice of that
    group used as the feedback witness set for slot ``i``.
    """

    config: FameConfig
    assignments: tuple[ChannelAssignment, ...]
    witness_groups: tuple[tuple[int, ...], ...]
    feedback_sets: tuple[tuple[int, ...], ...]

    @property
    def channels_in_use(self) -> tuple[int, ...]:
        """Channels carrying proposal items, in slot order."""
        return tuple(a.channel for a in self.assignments)

    def assignment_for_slot(self, slot: int) -> ChannelAssignment:
        """The channel assignment reported on by feedback slot ``slot``."""
        return self.assignments[slot]

    def broadcasters(self) -> set[int]:
        """All nodes transmitting this round."""
        return {a.broadcaster for a in self.assignments}

    def listeners(self) -> dict[int, int]:
        """Map of scheduled listener -> channel (destinations + witnesses)."""
        out: dict[int, int] = {}
        for a in self.assignments:
            if a.listener is not None:
                out[a.listener] = a.channel
        for group, assignment in zip(self.witness_groups, self.assignments):
            for w in group:
                out[w] = assignment.channel
        return out

    def involved(self) -> set[int]:
        """Every node with a scheduled role this round."""
        out = self.broadcasters()
        out.update(self.listeners())
        for a in self.assignments:
            out.add(a.source)
        return out

    def serial_witness_assignment(self) -> WitnessAssignment:
        """The :class:`WitnessAssignment` for the serial feedback routine."""
        return WitnessAssignment(
            sets=self.feedback_sets,
            channels=tuple(range(self.config.feedback_channels)),
        )

    def meta_schedule(self) -> dict[str, Any]:
        """Public round metadata (the adversary may see all of this).

        The adversary knows the protocol and the public history, so the
        deterministic schedule is already within its knowledge; exposing it
        on the round metadata is what lets schedule-aware strategies mount
        the worst-case attack the analysis assumes.
        """
        return {
            "channels_in_use": self.channels_in_use,
            "assignments": {
                a.channel: {
                    "kind": "node" if isinstance(a.item, NodeItem) else "edge",
                    "broadcaster": a.broadcaster,
                    "source": a.source,
                    "listener": a.listener,
                }
                for a in self.assignments
            },
        }


def build_schedule(
    config: FameConfig,
    proposal: Sequence[Item],
    starred: frozenset[int] | set[int],
    surrogate_holders: Mapping[int, Sequence[int]],
) -> TransmissionSchedule:
    """Derive the transmission schedule for ``proposal``.

    Parameters
    ----------
    config:
        The validated f-AME configuration.
    proposal:
        A legal game proposal (Restrictions 1-4 already checked).
    starred:
        The current starred set ``S``.
    surrogate_holders:
        For each starred node ``v``, the nodes known to hold ``v``'s message
        vector (the witness group of ``v``'s starring round).

    Raises
    ------
    ScheduleError:
        If a source needs a surrogate but is not starred, has no free
        holder, or the population cannot fill the witness groups.
    """
    if len(proposal) > config.proposal_size:
        raise ScheduleError(
            f"proposal has {len(proposal)} items; regime allows at most "
            f"{config.proposal_size}"
        )

    # Nodes with fixed roles: broadcasters-to-be, listeners, idle sources.
    listener_of: dict[int, int] = {}
    node_items: list[tuple[int, NodeItem]] = []
    edge_items: list[tuple[int, EdgeItem]] = []
    for channel, item in enumerate(proposal):
        if isinstance(item, NodeItem):
            node_items.append((channel, item))
        elif isinstance(item, EdgeItem):
            edge_items.append((channel, item))
            listener_of[item.dest] = channel
        else:  # pragma: no cover - guarded by check_proposal upstream
            raise ScheduleError(f"unknown proposal item {item!r}")

    involved: set[int] = set(listener_of)
    involved.update(item.node for _, item in node_items)
    involved.update(item.source for _, item in edge_items)

    assignments: list[ChannelAssignment | None] = [None] * len(proposal)
    for channel, item in node_items:
        assignments[channel] = ChannelAssignment(
            channel=channel,
            item=item,
            broadcaster=item.node,
            source=item.node,
            listener=None,
        )

    # Group edges by source; the source itself broadcasts its first edge
    # when it is not scheduled to listen, surrogates take the rest.
    edges_by_source: dict[int, list[tuple[int, EdgeItem]]] = {}
    for channel, item in edge_items:
        edges_by_source.setdefault(item.source, []).append((channel, item))

    surrogates_used: set[int] = set()
    for source in sorted(edges_by_source):
        entries = sorted(edges_by_source[source], key=lambda e: e[0])
        source_free = source not in listener_of
        for idx, (channel, item) in enumerate(entries):
            if idx == 0 and source_free:
                broadcaster = source
            else:
                if source not in starred:
                    raise ScheduleError(
                        f"source {source} needs a surrogate (busy or "
                        "repeated) but is not starred"
                    )
                holders = sorted(surrogate_holders.get(source, ()))
                if not holders:
                    raise ScheduleError(
                        f"starred source {source} has no recorded "
                        "surrogate holders"
                    )
                choice = next(
                    (
                        h
                        for h in holders
                        if h not in involved and h not in surrogates_used
                    ),
                    None,
                )
                if choice is None:
                    raise ScheduleError(
                        f"no free surrogate available for source {source}"
                    )
                broadcaster = choice
                surrogates_used.add(choice)
            assignments[channel] = ChannelAssignment(
                channel=channel,
                item=item,
                broadcaster=broadcaster,
                source=source,
                listener=item.dest,
            )

    final = [a for a in assignments if a is not None]
    if len(final) != len(proposal):  # pragma: no cover - internal invariant
        raise ScheduleError("internal error: unassigned proposal items")

    # Witness recruitment from the free population, lowest ids first.
    busy = involved | surrogates_used
    free = [node for node in range(config.n) if node not in busy]
    group_size = witness_group_size(config.t)
    needed = group_size * len(final)
    if len(free) < needed:
        raise ScheduleError(
            f"population too small for witness groups: need {needed} free "
            f"nodes, have {len(free)} (n={config.n})"
        )
    witness_groups = tuple(
        tuple(free[i * group_size : (i + 1) * group_size])
        for i in range(len(final))
    )
    fb_size = (
        max(1, 2 * config.t)
        if config.parallel_feedback
        else config.feedback_channels
    )
    feedback_sets = tuple(group[:fb_size] for group in witness_groups)

    return TransmissionSchedule(
        config=config,
        assignments=tuple(final),
        witness_groups=witness_groups,
        feedback_sets=feedback_sets,
    )
