"""The f-AME protocol driver (Section 5.4, Figure 2).

The protocol is a distributed simulation of the starred-edge removal game:

1. every node applies the greedy strategy to its local game copy to obtain
   the move's proposal (identical across nodes — Invariant 1);
2. the proposal is mapped onto channels by the deterministic schedule and
   one *message-transmission* radio round is executed;
3. the *feedback phase* (Figure 1, or the parallel merge for ``C >= 2t^2``)
   lets every node agree on the set ``D`` of channels that succeeded;
4. each node simulates the referee granting exactly the items whose channel
   is in ``D``, updating its game copy: granted nodes are starred (their
   witness group becomes their surrogate set — Invariant 2), granted edges
   are removed (their message was delivered — Invariant 3).

The loop ends when the greedy strategy terminates, which certifies a vertex
cover of at most ``t`` for the remaining (failed) pairs — ``t``-disruptability.

Implementation note: all nodes deterministically compute identical proposals
and schedules from identical state, so the driver computes each proposal once
and *asserts* the per-node state agreement instead of recomputing ``n``
identical greedy runs per move; the per-node feedback outputs — the only
place where views can diverge — are tracked individually for every node.

Engine note: the driver keeps **one** canonical :class:`GameGraph` (with
incrementally-maintained greedy pools, see
:class:`~repro.game.greedy.GreedyPools`) instead of ``n`` replicated copies.
Each node's replica is represented by an O(1) *state fingerprint* advanced
with every grant it applies (post-resynchronisation); Invariant 1 is
asserted by fingerprint equality — O(n) per move — rather than by comparing
``n`` full sorted state snapshots, which dominated the per-move cost at
scale.  Radio rounds are submitted sparsely (only scheduled nodes); pass
``dense_actions=True`` to reproduce the legacy behaviour of padding every
idle node with an explicit ``Sleep``, which the engine-equivalence tests
use to prove the two paths resolve identically.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Mapping, Sequence

from ..errors import ProtocolViolation, SimulationDiverged
from ..feedback.parallel import run_parallel_feedback
from ..feedback.protocol import run_feedback
from ..game.graph import (
    EdgeItem,
    GameGraph,
    NodeItem,
    advance_fingerprint,
    remove_edge_token,
    star_token,
)
from ..game.greedy import GreedyPools, GreedyTermination
from ..game.rules import check_proposal
from ..radio.actions import SLEEP, Action, Listen, Transmit
from ..radio.messages import Message
from ..radio.network import (
    CompiledRound,
    RadioNetwork,
    RoundMeta,
    RoundSchedule,
)
from ..radio.shapes import ScheduleShapeCache
from ..rng import RngRegistry
from .config import FameConfig, make_config
from .result import FameResult, PairOutcome
from .schedule import TransmissionSchedule, build_schedule

AME_DATA_KIND = "ame-data"
"""Frame kind of message-transmission broadcasts."""


def vector_frame(
    broadcaster: int, source: int, vector: Mapping[int, Any]
) -> Message:
    """The transmission-phase frame: ``source``'s full message vector.

    Section 5.4 has broadcasters send "the vector of all values m_{v,*}"
    (Section 5.6's digest pipeline shrinks this to constant size).
    """
    return Message(
        kind=AME_DATA_KIND,
        sender=broadcaster,
        payload=(source, tuple(sorted(vector.items()))),
    )


def _fold_tokens(
    fingerprint: int, tokens: Sequence[tuple[int, ...]]
) -> int:
    """Advance one replica fingerprint over an ordered grant sequence."""
    for token in tokens:
        fingerprint = advance_fingerprint(fingerprint, token)
    return fingerprint


def default_messages(
    edges: Sequence[tuple[int, int]]
) -> dict[tuple[int, int], Any]:
    """Distinct placeholder payloads for tests and examples."""
    return {(v, w): ("msg", v, w) for (v, w) in edges}


class FameProtocol:
    """One f-AME execution bound to a network and an edge set.

    Parameters
    ----------
    network:
        The radio network (its ``n``/``channels``/``t`` drive the config).
    edges:
        The AME pair set ``E`` (ordered pairs of distinct node ids).
    messages:
        Per-pair payloads ``m_vw``; defaults to distinct placeholders.
    rng:
        Registry for the honest nodes' random choices (feedback hopping).
    config:
        Channel-regime configuration; derived from the network when omitted.
    dense_actions:
        When ``True``, every radio round pads idle nodes with explicit
        ``Sleep`` actions and the feedback routines run their per-round
        reference loops (the pre-pipeline engine behaviour, end to end).
        Kept for the engine-equivalence tests; production callers leave it
        ``False`` and get the compiled-schedule pipeline.
    """

    def __init__(
        self,
        network: RadioNetwork,
        edges: Sequence[tuple[int, int]],
        messages: Mapping[tuple[int, int], Any] | None = None,
        rng: RngRegistry | None = None,
        config: FameConfig | None = None,
        *,
        dense_actions: bool = False,
    ) -> None:
        self.network = network
        self.config = config or make_config(
            network.n, network.channels, network.t, params=network.params
        )
        self.edges = list(dict.fromkeys((int(v), int(w)) for v, w in edges))
        for v, w in self.edges:
            if not (0 <= v < network.n and 0 <= w < network.n):
                raise ProtocolViolation(f"pair ({v}, {w}) outside the network")
            if v == w:
                raise ProtocolViolation(f"pair ({v}, {w}) is a self-loop")
        self.messages = (
            dict(messages) if messages is not None else default_messages(self.edges)
        )
        missing = [p for p in self.edges if p not in self.messages]
        if missing:
            raise ProtocolViolation(f"pairs without messages: {missing[:4]}")
        self.rng = rng or RngRegistry(seed=0)
        self.dense_actions = dense_actions
        # One schedule-shape cache for the whole run: every move's feedback
        # phase has the same (participants, channels, repetitions) geometry,
        # so buckets/metadata/stream tables are built once and recycled.
        self._shape_cache = ScheduleShapeCache()

        # Game state: one canonical graph with live greedy pools, plus one
        # O(1) state fingerprint per node standing in for its full replica.
        self._graph = GameGraph.from_pairs(
            self.edges, vertices=range(network.n)
        )
        self._pools = GreedyPools(self._graph)
        self._fingerprints: list[int] = [
            self._graph.fingerprint for _ in range(network.n)
        ]
        # knowledge[j][v] = j's copy of v's message vector.
        self._knowledge: list[dict[int, dict[int, Any]]] = [
            {} for _ in range(network.n)
        ]
        for v, w in self.edges:
            vector = self._knowledge[v].setdefault(v, {})
            vector[w] = self.messages[(v, w)]
        self._surrogates: dict[int, tuple[int, ...]] = {}

    # ------------------------------------------------------------------

    def _assert_invariant1(self) -> None:
        """Invariant 1: every node's replica matches the canonical state.

        Fingerprints advance once per applied grant, so equality here
        certifies that all ``n`` replicas applied the same grant sequence —
        the property the old implementation established by hashing ``n``
        full sorted state snapshots every move.
        """
        canonical = self._graph.fingerprint
        if any(  # pragma: no cover - grants are applied uniformly
            fp != canonical for fp in self._fingerprints
        ):
            raise SimulationDiverged(
                "Invariant 1 violated: node-local game states differ"
            )

    def _transmission_round(
        self, schedule: TransmissionSchedule, move_index: int
    ) -> dict[int, Message | None]:
        """Execute the message-transmission phase of one move."""
        transmits: dict[int, Transmit] = {}
        for a in schedule.assignments:
            vector = self._knowledge[a.broadcaster].get(a.source)
            if vector is None:  # pragma: no cover - schedule picks holders
                raise SimulationDiverged(
                    f"broadcaster {a.broadcaster} lacks vector of {a.source}"
                )
            transmits[a.broadcaster] = Transmit(
                a.channel, vector_frame(a.broadcaster, a.source, vector)
            )
        listener_channels = schedule.listeners()
        meta = RoundMeta(
            phase="ame-transmission",
            schedule=schedule.meta_schedule(),
            extra={"move": move_index},
        )
        if self.dense_actions:
            # Legacy engine replay: per-node actions padded with sleeps.
            actions: dict[int, Action] = dict(transmits)
            for listener, channel in listener_channels.items():
                actions[listener] = Listen(channel)
            for node in range(self.network.n):
                actions.setdefault(node, SLEEP)
            results = self.network.execute_round(actions, meta)
        else:
            by_channel: dict[int, list[int]] = {}
            for listener, channel in listener_channels.items():
                by_channel.setdefault(channel, []).append(listener)
            [heard] = self.network.execute_schedule(
                RoundSchedule(
                    [CompiledRound.make(transmits, by_channel, meta)]
                )
            )
            results = {
                listener: heard.get(channel)
                for listener, channel in listener_channels.items()
            }
        # Every frame decoded on an in-use channel is authentic: each such
        # channel carries an honest broadcaster, so adversarial transmissions
        # can only collide (the paper's first insight).  Record the vectors.
        for node, frame in results.items():
            if frame is not None and frame.kind == AME_DATA_KIND:
                source, items = frame.payload
                self._knowledge[node][source] = dict(items)
        return results

    def _feedback_phase(
        self,
        schedule: TransmissionSchedule,
        results: Mapping[int, Message | None],
    ) -> dict[int, set[int]]:
        """Run the feedback routine; return every node's slot set ``D_j``."""
        flags: dict[int, bool] = {}
        for group in schedule.witness_groups:
            for w in group:
                frame = results.get(w)
                flags[w] = frame is not None and frame.kind == AME_DATA_KIND
        participants = list(range(self.network.n))
        # dense_actions replays the legacy engine end to end, so it also
        # pins the feedback routines to their per-round reference path —
        # including the legacy full-frame wire encoding for the parallel
        # merge (delta frames postdate the legacy engine).
        if self.config.parallel_feedback:
            return run_parallel_feedback(
                self.network,
                schedule.feedback_sets,
                flags,
                participants,
                self.rng,
                phase="feedback-parallel",
                compiled=not self.dense_actions,
                delta_frames=not self.dense_actions,
                block_draws=not self.dense_actions,
                shape_cache=None if self.dense_actions else self._shape_cache,
            )
        return run_feedback(
            self.network,
            schedule.serial_witness_assignment(),
            {w: flags[w] for s in schedule.feedback_sets for w in s},
            participants,
            self.rng,
            phase="feedback",
            compiled=not self.dense_actions,
            block_draws=not self.dense_actions,
            shape_cache=None if self.dense_actions else self._shape_cache,
        )

    def _agree_on_referee(
        self, outputs: Mapping[int, set[int]]
    ) -> tuple[frozenset[int], int]:
        """Resolve the per-node feedback outputs into one referee response.

        Returns the majority ``D`` and the number of disagreeing nodes.  In
        strict mode any disagreement raises
        :class:`~repro.errors.SimulationDiverged` — the event Lemma 5 makes
        improbable; otherwise the run records it and resynchronises, which
        is what a deployed system would log.
        """
        counts = Counter(frozenset(d) for d in outputs.values())
        majority, _ = counts.most_common(1)[0]
        disagreeing = sum(
            1 for d in outputs.values() if frozenset(d) != majority
        )
        if disagreeing and self.network.params.strict_consistency:
            raise SimulationDiverged(
                f"{disagreeing} nodes disagree on the feedback output "
                "(the low-probability event of Lemma 5)"
            )
        if not majority:
            raise SimulationDiverged(
                "empty referee response: feedback reported no surviving "
                "channel, which the adversary budget cannot cause"
            )
        return majority, disagreeing

    # ------------------------------------------------------------------

    def run(self) -> FameResult:
        """Drive the simulation to termination and return the result."""
        start_rounds = self.network.metrics.rounds
        outcomes: dict[tuple[int, int], PairOutcome] = {}
        moves = 0
        divergence_events = 0
        disagreeing_total = 0
        max_moves = 3 * len(self.edges) + self.config.t + 2

        while True:
            self._assert_invariant1()
            canonical = self._graph
            move = self._pools.proposal(
                self.config.t, max_items=self.config.proposal_size
            )
            if isinstance(move, GreedyTermination):
                claimed_cover = move.cover
                break
            check_proposal(
                canonical,
                move,
                self.config.t,
                max_items=self.config.proposal_size,
            )
            schedule = build_schedule(
                self.config, move, canonical.starred, self._surrogates
            )
            results = self._transmission_round(schedule, moves)
            outputs = self._feedback_phase(schedule, results)
            granted_slots, disagreeing = self._agree_on_referee(outputs)
            if disagreeing:
                divergence_events += 1
                disagreeing_total += disagreeing

            grant_tokens: list[tuple[int, ...]] = []
            for slot in sorted(granted_slots):
                assignment = schedule.assignment_for_slot(slot)
                item = assignment.item
                if isinstance(item, NodeItem):
                    self._pools.star(item.node)
                    grant_tokens.append(star_token(item.node))
                    self._surrogates[item.node] = schedule.witness_groups[slot]
                elif isinstance(item, EdgeItem):
                    self._pools.remove_edge(item.pair)
                    grant_tokens.append(remove_edge_token(item.pair))
                    dest_frame = results.get(item.dest)
                    if dest_frame is None:  # pragma: no cover - D is truthful
                        raise SimulationDiverged(
                            f"slot {slot} granted but destination "
                            f"{item.dest} heard nothing"
                        )
                    _source, items = dest_frame.payload
                    delivered = dict(items).get(item.dest)
                    outcomes[item.pair] = PairOutcome(
                        pair=item.pair,
                        success=True,
                        message=delivered,
                        move=moves,
                    )
            # Every node applies the agreed (post-resynchronisation) grant
            # sequence to its replica: advance each fingerprint in lockstep.
            self._fingerprints = [
                _fold_tokens(fp, grant_tokens) for fp in self._fingerprints
            ]
            moves += 1
            if moves > max_moves:
                raise ProtocolViolation(
                    f"f-AME exceeded the move cap ({max_moves}); the greedy "
                    "bound of Theorem 4 guarantees termination well before"
                )

        for pair in self.edges:
            outcomes.setdefault(
                pair, PairOutcome(pair=pair, success=False)
            )
        return FameResult(
            config=self.config,
            outcomes=outcomes,
            moves=moves,
            rounds=self.network.metrics.rounds - start_rounds,
            divergence_events=divergence_events,
            disagreeing_nodes=disagreeing_total,
            claimed_cover=claimed_cover,
            starred=frozenset(self._graph.starred),
            surrogate_holders=dict(self._surrogates),
        )


def run_fame(
    network: RadioNetwork,
    edges: Sequence[tuple[int, int]],
    messages: Mapping[tuple[int, int], Any] | None = None,
    rng: RngRegistry | None = None,
    *,
    config: FameConfig | None = None,
    dense_actions: bool = False,
) -> FameResult:
    """Convenience wrapper: build a :class:`FameProtocol` and run it."""
    return FameProtocol(
        network,
        edges,
        messages=messages,
        rng=rng,
        config=config,
        dense_actions=dense_actions,
    ).run()
