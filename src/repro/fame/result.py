"""Outcome objects for f-AME executions.

A :class:`FameResult` records, for every ordered pair of ``E``, whether the
message was delivered and authenticated (and what was delivered), plus the
execution-level accounting the benchmarks need: game moves, radio rounds,
and the divergence events the w.h.p. analysis permits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from ..analysis.vertex_cover import has_cover_at_most, min_vertex_cover
from .config import FameConfig


@dataclass(frozen=True)
class PairOutcome:
    """The AME output for one ordered pair ``(source, dest)``.

    ``success`` mirrors Definition 1: the destination output either
    ``<(v, w), m_vw>`` (success) or ``<(v, w), fail>``.  ``message`` is what
    the destination actually decoded over the radio — never trusted state
    copied from the sender.  ``move`` is the game move that delivered it.
    """

    pair: tuple[int, int]
    success: bool
    message: Any = None
    move: int | None = None


@dataclass
class FameResult:
    """Everything a caller (or benchmark) needs from one f-AME run.

    Attributes
    ----------
    config:
        The channel-regime configuration the run used.
    outcomes:
        Per ordered pair, the :class:`PairOutcome`.
    moves:
        Simulated game moves played.
    rounds:
        Radio rounds consumed (transmission + feedback).
    divergence_events:
        Moves on which at least one node's feedback output differed from the
        majority — the low-probability event of Lemma 5.  In strict mode the
        run raises instead of counting.
    disagreeing_nodes:
        Total (move, node) feedback disagreements across the run.
    claimed_cover:
        The greedy strategy's termination certificate (Lemma 3's ``V'``).
    starred:
        Nodes starred during the run (sources that recruited surrogates).
    surrogate_holders:
        For each starred node, the witness group that holds its vector.
    """

    config: FameConfig
    outcomes: dict[tuple[int, int], PairOutcome]
    moves: int
    rounds: int
    divergence_events: int = 0
    disagreeing_nodes: int = 0
    claimed_cover: frozenset[int] = frozenset()
    starred: frozenset[int] = frozenset()
    surrogate_holders: dict[int, tuple[int, ...]] = field(default_factory=dict)

    # ------------------------------------------------------------------

    @property
    def pairs(self) -> list[tuple[int, int]]:
        """All ordered pairs of the input set ``E``."""
        return list(self.outcomes)

    @property
    def succeeded(self) -> list[tuple[int, int]]:
        """Pairs whose message was delivered and authenticated."""
        return [p for p, o in self.outcomes.items() if o.success]

    @property
    def failed(self) -> list[tuple[int, int]]:
        """Pairs that output ``fail`` — the disruption graph's edge set."""
        return [p for p, o in self.outcomes.items() if not o.success]

    def disruptability(self) -> int:
        """Minimum vertex cover of the disruption graph (Definition 1)."""
        return len(min_vertex_cover(self.failed))

    def is_d_disruptable(self, d: int) -> bool:
        """Check Definition 1's property 3 for ``d``."""
        return has_cover_at_most(self.failed, d)

    def delivered_messages(self) -> dict[tuple[int, int], Any]:
        """Map of successful pair -> decoded message."""
        return {
            p: o.message for p, o in self.outcomes.items() if o.success
        }

    def sender_report(self, sender: int) -> dict[tuple[int, int], bool]:
        """Sender awareness (Definition 1, property 2).

        Every node derives the same grant history from the shared feedback
        outputs, so a sender knows exactly which of its pairs succeeded.
        """
        return {
            p: o.success for p, o in self.outcomes.items() if p[0] == sender
        }

    def summary(self) -> dict[str, Any]:
        """A compact dict for benchmark tables and logs."""
        return {
            "regime": self.config.regime.value,
            "n": self.config.n,
            "C": self.config.channels,
            "t": self.config.t,
            "pairs": len(self.outcomes),
            "succeeded": len(self.succeeded),
            "failed": len(self.failed),
            "disruptability": self.disruptability(),
            "moves": self.moves,
            "rounds": self.rounds,
            "divergence_events": self.divergence_events,
        }


def outcomes_from_pairs(
    pairs: Iterable[tuple[int, int]],
    delivered: Mapping[tuple[int, int], Any],
) -> dict[tuple[int, int], PairOutcome]:
    """Build an outcome table from a delivered-message map (test helper)."""
    out: dict[tuple[int, int], PairOutcome] = {}
    for pair in pairs:
        if pair in delivered:
            out[pair] = PairOutcome(pair=pair, success=True, message=delivered[pair])
        else:
            out[pair] = PairOutcome(pair=pair, success=False)
    return out
