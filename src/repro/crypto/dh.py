"""Diffie-Hellman key exchange, from scratch (Section 6, Part 1).

The group-key protocol initialises f-AME with the messages of a one-round
key-exchange protocol; the paper names Diffie-Hellman [12].  We implement
textbook DH over the quadratic-residue subgroup of a safe prime ``p = 2q+1``
(prime-order ``q`` subgroup, so small-subgroup attacks are structurally
impossible once the public value passes the subgroup check).

Groups provided:

* :data:`MODP_GROUP_14` — the 2048-bit group 14 of RFC 3526 (generator 2),
  the standard deployment choice;
* :data:`TEST_GROUP_64` / :data:`TEST_GROUP_128` / :data:`TEST_GROUP_256` —
  small safe-prime groups for fast simulation (generator 4, a quadratic
  residue, hence a generator of the order-``q`` subgroup).  They are *not*
  secure against a real discrete-log adversary; the simulated adversary
  never attempts discrete logs, so the protocol logic is exercised
  faithfully at a fraction of the modexp cost.

Primality is checked with deterministic-base Miller-Rabin for small inputs
and 40 random rounds above that, so test suites can verify the constants.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import CryptoError
from .hashes import derive_key

# Deterministic Miller-Rabin bases valid for all n < 3.317e24.
_DETERMINISTIC_BASES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37)
_DETERMINISTIC_LIMIT = 3_317_044_064_679_887_385_961_981


def is_probable_prime(n: int, *, rounds: int = 40, rng: random.Random | None = None) -> bool:
    """Miller-Rabin primality test.

    Deterministic (no false positives) below ``3.3e24``; above that, 40
    random rounds give error probability below ``4^-40``.
    """
    if n < 2:
        return False
    for p in _DETERMINISTIC_BASES:
        if n % p == 0:
            return n == p
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1

    def witness(a: int) -> bool:
        x = pow(a, d, n)
        if x in (1, n - 1):
            return False
        for _ in range(r - 1):
            x = x * x % n
            if x == n - 1:
                return False
        return True

    if n < _DETERMINISTIC_LIMIT:
        return not any(witness(a) for a in _DETERMINISTIC_BASES)
    # repro-lint: disable=DET001 -- fixed-constant Miller-Rabin witness
    # stream: verdicts are deterministic, no protocol coins consumed
    rng = rng or random.Random(0xD1F5)
    return not any(
        witness(rng.randrange(2, n - 1)) for _ in range(rounds)
    )


@dataclass(frozen=True)
class DhGroup:
    """A safe-prime Diffie-Hellman group ``(p, g)`` with ``p = 2q + 1``.

    ``g`` must generate (a subgroup of) the order-``q`` quadratic-residue
    subgroup; key exchange happens entirely inside that subgroup.
    """

    p: int
    g: int
    name: str = ""

    @property
    def q(self) -> int:
        """The subgroup order ``(p - 1) / 2``."""
        return (self.p - 1) // 2

    def validate(self, *, check_primality: bool = True) -> "DhGroup":
        """Check group structure; returns ``self`` for chaining."""
        if self.p < 23:
            raise CryptoError("modulus too small to be a safe prime group")
        if self.p % 2 == 0:
            raise CryptoError("modulus must be odd")
        if not 2 <= self.g <= self.p - 2:
            raise CryptoError("generator out of range")
        if check_primality:
            if not is_probable_prime(self.p):
                raise CryptoError(f"{self.name or 'group'}: p is not prime")
            if not is_probable_prime(self.q):
                raise CryptoError(
                    f"{self.name or 'group'}: p is not a safe prime "
                    "((p-1)/2 is composite)"
                )
        return self

    # ------------------------------------------------------------------

    def is_valid_public(self, value: int) -> bool:
        """Subgroup membership check for a received public value.

        Rejects the degenerate values (0, 1, p-1) and anything outside the
        order-``q`` subgroup, the standard defence against key-forcing.
        """
        if not 2 <= value <= self.p - 2:
            return False
        return pow(value, self.q, self.p) == 1

    def keypair(self, rng: random.Random) -> "DhKeyPair":
        """Sample a fresh private exponent and its public value."""
        x = rng.randrange(2, self.q - 1)
        return DhKeyPair(group=self, private=x, public=pow(self.g, x, self.p))

    def shared_secret(self, private: int, other_public: int) -> int:
        """The raw DH shared value ``other_public ** private mod p``."""
        if not self.is_valid_public(other_public):
            raise CryptoError("invalid peer public value")
        return pow(other_public, private, self.p)


@dataclass(frozen=True)
class DhKeyPair:
    """A private exponent with its public value, bound to a group."""

    group: DhGroup
    private: int
    public: int

    def shared_key(self, other_public: int, *context: object) -> bytes:
        """Complete the exchange: a 32-byte symmetric key.

        ``context`` binds the key to its use (e.g. the sorted pair of node
        ids), so the same DH value never keys two different relationships.
        """
        secret = self.group.shared_secret(self.private, other_public)
        return derive_key(secret, "dh", *context)


def pairwise_context(a: int, b: int) -> tuple[str, int, int]:
    """Canonical key-derivation context for a node pair (order-free)."""
    lo, hi = (a, b) if a <= b else (b, a)
    return ("pair", lo, hi)


# ---------------------------------------------------------------------------
# Named groups.
# ---------------------------------------------------------------------------

_RFC3526_14_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE45B3DC2007CB8A163BF05"
    "98DA48361C55D39A69163FA8FD24CF5F83655D23DCA3AD961C62F356208552BB"
    "9ED529077096966D670C354E4ABC9804F1746C08CA18217C32905E462E36CE3B"
    "E39E772C180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFFFFFFFFFF",
    16,
)

MODP_GROUP_14 = DhGroup(p=_RFC3526_14_P, g=2, name="modp-2048 (RFC 3526 group 14)")
"""The 2048-bit MODP group of RFC 3526 — the production choice."""

TEST_GROUP_64 = DhGroup(p=0xA82EE0BC09437BCB, g=4, name="test-64")
"""A 64-bit safe-prime group for fast simulations (NOT secure)."""

TEST_GROUP_128 = DhGroup(
    p=0xA27FFFF8B5E81D5B3E8A65A0CEE2D6C3, g=4, name="test-128"
)
"""A 128-bit safe-prime group for fast simulations (NOT secure)."""

TEST_GROUP_256 = DhGroup(
    p=0x9444144BEEC2B257693E9C274E6ABC66226E5A08667A7834DF5CFAB3B5FEFF7F,
    g=4,
    name="test-256",
)
"""A 256-bit safe-prime group for fast simulations (NOT secure)."""

DEFAULT_GROUP = TEST_GROUP_128
"""The group protocols use unless told otherwise: fast and structurally
identical to the production group."""
