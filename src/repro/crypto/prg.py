"""A pseudo-random generator from SHA-256 in counter mode.

Sections 6-7 assume a PRG seeded by a shared secret key — for generating
channel-hopping patterns and keystreams the adversary (who lacks the key)
cannot predict.  Any PRF works; we use ``SHA-256(seed || label || counter)``
blocks, which is the standard ad-hoc construction when no cipher is
available and keeps the library free of external crypto dependencies.
"""

from __future__ import annotations

import hashlib

from ..errors import CryptoError
from .hashes import canonical_encode

_BLOCK = 32


class Prg:
    """Deterministic byte/integer stream seeded by key material.

    Two instances with the same ``(seed, label)`` produce identical output;
    distinct labels give computationally independent streams from one seed.

    Parameters
    ----------
    seed:
        Secret key material (bytes).
    label:
        Domain-separation label, e.g. ``"hop"`` vs ``"stream"``.
    """

    def __init__(self, seed: bytes, label: str = "") -> None:
        if not isinstance(seed, (bytes, bytearray)):
            raise CryptoError("PRG seed must be bytes")
        self._prefix = (
            b"repro/prg\x00"
            + canonical_encode(bytes(seed))
            + canonical_encode(label)
        )
        self._counter = 0
        self._buffer = b""

    def block(self, index: int) -> bytes:
        """The ``index``-th 32-byte output block (random access)."""
        if index < 0:
            raise CryptoError("block index must be non-negative")
        return hashlib.sha256(
            self._prefix + index.to_bytes(8, "big")
        ).digest()

    def read(self, nbytes: int) -> bytes:
        """The next ``nbytes`` of the sequential stream."""
        if nbytes < 0:
            raise CryptoError("cannot read a negative byte count")
        while len(self._buffer) < nbytes:
            self._buffer += self.block(self._counter)
            self._counter += 1
        out, self._buffer = self._buffer[:nbytes], self._buffer[nbytes:]
        return out

    def randbits(self, k: int) -> int:
        """The next ``k``-bit integer from the stream."""
        if k <= 0:
            raise CryptoError("k must be positive")
        nbytes = (k + 7) // 8
        value = int.from_bytes(self.read(nbytes), "big")
        return value >> (nbytes * 8 - k)

    def randbelow(self, bound: int) -> int:
        """A uniform integer in ``[0, bound)`` via rejection sampling."""
        if bound <= 0:
            raise CryptoError("bound must be positive")
        k = bound.bit_length()
        while True:
            value = self.randbits(k)
            if value < bound:
                return value


def keystream(seed: bytes, label: str, nbytes: int) -> bytes:
    """One-shot keystream of ``nbytes`` (stateless convenience)."""
    return Prg(seed, label).read(nbytes)
