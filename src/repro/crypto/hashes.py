"""The secure hash functions H1 and H2 of Section 5.6 — and a weak one.

The paper assumes two collision-resistant hash functions: ``H1`` tags gossip
frames with *reconstruction hashes* and ``H2`` produces the constant-size
*vector signature* exchanged through f-AME.  We instantiate both with
SHA-256 under distinct domain-separation prefixes, over a canonical byte
encoding of Python values (so logically equal payloads always hash equally,
independent of dict ordering or int width).

:class:`WeakHash` deliberately truncates digests so tests can manufacture
collisions and observe how the reconstruction pipeline degrades — the
paper's analysis charges ``O(t^4 log^2 n)`` hash evaluations precisely to
cope with ambiguity, and the weak hash lets us exercise that path.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable

from ..errors import CryptoError

DIGEST_SIZE = 32
"""Byte length of full-strength digests (SHA-256)."""


def canonical_encode(value: Any) -> bytes:
    """Encode a value into canonical, self-delimiting bytes.

    Supports ``None``, ``bool``, ``int``, ``float``, ``str``, ``bytes``,
    ``tuple``/``list`` (encoded identically), ``dict`` (sorted by encoded
    key), ``set``/``frozenset`` (sorted by encoded element).  Raises
    :class:`~repro.errors.CryptoError` for anything else, because hashing an
    ambiguous encoding would silently break authentication.
    """
    if value is None:
        return b"N"
    if isinstance(value, bool):  # before int: bool is an int subclass
        return b"T" if value else b"F"
    if isinstance(value, int):
        body = value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
        return b"i" + len(body).to_bytes(4, "big") + body
    if isinstance(value, float):
        body = repr(value).encode("ascii")
        return b"f" + len(body).to_bytes(4, "big") + body
    if isinstance(value, str):
        body = value.encode("utf-8")
        return b"s" + len(body).to_bytes(4, "big") + body
    if isinstance(value, (bytes, bytearray)):
        body = bytes(value)
        return b"b" + len(body).to_bytes(4, "big") + body
    if isinstance(value, (tuple, list)):
        parts = [canonical_encode(v) for v in value]
        return (
            b"l"
            + len(parts).to_bytes(4, "big")
            + b"".join(parts)
        )
    if isinstance(value, dict):
        encoded = sorted(
            (canonical_encode(k), canonical_encode(v)) for k, v in value.items()
        )
        return (
            b"d"
            + len(encoded).to_bytes(4, "big")
            + b"".join(k + v for k, v in encoded)
        )
    if isinstance(value, (set, frozenset)):
        parts = sorted(canonical_encode(v) for v in value)
        return b"e" + len(parts).to_bytes(4, "big") + b"".join(parts)
    raise CryptoError(f"cannot canonically encode {type(value).__name__}")


def _digest(domain: bytes, parts: Iterable[Any]) -> bytes:
    hasher = hashlib.sha256(domain)
    for part in parts:
        hasher.update(canonical_encode(part))
    return hasher.digest()


def h1(*parts: Any) -> bytes:
    """The reconstruction hash ``H1`` (domain-separated SHA-256)."""
    return _digest(b"repro/h1\x00", parts)


def h2(*parts: Any) -> bytes:
    """The vector-signature hash ``H2`` (domain-separated SHA-256)."""
    return _digest(b"repro/h2\x00", parts)


def derive_key(secret: Any, *context: Any) -> bytes:
    """Derive a 32-byte symmetric key from a secret plus context labels.

    Used to turn Diffie-Hellman shared values into usable keys, and to
    split one master key into independent sub-keys (encryption vs MAC vs
    channel hopping) by varying ``context``.
    """
    return _digest(b"repro/kdf\x00", (secret, *context))


class WeakHash:
    """A truncated hash for studying collision behaviour in tests.

    Parameters
    ----------
    bits:
        Digest width in bits, between 1 and 256.  Narrow widths make
        collisions easy to manufacture (birthday bound ``2^{bits/2}``).
    """

    def __init__(self, bits: int = 16) -> None:
        if not 1 <= bits <= 256:
            raise CryptoError("bits must be in [1, 256]")
        self.bits = bits

    def __call__(self, *parts: Any) -> bytes:
        full = _digest(b"repro/weak\x00", parts)
        nbytes = (self.bits + 7) // 8
        truncated = int.from_bytes(full[:nbytes], "big")
        truncated &= (1 << self.bits) - 1
        return truncated.to_bytes(nbytes, "big")
