"""Authenticated symmetric encryption from the PRG (Sections 6-7).

The long-lived service needs, against an adversary *without* the key:

* **secrecy** — ciphertexts reveal nothing about plaintexts; and
* **authentication** — forged or tampered ciphertexts are rejected.

We build the standard encrypt-then-MAC construction: a PRG keystream XOR
for confidentiality and an HMAC-SHA256 tag over ``nonce || ciphertext ||
associated data`` for integrity.  Nonces are caller-supplied (protocols use
round/epoch counters) and must never repeat under one key — the classic
stream-cipher contract, stated loudly in :meth:`AuthenticatedCipher.encrypt`.
"""

from __future__ import annotations

import hmac
import hashlib
from dataclasses import dataclass

from ..errors import CryptoError
from .hashes import canonical_encode, derive_key
from .prg import Prg

TAG_SIZE = 32


@dataclass(frozen=True)
class Ciphertext:
    """A sealed message: nonce (public), body, and authentication tag."""

    nonce: bytes
    body: bytes
    tag: bytes

    def as_tuple(self) -> tuple[bytes, bytes, bytes]:
        """Radio-friendly representation (tuple payloads hash canonically)."""
        return (self.nonce, self.body, self.tag)

    @classmethod
    def from_tuple(cls, value: tuple[bytes, bytes, bytes]) -> "Ciphertext":
        """Rebuild from :meth:`as_tuple` output; validates shape."""
        if (
            not isinstance(value, tuple)
            or len(value) != 3
            or not all(isinstance(part, (bytes, bytearray)) for part in value)
        ):
            raise CryptoError("malformed ciphertext tuple")
        nonce, body, tag = value
        return cls(nonce=bytes(nonce), body=bytes(body), tag=bytes(tag))


class AuthenticatedCipher:
    """Encrypt-then-MAC over a shared symmetric key.

    Parameters
    ----------
    key:
        Master key material; independent encryption and MAC keys are derived
        from it, so using the same master key elsewhere (e.g. for channel
        hopping) is safe.
    """

    def __init__(self, key: bytes) -> None:
        if not isinstance(key, (bytes, bytearray)) or len(key) < 16:
            raise CryptoError("key must be at least 16 bytes")
        self._enc_key = derive_key(bytes(key), "enc")
        self._mac_key = derive_key(bytes(key), "mac")

    def _tag(self, nonce: bytes, body: bytes, associated: bytes) -> bytes:
        material = (
            canonical_encode(nonce)
            + canonical_encode(body)
            + canonical_encode(associated)
        )
        return hmac.new(self._mac_key, material, hashlib.sha256).digest()

    def encrypt(
        self, plaintext: bytes, nonce: bytes, associated: bytes = b""
    ) -> Ciphertext:
        """Seal ``plaintext``.

        ``nonce`` MUST be unique per message under this key (protocols use
        monotone counters); reuse leaks the XOR of the two plaintexts.
        ``associated`` is authenticated but not encrypted (e.g. sender id).
        """
        if not isinstance(plaintext, (bytes, bytearray)):
            raise CryptoError("plaintext must be bytes")
        if not isinstance(nonce, (bytes, bytearray)) or not nonce:
            raise CryptoError("nonce must be non-empty bytes")
        # Bind the keystream to the nonce by deriving a per-nonce stream.
        pad = Prg(
            derive_key(self._enc_key, "nonce", bytes(nonce)), "xor"
        ).read(len(plaintext))
        body = bytes(a ^ b for a, b in zip(bytes(plaintext), pad))
        return Ciphertext(
            nonce=bytes(nonce),
            body=body,
            tag=self._tag(bytes(nonce), body, bytes(associated)),
        )

    def decrypt(self, sealed: Ciphertext, associated: bytes = b"") -> bytes:
        """Open a ciphertext; raises :class:`CryptoError` on any tampering."""
        expected = self._tag(sealed.nonce, sealed.body, bytes(associated))
        if not hmac.compare_digest(expected, sealed.tag):
            raise CryptoError("authentication failed: bad tag")
        pad = Prg(
            derive_key(self._enc_key, "nonce", sealed.nonce), "xor"
        ).read(len(sealed.body))
        return bytes(a ^ b for a, b in zip(sealed.body, pad))


def nonce_from_counter(*parts: int) -> bytes:
    """Build a nonce from integer counters (round number, sender id, ...)."""
    return b"".join(p.to_bytes(8, "big", signed=True) for p in parts)
