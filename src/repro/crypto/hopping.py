"""Key-seeded channel hopping (Sections 6-7).

Once two nodes (or the whole group) share a secret key, they derive a
pseudo-random channel-hopping pattern from it.  The adversary, lacking the
key, sees each round's channel as uniform — so jamming ``t`` of ``C``
channels blind succeeds with probability only ``t / C`` per round, and a
``Θ(t log n)``-round epoch delivers with high probability.

The hop for round ``r`` is computed by random access into the PRG block
sequence (no shared mutable cursor), so any party that knows the key and the
absolute round number lands on the same channel — including parties that
joined late or slept through rounds.
"""

from __future__ import annotations

from ..errors import CryptoError
from .hashes import derive_key
from .prg import Prg


class ChannelHopper:
    """Derives the channel for each absolute round index.

    Parameters
    ----------
    key:
        Shared secret key material.
    channels:
        Number of channels ``C`` to hop across.
    label:
        Context label separating hop sequences derived from one key
        (e.g. one per communicating pair, or ``"group"``).
    """

    def __init__(self, key: bytes, channels: int, label: object = "") -> None:
        if channels < 1:
            raise CryptoError("need at least one channel")
        if not isinstance(key, (bytes, bytearray)):
            raise CryptoError("key must be bytes")
        self.channels = channels
        self._prg = Prg(derive_key(bytes(key), "hop", label), "hop")

    def channel(self, round_index: int) -> int:
        """The channel for ``round_index`` (deterministic random access).

        Uses 8 PRG bytes per round; the modulo bias at 64 bits is below
        ``2^-50`` for any realistic ``C`` and irrelevant to the protocol
        analysis (which needs only near-uniformity).
        """
        if round_index < 0:
            raise CryptoError("round_index must be non-negative")
        block = self._prg.block(round_index)
        return int.from_bytes(block[:8], "big") % self.channels

    def sequence(self, start: int, count: int) -> list[int]:
        """The hop channels for ``count`` consecutive rounds."""
        return [self.channel(start + i) for i in range(count)]
