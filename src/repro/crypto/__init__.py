"""From-scratch cryptographic substrate for Sections 6-7.

The paper's group-key and long-lived-service constructions assume:

* a one-round key-exchange protocol — :mod:`repro.crypto.dh` implements
  Diffie-Hellman over safe-prime groups (RFC 3526 group 14, plus small
  simulation groups);
* collision-resistant hash functions ``H1``/``H2`` — :mod:`repro.crypto.hashes`;
* a PRG for channel hopping and keystreams — :mod:`repro.crypto.prg`;
* authenticated symmetric encryption — :mod:`repro.crypto.stream`
  (encrypt-then-MAC over a PRG keystream);
* key-derived channel-hopping patterns — :mod:`repro.crypto.hopping`.

Everything is built from ``hashlib``/``hmac`` and integer arithmetic; there
are no external crypto dependencies.  The small DH groups are insecure
against real discrete-log attacks and exist only to keep simulations fast —
the simulated adversary never computes discrete logs.
"""

from .dh import (
    DEFAULT_GROUP,
    DhGroup,
    DhKeyPair,
    MODP_GROUP_14,
    TEST_GROUP_64,
    TEST_GROUP_128,
    TEST_GROUP_256,
    is_probable_prime,
    pairwise_context,
)
from .hashes import WeakHash, canonical_encode, derive_key, h1, h2
from .hopping import ChannelHopper
from .prg import Prg, keystream
from .stream import AuthenticatedCipher, Ciphertext, nonce_from_counter

__all__ = [
    "AuthenticatedCipher",
    "ChannelHopper",
    "Ciphertext",
    "DEFAULT_GROUP",
    "DhGroup",
    "DhKeyPair",
    "MODP_GROUP_14",
    "Prg",
    "TEST_GROUP_64",
    "TEST_GROUP_128",
    "TEST_GROUP_256",
    "WeakHash",
    "canonical_encode",
    "derive_key",
    "h1",
    "h2",
    "is_probable_prime",
    "keystream",
    "nonce_from_counter",
    "pairwise_context",
]
