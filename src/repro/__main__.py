"""Command-line demos: ``python -m repro <command>``.

Commands
--------
``fame``        run f-AME on a generated workload and print the outcome table
``groupkey``    run the Section 6 group-key establishment
``service``     run the full pipeline and exchange a few chat messages
``gauntlet``    run f-AME against every adversary in the gallery
``montecarlo``  fan many independent seeded trials over a process pool and
                print a JSON sweep report (Wilson intervals, disruptability
                histogram, merged radio metrics)

Common options: ``--nodes``, ``--channels``, ``--strength`` (t), ``--seed``,
``--adversary``.  Every run is deterministic given the seed — for
``montecarlo`` the *report* is deterministic regardless of ``--workers``::

    python -m repro montecarlo --trials 100 --workers 4 --seed 7

produces merged metrics byte-identical to the same sweep at ``--workers 1``
(100 trials is also enough for an informative 1/n verdict at the default
``n=20``; see ``repro.analysis.stats.min_informative_trials``).
"""

from __future__ import annotations

import argparse
import json
import random
import sys

from . import __version__
from .adversary import Adversary
from .crypto.dh import TEST_GROUP_128
from .experiments import MonteCarloRunner, WORKLOADS, default_pairs
from .experiments.workloads import (
    ADVERSARY_FACTORIES as ADVERSARIES,
    make_network as _make_network,
)
from .fame import run_fame
from .groupkey import establish_group_key
from .radio.network import RadioNetwork
from .rng import RngRegistry
from .service import SecureSession


def _build_network(args: argparse.Namespace) -> RadioNetwork:
    adversary: Adversary = ADVERSARIES[args.adversary](
        random.Random(args.seed ^ 0xA5A5)
    )
    return _make_network(args.nodes, args.channels, args.strength, adversary)


def cmd_fame(args: argparse.Namespace) -> int:
    network = _build_network(args)
    pairs = default_pairs(args.nodes, args.pairs)
    result = run_fame(network, pairs, rng=RngRegistry(seed=args.seed))
    print(f"f-AME: {len(result.succeeded)}/{len(pairs)} pairs delivered in "
          f"{result.rounds} rounds ({result.moves} game moves)")
    for pair, outcome in sorted(result.outcomes.items()):
        status = f"ok: {outcome.message!r}" if outcome.success else "FAIL"
        print(f"  {pair}: {status}")
    print(f"disruptability {result.disruptability()} <= t={args.strength}")
    return 0


def cmd_groupkey(args: argparse.Namespace) -> int:
    network = _build_network(args)
    result = establish_group_key(
        network, RngRegistry(seed=args.seed), group=TEST_GROUP_128
    )
    summary = result.summary()
    for key, value in summary.items():
        print(f"  {key}: {value}")
    if result.group_key is not None:
        print(f"  key fingerprint: {result.group_key.hex()[:16]}…")
    return 0 if len(result.holders()) >= args.nodes - args.strength else 1


def cmd_service(args: argparse.Namespace) -> int:
    network = _build_network(args)
    session = SecureSession(
        network, RngRegistry(seed=args.seed), group=TEST_GROUP_128
    )
    print(f"setup: {session.stats.setup_rounds} rounds, "
          f"{len(session.members)} members")
    for i in range(3):
        session.send(session.members[i], f"message {i}".encode())
    session.flush()
    reader = session.members[-1]
    for delivery in session.inbox(reader):
        print(f"  node {reader} <- node {delivery.sender}: "
              f"{delivery.payload.decode()}")
    print(f"per-message cost: "
          f"{session.stats.real_rounds // max(1, session.stats.emulated_rounds)}"
          " rounds")
    return 0


def cmd_gauntlet(args: argparse.Namespace) -> int:
    pairs = default_pairs(args.nodes, args.pairs)
    worst = 0
    for name, factory in ADVERSARIES.items():
        network = _make_network(
            args.nodes, args.channels, args.strength,
            factory(random.Random(args.seed)),
        )
        result = run_fame(network, pairs, rng=RngRegistry(seed=args.seed))
        cover = result.disruptability()
        worst = max(worst, cover)
        print(f"  {name:10} failed={len(result.failed):2} cover={cover}")
    print(f"worst cover {worst} <= t={args.strength}: "
          f"{'OK' if worst <= args.strength else 'VIOLATED'}")
    return 0 if worst <= args.strength else 1


def cmd_montecarlo(args: argparse.Namespace) -> int:
    runner = MonteCarloRunner(
        args.workload,
        args.trials,
        seed=args.seed,
        workers=args.workers,
        chunksize=args.chunksize,
        n=args.nodes,
        channels=args.channels,
        t=args.strength,
        pairs=args.pairs,
        adversary=args.adversary,
    )
    report = runner.run()
    print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    # Exit non-zero only when the w.h.p. claim was checkable and failed;
    # an uninformative trial count reports claim_holds=null and exits 0.
    return 1 if report.whp_claim is False else 0


def _add_common_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--nodes", "-n", type=int, default=20)
    p.add_argument("--channels", "-c", type=int, default=2)
    p.add_argument("--strength", "-t", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--pairs", type=int, default=5)
    p.add_argument(
        "--adversary", choices=sorted(ADVERSARIES), default="schedule"
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Secure Communication Over Radio Channels (PODC 2008) "
        "— reproduction demos",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)
    for name, handler, blurb in (
        ("fame", cmd_fame, "authenticated message exchange"),
        ("groupkey", cmd_groupkey, "group-key establishment"),
        ("service", cmd_service, "long-lived secure communication"),
        ("gauntlet", cmd_gauntlet, "f-AME vs the adversary gallery"),
    ):
        p = sub.add_parser(name, help=blurb)
        _add_common_options(p)
        p.set_defaults(handler=handler)
    mc = sub.add_parser(
        "montecarlo",
        help="multiprocess Monte Carlo trial sweep (JSON report)",
        description="Fan independent seeded trials over a process pool and "
        "print a JSON sweep report: Wilson success intervals, a "
        "disruptability histogram, and merged radio metrics.  The report "
        "is deterministic given --seed: any --workers count produces "
        "byte-identical merged metrics.",
        epilog="example: python -m repro montecarlo --trials 100 --workers 4 "
        "--seed 7",
    )
    _add_common_options(mc)
    # Default chosen so the bare invocation is informative for the 1/n
    # claim at the default n=20 (min_informative_trials(20) == 73).
    mc.add_argument("--trials", type=int, default=100)
    mc.add_argument("--workers", "-j", type=int, default=1)
    mc.add_argument(
        "--chunksize",
        type=int,
        default=None,
        help="trials per worker dispatch (default: trials // (workers * 4))",
    )
    mc.add_argument(
        "--workload", choices=sorted(WORKLOADS), default="fame"
    )
    mc.set_defaults(handler=cmd_montecarlo)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
