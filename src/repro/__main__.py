"""Command-line demos: ``python -m repro <command>``.

Commands
--------
``fame``        run f-AME on a generated workload and print the outcome table
``groupkey``    run the Section 6 group-key establishment
``service``     run the full pipeline and exchange a few chat messages
``gauntlet``    run f-AME against every adversary in the gallery
``montecarlo``  fan many independent seeded trials over a process pool and
                print a JSON sweep report (Wilson intervals, disruptability
                histogram, merged radio metrics)
``sweep``       expand a parameter grid (workload × n × C × t × adversary)
                into deterministically seeded trials and dispatch them over
                a pluggable backend (``--backend serial|procs|socket``),
                with a durable ``--journal`` and ``--resume``
``worker``      join a socket-backend sweep as a worker process (connects
                to the coordinator, pulls batches of trials until shutdown;
                ``--batch-size`` on the sweep side pins the batch size)
``scenario``    list/run entries of the declarative attack-scenario
                registry (``repro.scenarios``): ``run NAME...`` exits 0
                iff every observed outcome matches the registered
                expectation, ``gauntlet`` runs the whole catalog
``lint``        run the determinism & wire-safety static analyzer
                (:mod:`repro.lint`) over the tree; exit 0 clean, 1 on
                findings, 2 on usage errors — CI self-hosts it over
                ``src tests benchmarks`` with a zero-tolerance baseline

Common options: ``--nodes``, ``--channels``, ``--strength`` (t), ``--seed``,
``--adversary``.  Every run is deterministic given the seed — for
``montecarlo`` the *report* is deterministic regardless of ``--workers``::

    python -m repro montecarlo --trials 100 --workers 4 --seed 7

produces merged metrics byte-identical to the same sweep at ``--workers 1``
(100 trials is also enough for an informative 1/n verdict at the default
``n=20``; see ``repro.analysis.stats.min_informative_trials``), and for
``sweep`` the report is byte-identical across backends, worker counts,
kills, and resumes.  ``--json-out PATH`` (montecarlo and sweep) writes the
report to a file (trailing newline) and prints only a one-line summary.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from . import __version__
from .adversary import Adversary
from .crypto.dh import TEST_GROUP_128
from .dispatch import SweepRunner, SweepSpec, make_backend, worker_main
from .dispatch.socket_pool import SocketBackend, parse_endpoint
from .errors import ConfigurationError, SweepInterrupted
from .experiments import MonteCarloRunner, WORKLOADS, default_pairs
from .experiments.workloads import (
    ADVERSARY_FACTORIES as ADVERSARIES,
    make_network as _make_network,
)
from .fame import run_fame
from .groupkey import establish_group_key
from .lint.cli import add_lint_arguments, cmd_lint
from .radio.network import RadioNetwork
from .rng import RngRegistry
from .service import SecureSession


def _build_network(args: argparse.Namespace) -> RadioNetwork:
    # The adversary's coins ride their own registry stream (the paper's
    # separation of honest and adversarial randomness) — historically this
    # was ad-hoc `args.seed ^ 0xA5A5` arithmetic, now banned by lint
    # rule API002.
    adversary: Adversary = ADVERSARIES[args.adversary](
        RngRegistry(seed=args.seed).fresh("adversary")
    )
    return _make_network(args.nodes, args.channels, args.strength, adversary)


def cmd_fame(args: argparse.Namespace) -> int:
    network = _build_network(args)
    pairs = default_pairs(args.nodes, args.pairs)
    result = run_fame(network, pairs, rng=RngRegistry(seed=args.seed))
    print(f"f-AME: {len(result.succeeded)}/{len(pairs)} pairs delivered in "
          f"{result.rounds} rounds ({result.moves} game moves)")
    for pair, outcome in sorted(result.outcomes.items()):
        status = f"ok: {outcome.message!r}" if outcome.success else "FAIL"
        print(f"  {pair}: {status}")
    print(f"disruptability {result.disruptability()} <= t={args.strength}")
    return 0


def cmd_groupkey(args: argparse.Namespace) -> int:
    network = _build_network(args)
    result = establish_group_key(
        network, RngRegistry(seed=args.seed), group=TEST_GROUP_128
    )
    summary = result.summary()
    for key, value in summary.items():
        print(f"  {key}: {value}")
    if result.group_key is not None:
        print(f"  key fingerprint: {result.group_key.hex()[:16]}…")
    return 0 if len(result.holders()) >= args.nodes - args.strength else 1


def cmd_service(args: argparse.Namespace) -> int:
    network = _build_network(args)
    session = SecureSession(
        network, RngRegistry(seed=args.seed), group=TEST_GROUP_128
    )
    print(f"setup: {session.stats.setup_rounds} rounds, "
          f"{len(session.members)} members")
    for i in range(3):
        session.send(session.members[i], f"message {i}".encode())
    session.flush()
    reader = session.members[-1]
    for delivery in session.inbox(reader):
        print(f"  node {reader} <- node {delivery.sender}: "
              f"{delivery.payload.decode()}")
    print(f"per-message cost: "
          f"{session.stats.real_rounds // max(1, session.stats.emulated_rounds)}"
          " rounds")
    return 0


def cmd_gauntlet(args: argparse.Namespace) -> int:
    pairs = default_pairs(args.nodes, args.pairs)
    worst = 0
    for name, factory in ADVERSARIES.items():
        network = _make_network(
            args.nodes, args.channels, args.strength,
            factory(RngRegistry(seed=args.seed).fresh("adversary", name)),
        )
        result = run_fame(network, pairs, rng=RngRegistry(seed=args.seed))
        cover = result.disruptability()
        worst = max(worst, cover)
        print(f"  {name:10} failed={len(result.failed):2} cover={cover}")
    print(f"worst cover {worst} <= t={args.strength}: "
          f"{'OK' if worst <= args.strength else 'VIOLATED'}")
    return 0 if worst <= args.strength else 1


def _emit_report(
    payload: dict, json_out: Path | None, summary: str
) -> None:
    """Print the report, or write it to a file and print one line.

    ``--json-out`` exists so sweep reports can be collected without shell
    redirection: the file gets the full JSON (trailing newline included),
    stdout gets a single summary line.
    """
    if json_out is None:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return
    json_out.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    print(f"{summary} -> {json_out}")


def cmd_montecarlo(args: argparse.Namespace) -> int:
    try:
        runner = MonteCarloRunner(
            args.workload,
            args.trials,
            seed=args.seed,
            workers=args.workers,
            chunksize=args.chunksize,
            n=args.nodes,
            channels=args.channels,
            t=args.strength,
            pairs=args.pairs,
            adversary=args.adversary,
        )
    except ConfigurationError as exc:
        # --workload is an open set now (scenario:NAME registers lazily),
        # so bad names surface here instead of in argparse choices.
        print(f"repro montecarlo: {exc}", file=sys.stderr)
        return 2
    report = runner.run()
    whp = {True: "ok", False: "FAILED", None: "uninformative"}[
        report.whp_claim
    ]
    _emit_report(
        report.as_dict(),
        args.json_out,
        f"montecarlo: workload={report.workload} trials={report.trials} "
        f"success={report.success.successes}/{report.success.trials} "
        f"whp={whp}",
    )
    # Exit non-zero only when the w.h.p. claim was checkable and failed;
    # an uninformative trial count reports claim_holds=null and exits 0.
    return 1 if report.whp_claim is False else 0


def _sweep_backend(args: argparse.Namespace):
    if args.backend == "socket":
        host, port = parse_endpoint(args.bind)
        return SocketBackend(
            workers=args.workers,
            host=host,
            port=port,
            spawn_workers=not args.no_spawn_workers,
            batch_size=args.batch_size,
        )
    return make_backend(
        args.backend, workers=args.workers, chunksize=args.chunksize
    )


def cmd_sweep(args: argparse.Namespace) -> int:
    try:
        spec = SweepSpec(
            workloads=tuple(args.workloads),
            ns=tuple(args.nodes),
            channels=tuple(args.channels),
            ts=tuple(args.strengths),
            adversaries=tuple(args.adversaries),
            trials=args.trials,
            seed=args.seed,
            pairs=args.pairs,
        )
        backend = _sweep_backend(args)
    except ConfigurationError as exc:
        print(f"repro sweep: {exc}", file=sys.stderr)
        return 2

    total_points = len(spec.points())

    def on_point_complete(point, section) -> None:
        if not args.progress:
            return
        rate = section["success_rate"]
        print(
            f"repro sweep: point {point.point_index + 1}/{total_points} "
            f"[{point.label()}] success "
            f"{rate['successes']}/{rate['trials']} "
            f"max-cover {section['disruptability']['max']}",
            file=sys.stderr,
        )

    runner = SweepRunner(
        spec,
        backend=backend,
        journal_path=args.journal,
        resume=args.resume,
        on_point_complete=on_point_complete,
        stop_after=args.stop_after,
    )
    try:
        report = runner.run()
    except ConfigurationError as exc:
        print(f"repro sweep: {exc}", file=sys.stderr)
        return 2
    except SweepInterrupted:
        partial = runner.state.partial_report()
        done = f"{partial['completed_trials']}/{partial['total_trials']}"
        if args.journal is not None:
            hint = "journalled; rerun with --resume to finish"
        else:
            hint = (
                "completed but DISCARDED (no --journal); rerun with "
                "--journal to make stops resumable"
            )
        print(
            f"repro sweep: stopped early with {done} trials {hint}",
            file=sys.stderr,
        )
        return 3
    _emit_report(report.as_dict(), args.json_out, report.summary_line())
    return 1 if report.whp_failures() else 0


def cmd_scenario(args: argparse.Namespace) -> int:
    # Imported on demand: the catalog pulls in the serve stack, which
    # the lightweight demo commands should not pay for.
    from .errors import ScenarioError
    from .scenarios import get_scenario, run_gauntlet, scenario_names

    if args.action == "list":
        for name in scenario_names():
            scen = get_scenario(name)
            print(
                f"  {name:34} [{scen.layer:8}] "
                f"expects {scen.expected.describe()}"
            )
        return 0
    if args.action == "run" and not args.names:
        print(
            "repro scenario: run needs at least one scenario name "
            "(see `repro scenario list`)",
            file=sys.stderr,
        )
        return 2
    try:
        report = run_gauntlet(
            tuple(args.names) if args.names else None, seed=args.seed
        )
    except ScenarioError as exc:
        print(f"repro scenario: {exc}", file=sys.stderr)
        return 2
    if args.json_out is None:
        for run in report.runs:
            verdict = "ok" if run.matched else "MISMATCH"
            line = (
                f"  {run.name:34} [{run.layer:8}] {verdict}: "
                f"expected {run.expected.describe()}"
            )
            if not run.matched:
                line += f", observed {run.observed.describe()}"
            print(line)
        print(report.summary_line())
    else:
        _emit_report(report.as_dict(), args.json_out, report.summary_line())
    return 0 if report.all_matched() else 1


def cmd_worker(args: argparse.Namespace) -> int:
    try:
        host, port = parse_endpoint(args.connect)
    except ConfigurationError as exc:
        print(f"repro worker: {exc}", file=sys.stderr)
        return 2
    return worker_main(host, port, retry_seconds=args.retry_seconds)


def cmd_serve(args: argparse.Namespace) -> int:
    from .serve import serve_main

    try:
        host, port = parse_endpoint(args.bind)
    except ConfigurationError as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2
    return serve_main(
        seed=args.seed,
        host=host,
        port=port,
        max_sessions=args.max_sessions,
        idle_timeout=args.idle_timeout,
    )


def cmd_serve_client(args: argparse.Namespace) -> int:
    from .errors import ServiceError
    from .serve import ServiceClient

    try:
        host, port = parse_endpoint(args.connect)
    except ConfigurationError as exc:
        print(f"repro serve-client: {exc}", file=sys.stderr)
        return 2
    try:
        with ServiceClient(host, port, name="cli") as client:
            return _serve_client_action(client, args)
    except ServiceError as exc:
        print(f"repro serve-client: {exc}", file=sys.stderr)
        return 1


def _serve_client_action(client, args: argparse.Namespace) -> int:
    if args.action == "list":
        for name in client.list_sessions():
            print(name)
        return 0
    if args.action == "shutdown":
        client.shutdown()
        print("daemon shutting down")
        return 0
    if args.session is None:
        noun = (
            "a scenario name" if args.action == "scenario"
            else "a session name"
        )
        print(
            f"repro serve-client: {args.action} needs {noun}",
            file=sys.stderr,
        )
        return 2
    if args.action == "scenario":
        out = client.run_scenario(args.session, seed=args.seed)
        verdict = "ok" if out.matched else "MISMATCH"
        print(
            f"{out.name} [{out.layer}] seed={out.seed} {verdict}: "
            f"expected {out.expected} observed {out.observed}"
        )
        return 0 if out.matched else 1
    if args.action == "open":
        opened = client.open_session(
            args.session,
            n=args.nodes,
            channels=args.channels,
            t=args.strength,
            adversary=args.adversary,
            rekey_interval=args.rekey_interval,
        )
        print(
            f"opened {opened.name!r}: members={opened.members} "
            f"epoch={opened.epoch_length} rounds/emulated round"
        )
        return 0
    if args.action == "stats":
        stats = client.stats(args.session)
        print(
            f"{stats.name}: members={stats.members} gen={stats.generation} "
            f"pending={stats.pending} attached={stats.attached} "
            f"emulated={stats.emulated_rounds} real={stats.real_rounds} "
            f"sent={stats.sent} delivered={stats.delivered} "
            f"rekeys={stats.rekeys}"
        )
        return 0
    if args.action == "rekey":
        done = client.rekey(args.session, tuple(args.compromised))
        print(
            f"rekeyed {done.name!r}: gen={done.generation} "
            f"distributor={done.distributor} members={done.members} "
            f"excluded={done.excluded} dropped={done.dropped} "
            f"in {done.rounds} rounds"
        )
        return 0
    if args.action == "demo":
        client.join_session(args.session)
        stats = client.stats(args.session)
        for i, member in enumerate(stats.members[:3]):
            client.send(
                args.session, member, f"demo message {i}".encode()
            )
        flushed = client.flush(args.session)
        print(
            f"flushed {flushed.emulated_rounds} emulated rounds, "
            f"{len(flushed.deliveries)} deliveries"
        )
        reader = stats.members[-1]
        for delivery in client.drain_inbox(args.session, reader):
            print(
                f"  node {reader} <- node {delivery.sender}: "
                f"{delivery.payload.decode()}"
            )
        return 0
    print(
        f"repro serve-client: unknown action {args.action!r}",
        file=sys.stderr,
    )
    return 2


def _int_list(text: str) -> list[int]:
    """Comma-separated ints for grid axes (``--nodes 18,24,32``)."""
    try:
        return [int(part) for part in text.split(",") if part != ""]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not a comma-separated list of integers"
        ) from None


def _str_list(text: str) -> list[str]:
    """Comma-separated names for grid axes (``--adversaries null,sweep``)."""
    return [part for part in text.split(",") if part != ""]


def _add_common_options(p: argparse.ArgumentParser) -> None:
    p.add_argument("--nodes", "-n", type=int, default=20)
    p.add_argument("--channels", "-c", type=int, default=2)
    p.add_argument("--strength", "-t", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--pairs", type=int, default=5)
    p.add_argument(
        "--adversary", choices=sorted(ADVERSARIES), default="schedule"
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Secure Communication Over Radio Channels (PODC 2008) "
        "— reproduction demos",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)
    for name, handler, blurb in (
        ("fame", cmd_fame, "authenticated message exchange"),
        ("groupkey", cmd_groupkey, "group-key establishment"),
        ("service", cmd_service, "long-lived secure communication"),
        ("gauntlet", cmd_gauntlet, "f-AME vs the adversary gallery"),
    ):
        p = sub.add_parser(name, help=blurb)
        _add_common_options(p)
        p.set_defaults(handler=handler)
    mc = sub.add_parser(
        "montecarlo",
        help="multiprocess Monte Carlo trial sweep (JSON report)",
        description="Fan independent seeded trials over a process pool and "
        "print a JSON sweep report: Wilson success intervals, a "
        "disruptability histogram, and merged radio metrics.  The report "
        "is deterministic given --seed: any --workers count produces "
        "byte-identical merged metrics.",
        epilog="example: python -m repro montecarlo --trials 100 --workers 4 "
        "--seed 7",
    )
    _add_common_options(mc)
    # Default chosen so the bare invocation is informative for the 1/n
    # claim at the default n=20 (min_informative_trials(20) == 73).
    mc.add_argument("--trials", type=int, default=100)
    mc.add_argument("--workers", "-j", type=int, default=1)
    mc.add_argument(
        "--chunksize",
        type=int,
        default=None,
        help="trials per worker dispatch (default: trials // (workers * 4))",
    )
    mc.add_argument(
        "--workload",
        default="fame",
        help=f"one of {sorted(WORKLOADS)}, or scenario:NAME to sweep a "
        "registered attack scenario over trial seeds",
    )
    mc.add_argument(
        "--json-out",
        type=Path,
        default=None,
        help="write the JSON report to this file (trailing newline) and "
        "print only a one-line summary to stdout",
    )
    mc.set_defaults(handler=cmd_montecarlo)

    sw = sub.add_parser(
        "sweep",
        help="parameter-grid sweep over pluggable dispatch backends",
        description="Expand a parameter grid (workload × n × channels × t "
        "× adversary) into deterministically seeded trials "
        "(RngRegistry.spawn('sweep', point, trial)) and dispatch them over "
        "--backend serial|procs|socket.  With --journal every completed "
        "trial is durably appended; --resume replays the journal, skips "
        "completed trials, and produces a report byte-identical to an "
        "uninterrupted run.  The report never depends on the backend, "
        "worker count, completion order, retries, kills, or resumes.",
        epilog="example: python -m repro sweep --nodes 18,24 "
        "--adversaries schedule,random --trials 20 --backend socket "
        "--workers 4 --journal sweep.jsonl --json-out sweep.json",
    )
    sw.add_argument("--workloads", type=_str_list, default=["fame"],
                    help="comma-separated workload axis")
    sw.add_argument("--nodes", "-n", type=_int_list, default=[20],
                    help="comma-separated n axis")
    sw.add_argument("--channels", "-c", type=_int_list, default=[2],
                    help="comma-separated channel-count axis")
    sw.add_argument("--strengths", "-t", type=_int_list, default=[1],
                    help="comma-separated adversary-strength (t) axis")
    sw.add_argument("--adversaries", type=_str_list, default=["schedule"],
                    help="comma-separated adversary axis")
    sw.add_argument("--trials", type=int, default=20,
                    help="trials per grid point")
    sw.add_argument("--seed", type=int, default=0)
    sw.add_argument("--pairs", type=int, default=5)
    sw.add_argument(
        "--backend", choices=("serial", "procs", "socket"), default="serial"
    )
    sw.add_argument("--workers", "-j", type=int, default=2,
                    help="pool size for the procs/socket backends")
    sw.add_argument(
        "--chunksize", type=int, default=None,
        help="trials per dispatch for the procs backend",
    )
    sw.add_argument(
        "--batch-size", type=int, default=None,
        help="socket backend: pin trials per batch frame (default: sized "
        "adaptively from observed per-trial cost)",
    )
    sw.add_argument(
        "--journal", default=None,
        help="durable JSONL journal path (one fsynced record per trial)",
    )
    sw.add_argument(
        "--resume", action="store_true",
        help="replay an existing --journal and skip completed trials",
    )
    sw.add_argument(
        "--json-out", type=Path, default=None,
        help="write the JSON report to this file (trailing newline) and "
        "print only a one-line summary to stdout",
    )
    sw.add_argument(
        "--progress", action="store_true",
        help="print one line per completed grid point to stderr",
    )
    sw.add_argument(
        "--bind", default="127.0.0.1:0",
        help="socket backend: coordinator HOST:PORT (0 = OS-assigned)",
    )
    sw.add_argument(
        "--no-spawn-workers", action="store_true",
        help="socket backend: only listen; workers are started elsewhere "
        "with `python -m repro worker --connect HOST:PORT`",
    )
    sw.add_argument(
        "--stop-after", type=int, default=None,
        help="fault injection: stop (exit 3) after this many newly "
        "completed trials — the journal keeps them; --resume finishes",
    )
    sw.set_defaults(handler=cmd_sweep)

    sn = sub.add_parser(
        "scenario",
        help="run entries of the declarative attack-scenario registry",
        description="The repro.scenarios registry pairs each attack "
        "(gallery adversaries, byzantine deviators, replay/spoof/race "
        "injectors) with a typed expected outcome — AttackRejected, "
        "KeyMismatchDetected, SessionAborted(code), WhpBoundHolds, or an "
        "explicitly asserted SafetyViolated/LivenessLost.  `run NAME...` "
        "and `gauntlet` exit 0 iff every observed outcome equals its "
        "registered expectation; every run is deterministic in --seed.  "
        "Scenarios also sweep as `--workload scenario:NAME` under "
        "montecarlo/sweep.",
        epilog="example: python -m repro scenario gauntlet --json-out "
        "gauntlet.json",
    )
    sn.add_argument("action", choices=("list", "run", "gauntlet"))
    sn.add_argument(
        "names", nargs="*",
        help="scenario names (required for run; optional subset for "
        "gauntlet)",
    )
    sn.add_argument("--seed", type=int, default=0)
    sn.add_argument(
        "--json-out", type=Path, default=None,
        help="write the JSON gauntlet report to this file (trailing "
        "newline) and print only a one-line summary to stdout",
    )
    sn.set_defaults(handler=cmd_scenario)

    wk = sub.add_parser(
        "worker",
        help="join a socket-backend sweep as a worker process",
        description="Connect to a sweep coordinator, handshake, and pull "
        "trials until it sends shutdown.  Exit codes: 0 shutdown, 1 "
        "coordinator unreachable/vanished, 2 handshake rejected or "
        "malformed --connect endpoint.",
    )
    wk.add_argument(
        "--connect", required=True, help="coordinator HOST:PORT"
    )
    wk.add_argument(
        "--retry-seconds", type=float, default=10.0,
        help="keep retrying the connection this long before giving up",
    )
    wk.set_defaults(handler=cmd_worker)

    sv = sub.add_parser(
        "serve",
        help="run the multi-session key-service daemon",
        description="Bind a TCP port and multiplex concurrent SecureSession "
        "group sessions (open/join/leave, send/flush/drain, scheduled and "
        "on-demand re-keys, per-session adversaries) behind the typed "
        "repro.serve wire protocol.  Every session's randomness derives "
        "from --seed and the session name, so a daemon-served session is "
        "byte-identical to the same session driven synchronously.",
        epilog="example: python -m repro serve --bind 127.0.0.1:7410",
    )
    sv.add_argument(
        "--bind", default="127.0.0.1:0",
        help="daemon HOST:PORT (0 = OS-assigned, printed to stderr)",
    )
    sv.add_argument("--seed", type=int, default=0)
    sv.add_argument(
        "--max-sessions", type=int, default=None,
        help="bound on concurrent sessions (excess opens fail 'busy')",
    )
    sv.add_argument(
        "--idle-timeout", type=float, default=None,
        help="exit after this many seconds with no clients and no traffic",
    )
    sv.set_defaults(handler=cmd_serve)

    sc = sub.add_parser(
        "serve-client",
        help="talk to a running key-service daemon",
        description="Actions: list; open NAME; demo NAME (send a few "
        "messages, flush, read an inbox); stats NAME; rekey NAME "
        "[--compromised IDS]; scenario NAME [--seed N] (run a registered "
        "attack scenario inside the daemon); shutdown.",
        epilog="example: python -m repro serve-client --connect "
        "127.0.0.1:7410 demo alpha",
    )
    sc.add_argument("--connect", required=True, help="daemon HOST:PORT")
    sc.add_argument(
        "action",
        choices=(
            "list", "open", "demo", "stats", "rekey", "scenario",
            "shutdown",
        ),
    )
    sc.add_argument("session", nargs="?", default=None)
    sc.add_argument(
        "--seed", type=int, default=0,
        help="scenario action: the seed the daemon runs the scenario at",
    )
    sc.add_argument("--nodes", "-n", type=int, default=8)
    sc.add_argument("--channels", "-c", type=int, default=2)
    sc.add_argument("--strength", "-t", type=int, default=1)
    sc.add_argument(
        "--adversary", choices=sorted(ADVERSARIES), default=None,
        help="subject the session's network to a gallery adversary",
    )
    sc.add_argument(
        "--rekey-interval", type=int, default=0,
        help="rotate the group key every N emulated rounds during flushes",
    )
    sc.add_argument(
        "--compromised", type=_int_list, default=[],
        help="comma-separated member ids to exclude when re-keying",
    )
    sc.set_defaults(handler=cmd_serve_client)

    li = sub.add_parser(
        "lint",
        help="determinism & wire-safety static analysis (repro.lint)",
        description="Run the AST-based rule engine over files or "
        "directories.  Rules enforce the repository's replayability "
        "invariants (no raw random access, no set-order iteration, no "
        "wall-clock reads in protocol code, no PYTHONHASHSEED-perturbed "
        "hash()), wire safety (restricted unpickling, metered frames), "
        "and API discipline (picklable wire dataclasses, registry-derived "
        "seeds).  Suppress a justified exception with '# repro-lint: "
        "disable=RULE -- reason'.  Exit codes: 0 clean, 1 findings, 2 "
        "usage error.",
        epilog="example: python -m repro lint src tests benchmarks "
        "--baseline lint_baseline.json --json-out lint_report.json",
    )
    add_lint_arguments(li)
    li.set_defaults(handler=cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
