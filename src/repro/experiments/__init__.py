"""Monte Carlo experiment harness for the paper's w.h.p. claims.

The guarantees reproduced here — ``t``-disruptability (Definition 1),
group-key adoption by all but ``t`` nodes (Section 6) — hold "with high
probability", so verifying them means many independent seeded executions,
not one.  This package turns that into a subsystem:

* :class:`~repro.experiments.trial.TrialSpec` /
  :class:`~repro.experiments.trial.TrialResult` — one execution as a
  picklable unit of work and its outcome;
* :mod:`~repro.experiments.workloads` — ready-made factories for the
  headline workloads (f-AME delivery, group-key establishment, the
  adversary gauntlet) plus the shared adversary gallery;
* :class:`~repro.experiments.runner.MonteCarloRunner` — fans trials over a
  :mod:`repro.dispatch` backend (in-process serial, a ``multiprocessing``
  pool, or the socket worker pool) and aggregates Wilson intervals,
  disruptability histograms, and merged radio metrics into a
  :class:`~repro.experiments.runner.MonteCarloReport`.

Execution mechanics live in :mod:`repro.dispatch`: this package defines
*what* a trial is and how outcomes aggregate, the dispatch layer decides
*where* trials run (and adds journalled, resumable parameter-grid sweeps
on top).  ``python -m repro montecarlo`` and ``python -m repro sweep``
are the CLI front-ends.
"""

from .runner import MonteCarloReport, MonteCarloRunner
from .trial import TrialResult, TrialSpec, trial_seed
from .workloads import (
    ADVERSARY_FACTORIES,
    SCENARIO_WORKLOAD_PREFIX,
    WORKLOAD_USES_ADVERSARY,
    WORKLOADS,
    default_pairs,
    make_adversary,
    make_workload,
    run_trial,
)

__all__ = [
    "ADVERSARY_FACTORIES",
    "MonteCarloReport",
    "MonteCarloRunner",
    "SCENARIO_WORKLOAD_PREFIX",
    "TrialResult",
    "TrialSpec",
    "WORKLOAD_USES_ADVERSARY",
    "WORKLOADS",
    "default_pairs",
    "make_adversary",
    "make_workload",
    "run_trial",
    "trial_seed",
]
