"""Ready-made trial factories for the headline Monte Carlo workloads.

Each workload is a module-level function ``TrialSpec -> TrialResult`` —
module-level so it stays picklable under every ``multiprocessing`` start
method — registered in :data:`WORKLOADS` under the name a spec carries.
All randomness flows from the spec's per-trial seed through one
:class:`~repro.rng.RngRegistry`, with the adversary's coins on their own
named stream (the paper's separation of honest and adversarial coins).

The three factories mirror the CLI demos:

* ``fame`` — f-AME pair delivery; success is Definition 1's
  ``t``-disruptability claim, with delivered-pair counts in the detail.
* ``groupkey`` — Section 6 group-key establishment; success is "all but
  ``t`` nodes adopt the group key", and the failed pairs are the leader
  spanner's unestablished DH exchanges.
* ``gauntlet`` — f-AME against every adversary in the gallery; success is
  the worst-case cover staying within ``t``, metrics merged across runs.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable

from ..adversary import (
    Adversary,
    NullAdversary,
    RandomJammer,
    ReactiveJammer,
    ScheduleAwareJammer,
    SpoofingAdversary,
    SweepJammer,
)
from ..crypto.dh import TEST_GROUP_128
from ..errors import ConfigurationError
from ..fame import run_fame
from ..groupkey import establish_group_key
from ..groupkey.spanner import leader_spanner
from ..radio.metrics import NetworkMetrics
from ..radio.network import RadioNetwork
from ..rng import RngRegistry
from .trial import TrialResult, TrialSpec

AdversaryFactory = Callable[[random.Random], Adversary]

ADVERSARY_FACTORIES: dict[str, AdversaryFactory] = {
    "null": lambda rng: NullAdversary(),
    "random": RandomJammer,
    "sweep": lambda rng: SweepJammer(),
    "reactive": ReactiveJammer,
    "spoofer": SpoofingAdversary,
    "schedule": lambda rng: ScheduleAwareJammer(rng, policy="prefix"),
}
"""The adversary gallery, keyed by CLI name (shared with ``python -m repro``)."""


def make_adversary(name: str, rng: random.Random) -> Adversary:
    """Instantiate a gallery adversary by name."""
    try:
        factory = ADVERSARY_FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown adversary {name!r}; pick from "
            f"{sorted(ADVERSARY_FACTORIES)}"
        ) from None
    return factory(rng)


def default_pairs(n: int, count: int) -> list[tuple[int, int]]:
    """The CLI's canonical AME pair set: ``(i, i + n//2)`` pairs."""
    return [(i, i + n // 2) for i in range(min(count, n // 2 - 1))]


WORKLOADS: dict[str, Callable[[TrialSpec], TrialResult]] = {}
"""Registered trial factories, keyed by ``TrialSpec.workload``."""

WORKLOAD_USES_ADVERSARY: dict[str, bool] = {}
"""Whether a workload honours ``TrialSpec.adversary``.

``gauntlet`` runs the whole gallery internally and ignores the field, so
sweeping it across an adversary axis would duplicate identical
configurations — :class:`repro.dispatch.sweep.SweepSpec` consults this
map to reject such grids.
"""


def register_workload(
    name: str, *, uses_adversary: bool = True
) -> Callable[[Callable[[TrialSpec], TrialResult]], Callable[[TrialSpec], TrialResult]]:
    """Class-less registry decorator for workload functions."""

    def register(fn: Callable[[TrialSpec], TrialResult]):
        WORKLOADS[name] = fn
        WORKLOAD_USES_ADVERSARY[name] = uses_adversary
        return fn

    return register


SCENARIO_WORKLOAD_PREFIX = "scenario:"
"""Workload-name prefix that maps onto the attack-scenario registry.

``scenario:NAME`` runs :func:`repro.scenarios.run_scenario` once per
trial at the trial's seed; success is "observed outcome == expected".
Registration is lazy (first resolution imports :mod:`repro.scenarios`)
so the experiments layer keeps no import edge to the serve stack, and
workers resolve the name themselves — only :class:`TrialSpec` /
:class:`TrialResult` ever cross the dispatch wire.
"""


def _register_scenario_workload(workload_name: str, scenario_name: str):
    from ..scenarios import encode_outcome, get_scenario, run_scenario

    get_scenario(scenario_name)  # typed error for unknown names, eagerly

    def scenario_trial(spec: TrialSpec) -> TrialResult:
        run = run_scenario(scenario_name, seed=spec.seed)
        return TrialResult(
            index=spec.index,
            seed=spec.seed,
            success=run.matched,
            failed_pairs=(),
            metrics=run.metrics,
            detail=(
                ("attack", run.attack),
                ("expected", encode_outcome(run.expected)),
                ("layer", run.layer),
                ("observed", encode_outcome(run.observed)),
                ("scenario", run.name),
            )
            + run.detail,
            # Scenario outcomes are typed, not pair-graphs: no cover
            # search to run.
            cover=0,
        )

    # Scenarios pin their own model and adversary: the spec's n/C/t and
    # adversary axes are ignored, so multi-adversary grids are rejected
    # exactly like the gauntlet workload.
    WORKLOADS[workload_name] = scenario_trial
    WORKLOAD_USES_ADVERSARY[workload_name] = False
    return scenario_trial


def make_workload(name: str) -> Callable[[TrialSpec], TrialResult]:
    """Resolve a workload name, registering scenario workloads lazily.

    The single lookup path shared by :func:`run_trial`, the Monte Carlo
    runner, and :class:`repro.dispatch.sweep.SweepSpec` validation —
    unknown names raise :class:`~repro.errors.ConfigurationError` (or
    its :class:`~repro.errors.ScenarioError` subtype for a bad
    ``scenario:`` suffix) everywhere, including inside worker processes.
    """
    fn = WORKLOADS.get(name)
    if fn is not None:
        return fn
    if name.startswith(SCENARIO_WORKLOAD_PREFIX):
        scenario_name = name[len(SCENARIO_WORKLOAD_PREFIX):]
        return _register_scenario_workload(name, scenario_name)
    raise ConfigurationError(
        f"unknown workload {name!r}; pick from {sorted(WORKLOADS)} "
        f"or {SCENARIO_WORKLOAD_PREFIX}NAME"
    )


def run_trial(spec: TrialSpec) -> TrialResult:
    """Execute one trial — the function shipped to worker processes.

    The trial's disruptability cover is computed here, in the worker, so
    the exact vertex-cover search parallelises with the trials instead of
    running serially in the aggregating parent.
    """
    fn = make_workload(spec.workload)
    result = fn(spec)
    if result.cover is None:
        result = dataclasses.replace(result, cover=result.disruptability())
    return result


def make_network(
    n: int, channels: int, t: int, adversary: Adversary
) -> RadioNetwork:
    """Network construction shared by the CLI demos and trial workloads:
    trace retention off unless the adversary needs history."""
    return RadioNetwork(
        n,
        channels,
        t,
        adversary=adversary,
        keep_trace=adversary.needs_history,
    )


def _network_for(spec: TrialSpec, adversary: Adversary) -> RadioNetwork:
    """A trial's network, built from its spec's model parameters."""
    return make_network(spec.n, spec.channels, spec.t, adversary)


@register_workload("fame")
def fame_delivery_trial(spec: TrialSpec) -> TrialResult:
    """f-AME pair delivery against one gallery adversary.

    Success is the paper's headline claim for a single run: the failed
    pairs admit a vertex cover of at most ``t`` (Definition 1).  Delivered
    counts, game moves, and divergence events ride along in the detail.
    """
    registry = RngRegistry(seed=spec.seed)
    adversary = make_adversary(spec.adversary, registry.stream("adversary"))
    network = _network_for(spec, adversary)
    pairs = default_pairs(spec.n, spec.pairs)
    result = run_fame(network, pairs, rng=registry.spawn("fame"))
    return TrialResult(
        index=spec.index,
        seed=spec.seed,
        success=result.is_d_disruptable(spec.t),
        failed_pairs=tuple(sorted(result.failed)),
        metrics=network.metrics,
        detail=(
            ("delivered", len(result.succeeded)),
            ("divergence_events", result.divergence_events),
            ("moves", result.moves),
            ("pairs", len(pairs)),
            ("rounds", result.rounds),
        ),
    )


@register_workload("groupkey")
def groupkey_trial(spec: TrialSpec) -> TrialResult:
    """Section 6 group-key establishment.

    Success is the paper's guarantee that all but ``t`` nodes adopt the
    group key.  The failed pairs are the leader-spanner exchanges that did
    not establish a pairwise key — Part 1's disruption graph — so the
    sweep's disruptability histogram measures the same Definition 1
    quantity as the f-AME workloads.
    """
    registry = RngRegistry(seed=spec.seed)
    adversary = make_adversary(spec.adversary, registry.stream("adversary"))
    network = _network_for(spec, adversary)
    result = establish_group_key(
        network, registry.spawn("groupkey"), group=TEST_GROUP_128
    )
    attempted = {
        frozenset(pair)
        for pair in leader_spanner(spec.n, spec.t, result.leaders)
    }
    failed = tuple(
        sorted(
            tuple(sorted(pair))
            for pair in attempted - result.pairwise_established
        )
    )
    holders = len(result.holders())
    return TrialResult(
        index=spec.index,
        seed=spec.seed,
        success=holders >= spec.n - spec.t,
        failed_pairs=failed,
        metrics=network.metrics,
        detail=(
            ("completed_leaders", len(result.completed_leaders)),
            ("holders", holders),
            ("non_holders", len(result.non_holders())),
            ("total_rounds", result.total_rounds),
        ),
    )


@register_workload("gauntlet", uses_adversary=False)
def gauntlet_trial(spec: TrialSpec) -> TrialResult:
    """f-AME against every adversary in the gallery, worst case reported.

    One fresh network per adversary; metrics are merged across the runs
    (exercising :meth:`NetworkMetrics.merge` inside a single trial).  The
    failed pairs reported are those of the adversary that achieved the
    largest cover, so the histogram tracks the worst case; ``spec.adversary``
    is ignored.
    """
    registry = RngRegistry(seed=spec.seed)
    pairs = default_pairs(spec.n, spec.pairs)
    merged = NetworkMetrics()
    worst_cover = -1
    worst_failed: tuple[tuple[int, int], ...] = ()
    covers: list[tuple[str, int]] = []
    for name in sorted(ADVERSARY_FACTORIES):
        adversary = make_adversary(name, registry.stream("adversary", name))
        network = _network_for(spec, adversary)
        result = run_fame(network, pairs, rng=registry.spawn("fame", name))
        cover = result.disruptability()
        covers.append((name, cover))
        if cover > worst_cover:
            worst_cover = cover
            worst_failed = tuple(sorted(result.failed))
        merged = merged.merge(network.metrics)
    return TrialResult(
        index=spec.index,
        seed=spec.seed,
        success=worst_cover <= spec.t,
        failed_pairs=worst_failed,
        metrics=merged,
        detail=(
            ("covers", tuple(covers)),
            ("worst_cover", worst_cover),
        ),
        # The cover of worst_failed is already known — don't make
        # run_trial redo the exact vertex-cover search.
        cover=max(worst_cover, 0),
    )
