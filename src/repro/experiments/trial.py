"""Trial descriptions and outcomes for the Monte Carlo harness.

The paper's guarantees are "with high probability" statements, so checking
them empirically means running many *independent* seeded executions and
aggregating.  A :class:`TrialSpec` describes exactly one such execution as a
plain picklable value — workload name, model parameters, and a per-trial
master seed derived via :meth:`repro.rng.RngRegistry.spawn` — so trials can
ship to ``multiprocessing`` workers as self-contained units of work.  A
:class:`TrialResult` is the symmetric return value: the headline success
flag, the failed pairs (the disruption graph's edges, Definition 1), and the
run's :class:`~repro.radio.metrics.NetworkMetrics` so counters can be merged
across trials regardless of which worker executed them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..analysis.disruption import disruptability
from ..radio.metrics import NetworkMetrics
from ..rng import derive_seed


def trial_seed(master_seed: int, index: int) -> int:
    """The per-trial master seed: ``RngRegistry(master).spawn("trial", i)``.

    Seeds are derived from the trial *index*, never from execution order,
    so a trial's randomness is identical whether it runs serially, in any
    worker process, or is replayed alone for debugging.  Computed as one
    direct :func:`repro.rng.derive_seed` hash (no intermediate registry);
    planners deriving many seeds at once should use the bulk
    :func:`repro.rng.derive_seeds` instead.
    """
    return derive_seed(master_seed, "spawn", "trial", index)


@dataclass(frozen=True)
class TrialSpec:
    """One independent seeded execution, as a picklable value.

    Attributes
    ----------
    workload:
        Key into :data:`repro.experiments.workloads.WORKLOADS`.
    index:
        Trial index within the sweep (also the result's sort key).
    seed:
        The per-trial master seed (see :func:`trial_seed`); the worker
        builds its :class:`~repro.rng.RngRegistry` from this alone.
    n, channels, t:
        The radio model parameters.
    pairs:
        AME pair-set size for the f-AME workloads.
    adversary:
        Adversary gallery name (see
        :data:`repro.experiments.workloads.ADVERSARY_FACTORIES`).
    options:
        Workload-specific extras as a sorted key/value tuple — kept a tuple
        (not a dict) so specs stay hashable and cheaply picklable.
    """

    workload: str
    index: int
    seed: int
    n: int = 20
    channels: int = 2
    t: int = 1
    pairs: int = 5
    adversary: str = "schedule"
    options: tuple[tuple[str, Any], ...] = ()

    def option(self, key: str, default: Any = None) -> Any:
        """Look up one workload-specific extra."""
        for name, value in self.options:
            if name == key:
                return value
        return default


@dataclass(frozen=True)
class TrialResult:
    """The outcome of one executed :class:`TrialSpec`.

    Attributes
    ----------
    index, seed:
        Echoed from the spec so results can be re-ordered and replayed.
    success:
        The workload's headline claim for this run (e.g. ``t``-disruptability
        for f-AME); the harness Wilson-estimates this rate.
    failed_pairs:
        The disruption graph's edges, canonically sorted — the input to the
        per-trial minimum-vertex-cover histogram.
    metrics:
        The run's radio counters, merged across trials via
        :meth:`~repro.radio.metrics.NetworkMetrics.merge`.
    detail:
        Workload-specific extras (sorted key/value tuple, like
        ``TrialSpec.options``).
    cover:
        Precomputed disruptability.  :func:`~repro.experiments.workloads.
        run_trial` fills this inside the worker so the exact (worst-case
        exponential) ``min_vertex_cover`` runs in parallel with the trials
        instead of serially in the aggregating parent; ``None`` means
        "compute on demand" (hand-built results in tests).
    """

    index: int
    seed: int
    success: bool
    failed_pairs: tuple[tuple[int, int], ...]
    metrics: NetworkMetrics
    detail: tuple[tuple[str, Any], ...] = ()
    cover: int | None = None

    def disruptability(self) -> int:
        """Minimum vertex cover of this trial's failed pairs (Definition 1)."""
        if self.cover is not None:
            return self.cover
        return disruptability(self.failed_pairs)

    def detail_dict(self) -> dict[str, Any]:
        """The ``detail`` extras as a dict."""
        return dict(self.detail)
