"""The Monte Carlo trial runner.

:class:`MonteCarloRunner` fans independent seeded trials over a
:class:`~repro.dispatch.backend.DispatchBackend` — serial in-process at
``workers <= 1``, a ``multiprocessing`` pool above that, or any backend
passed to :meth:`~MonteCarloRunner.run` (e.g. the socket worker pool) —
and folds the outcomes into one :class:`MonteCarloReport`:

* per-trial seeds come from ``RngRegistry(seed).spawn("trial", i)`` — a
  pure function of the master seed and the trial *index*, so seeds are
  identical regardless of worker count or scheduling order;
* counters merge via :meth:`~repro.radio.metrics.NetworkMetrics.merge`
  in trial-index order, so a parallel sweep's merged metrics are
  byte-identical to a serial one's;
* success rates get Wilson intervals (:func:`~repro.analysis.stats.
  empirical_rate`) and the ``1/n`` w.h.p. claim is checked with
  :func:`~repro.analysis.stats.meets_whp` only when the trial count is
  informative for it;
* per-trial disruptability (``min_vertex_cover`` over failed pairs,
  Definition 1) is histogrammed.

Workers re-derive everything from the picklable :class:`TrialSpec`, so the
runner works under ``fork``, ``forkserver``, and ``spawn`` start methods.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import TYPE_CHECKING, Any, Sequence

from ..analysis.disruption import disruptability_histogram
from ..analysis.stats import (
    RateEstimate,
    empirical_rate,
    meets_whp,
    min_informative_trials,
)
from ..errors import ConfigurationError
from ..radio.metrics import NetworkMetrics
from ..rng import derive_seeds
from .trial import TrialResult, TrialSpec
from .workloads import ADVERSARY_FACTORIES, make_workload

if TYPE_CHECKING:  # avoid a runtime cycle: dispatch imports workloads
    from ..dispatch.backend import DispatchBackend


@dataclass(frozen=True)
class MonteCarloReport:
    """Aggregated outcome of one Monte Carlo sweep.

    ``as_dict`` renders the JSON sweep report; dump it with
    ``json.dumps(report.as_dict(), sort_keys=True)`` and the
    ``merged_metrics`` section is byte-identical across worker counts.
    """

    workload: str
    seed: int
    workers: int
    chunksize: int
    n: int
    channels: int
    t: int
    pairs: int
    adversary: str
    results: tuple[TrialResult, ...]
    # Per-trial covers, index-aligned with ``results`` — computed once in
    # ``aggregate`` (min_vertex_cover is exact/exponential worst case) and
    # reused by both the histogram and ``as_dict``.
    trial_covers: tuple[int, ...]
    merged_metrics: NetworkMetrics
    success: RateEstimate
    disruptability_histogram: dict[int, int]
    whp_informative: bool
    whp_claim: bool | None

    @property
    def trials(self) -> int:
        """Number of executed trials."""
        return len(self.results)

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready report; deterministic given the sweep inputs."""
        hist = {
            str(cover): count
            for cover, count in sorted(self.disruptability_histogram.items())
        }
        covers = sorted(self.disruptability_histogram)
        total = sum(
            cover * count
            for cover, count in self.disruptability_histogram.items()
        )
        return {
            "workload": self.workload,
            "seed": self.seed,
            "trials": self.trials,
            "workers": self.workers,
            "chunksize": self.chunksize,
            "model": {
                "n": self.n,
                "channels": self.channels,
                "t": self.t,
                "pairs": self.pairs,
                "adversary": self.adversary,
            },
            "success_rate": {
                "successes": self.success.successes,
                "trials": self.success.trials,
                "point": self.success.point,
                "wilson_low": self.success.low,
                "wilson_high": self.success.high,
            },
            "whp": {
                "n": self.n,
                "target_failure_rate": 1.0 / self.n,
                "min_informative_trials": min_informative_trials(self.n),
                "informative": self.whp_informative,
                "claim_holds": self.whp_claim,
            },
            "disruptability": {
                "histogram": hist,
                "max": covers[-1] if covers else 0,
                "mean": total / self.trials if self.trials else 0.0,
            },
            "merged_metrics": asdict(self.merged_metrics),
            "trial_outcomes": [
                {
                    "index": r.index,
                    "seed": r.seed,
                    "success": r.success,
                    "disruptability": cover,
                }
                for r, cover in zip(self.results, self.trial_covers)
            ],
        }


class MonteCarloRunner:
    """Run ``trials`` independent seeded executions of one workload.

    Parameters
    ----------
    workload:
        Name from :data:`repro.experiments.workloads.WORKLOADS`.
    trials:
        Number of independent executions.
    seed:
        Master seed; trial ``i`` runs from
        ``RngRegistry(seed).spawn("trial", i)``.
    workers:
        Pool size; ``<= 1`` runs serially in-process (no pool at all),
        which is also the fallback for environments without working
        ``multiprocessing``.
    chunksize:
        Trials handed to a worker per dispatch.  ``None`` lets the
        backend derive one with :func:`~repro.dispatch.backend.
        auto_chunksize` from the batch it actually receives — large
        enough to amortise per-dispatch IPC even on small grids, small
        enough to keep the pool balanced when trial wall times vary.
    n, channels, t, pairs, adversary:
        Forwarded into every :class:`TrialSpec`.
    options:
        Workload-specific extras forwarded into every spec.
    """

    def __init__(
        self,
        workload: str,
        trials: int,
        *,
        seed: int = 0,
        workers: int = 1,
        chunksize: int | None = None,
        n: int = 20,
        channels: int = 2,
        t: int = 1,
        pairs: int = 5,
        adversary: str = "schedule",
        options: tuple[tuple[str, Any], ...] = (),
    ) -> None:
        # Resolves gallery workloads and lazily registers scenario:NAME
        # ones; unknown names raise ConfigurationError with the catalog.
        make_workload(workload)
        if adversary not in ADVERSARY_FACTORIES:
            raise ConfigurationError(
                f"unknown adversary {adversary!r}; pick from "
                f"{sorted(ADVERSARY_FACTORIES)}"
            )
        if trials < 1:
            raise ConfigurationError("trials must be >= 1")
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if chunksize is not None and chunksize < 1:
            raise ConfigurationError("chunksize must be >= 1 when given")
        self.workload = workload
        self.trials = trials
        self.seed = int(seed)
        self.workers = workers
        self.chunksize = chunksize
        self.n = n
        self.channels = channels
        self.t = t
        self.pairs = pairs
        self.adversary = adversary
        self.options = tuple(options)

    # ------------------------------------------------------------------

    @property
    def effective_chunksize(self) -> int:
        """The chunksize the multiprocess backend derives for this batch."""
        if self.chunksize is not None:
            return self.chunksize
        from ..dispatch.backend import auto_chunksize

        return auto_chunksize(self.trials, max(1, self.workers))

    def specs(self) -> list[TrialSpec]:
        """All trial specs, seeds derived from the trial index alone."""
        # Bulk derivation: one hashlib loop, no per-trial registries;
        # identical to RngRegistry(seed).spawn("trial", i).seed per index.
        seeds = derive_seeds(self.seed, "trial", count=self.trials)
        return [
            TrialSpec(
                workload=self.workload,
                index=i,
                seed=seeds[i],
                n=self.n,
                channels=self.channels,
                t=self.t,
                pairs=self.pairs,
                adversary=self.adversary,
                options=self.options,
            )
            for i in range(self.trials)
        ]

    def run(
        self, backend: "DispatchBackend | None" = None
    ) -> MonteCarloReport:
        """Execute every trial and aggregate.

        With no ``backend``, ``workers``/``chunksize`` pick the classic
        behaviour — in-process serial at ``workers <= 1``, a local
        ``multiprocessing`` pool otherwise.  Any
        :class:`~repro.dispatch.backend.DispatchBackend` (e.g. the socket
        worker pool) may be passed instead; the report is byte-identical
        regardless, because seeds derive from trial indices and the
        backend contract applies results at-most-once in index order.
        """
        # Imported here, not at module top: dispatch.backend imports this
        # package's workloads, so a top-level import would be circular.
        from ..dispatch.backend import default_backend

        specs = self.specs()
        if backend is None:
            # Hand the raw (possibly None) chunksize down: the backend
            # derives an effective one from the batch it actually runs,
            # which is this runner's full trial count — not a per-point
            # slice of some larger sweep.
            backend = default_backend(self.workers, chunksize=self.chunksize)
        return self.aggregate(backend.run(specs))

    def aggregate(self, results: Sequence[TrialResult]) -> MonteCarloReport:
        """Fold trial results (any order) into the deterministic report."""
        ordered = sorted(results, key=lambda r: r.index)
        if not ordered:
            raise ConfigurationError("cannot aggregate zero trial results")
        # merge promotes to the more derived operand type, so a plain base
        # seed is safe even when trials carry a metrics subclass, and the
        # report's counters are always a fresh object.
        merged = NetworkMetrics()
        for result in ordered:
            merged = merged.merge(result.metrics)
        successes = sum(1 for r in ordered if r.success)
        estimate = empirical_rate(successes, len(ordered))
        covers = tuple(r.disruptability() for r in ordered)
        histogram = disruptability_histogram(covers)
        # meets_whp owns the informative-trials gate (it raises below
        # min_informative_trials); an uninformative sweep reports None
        # rather than a vacuous confirmation.
        try:
            claim: bool | None = meets_whp(
                len(ordered) - successes, len(ordered), self.n
            )
            informative = True
        except ValueError:
            claim = None
            informative = False
        return MonteCarloReport(
            workload=self.workload,
            seed=self.seed,
            workers=self.workers,
            chunksize=self.effective_chunksize,
            n=self.n,
            channels=self.channels,
            t=self.t,
            pairs=self.pairs,
            adversary=self.adversary,
            results=tuple(ordered),
            trial_covers=covers,
            merged_metrics=merged,
            success=estimate,
            disruptability_histogram=histogram,
            whp_informative=informative,
            whp_claim=claim,
        )
