"""The greedy-removal strategy (Section 5.2).

Define, for the current game state ``G = (V, E)`` with starred set ``S``:

* ``P1 = { v ∈ V \\ S : (v, *) ∈ E }`` — unstarred sources;
* ``P2 = { (v, w) ∈ E : v, w ∉ P1 }`` — edges disjoint from ``P1`` (whose
  sources are therefore necessarily starred).

The strategy proposes any ``t+1`` items from ``P1 ∪ P2`` satisfying
Restrictions 1-4, built deterministically here so that every f-AME node —
running this code on an identical local game copy — derives the *same*
proposal (Invariant 1 of Theorem 6).  When no such proposal exists, Lemma 3
guarantees the graph's vertex cover is at most ``t`` and the game is won.

Two implementations share one selection routine:

* :func:`greedy_proposal` derives ``(P1, P2)`` from scratch — O(m log m)
  per call, fine for one-shot analysis and tests;
* :class:`GreedyPools` maintains ``(P1, P2)`` *incrementally* across a run.
  The game only ever moves one way — edges are removed, nodes are starred —
  so ``P1`` monotonically shrinks and ``P2`` monotonically gains exactly
  those edges whose endpoints dropped out of ``P1`` (minus removals).  Each
  grant updates the pools in amortised O(log m), which is what lets the
  f-AME driver propose in O(proposal) per move instead of re-deriving and
  re-sorting the pools from the whole edge set every move.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Iterable

from ..errors import ConfigurationError
from .graph import EdgeItem, GameGraph, Item, NodeItem


@dataclass(frozen=True)
class GreedyTermination:
    """Returned instead of a proposal when the greedy strategy has won.

    Carries the certificate Lemma 3 constructs: the cover
    ``V' = P1 ∪ {destinations of P2}`` of size at most ``t``.
    """

    cover: frozenset[int]


def proposal_pools(
    graph: GameGraph,
) -> tuple[list[int], list[tuple[int, int]]]:
    """Compute ``(P1, P2)`` for the current state, deterministically ordered.

    ``P1`` is sorted by node id; ``P2`` is sorted by (destination, source)
    so the destination-distinct selection below is canonical.
    """
    p1 = sorted(graph.sources() - graph.starred)
    p1_set = set(p1)
    p2 = sorted(
        (
            (v, w)
            for (v, w) in graph.edges
            if v not in p1_set and w not in p1_set
        ),
        key=lambda edge: (edge[1], edge[0]),
    )
    return p1, p2


def _select(
    p1: list[int],
    p2_by_dest: "Iterable[tuple[int, int]]",
    t: int,
    max_items: int | None,
) -> list[Item] | GreedyTermination:
    """The shared greedy selection over deterministically ordered pools.

    ``p1`` must be sorted by node id; ``p2_by_dest`` yields ``(dest,
    source)`` pairs in ascending order and is consumed lazily — when the
    proposal fills up, the remaining pool is never touched (which is what
    keeps :meth:`GreedyPools.proposal` O(proposal) per move).  The
    termination branch is only reachable after a full traversal, so
    ``seen_dests`` then holds every P2 destination and Lemma 3's cover can
    be built without re-iterating.
    """
    if max_items is None:
        max_items = t + 1
    if max_items < t + 1:
        raise ConfigurationError("max_items must be at least t + 1")
    items: list[Item] = [NodeItem(v) for v in p1[:max_items]]
    seen_dests: set[int] = set()
    if len(items) < max_items:
        for w, v in p2_by_dest:
            if w in seen_dests:
                continue
            items.append(EdgeItem(v, w))
            seen_dests.add(w)
            if len(items) == max_items:
                break
    if len(items) >= t + 1:
        return items
    # Termination: build Lemma 3's cover V' = P1 ∪ {dests of P2}.
    cover = set(p1) | seen_dests
    return GreedyTermination(cover=frozenset(cover))


def greedy_proposal(
    graph: GameGraph, t: int, *, max_items: int | None = None
) -> list[Item] | GreedyTermination:
    """One greedy-removal move: a legal proposal, or the termination proof.

    The construction mirrors Lemma 3's existence argument:

    * take up to ``max_items`` nodes from ``P1``;
    * fill the remainder with destination-distinct edges from ``P2``
      (one edge per destination, smallest source first).

    ``max_items`` defaults to the paper's ``t + 1``; the multi-channel
    regimes of Section 5.5 pass the larger channel budget (``2t`` or
    ``C/t``), collecting as many items as available.  Termination happens
    when fewer than ``t + 1`` items are collectable: then no legal proposal
    exists at all (Lemma 3), and the returned :class:`GreedyTermination`
    carries the ``<= t`` cover certificate.
    """
    p1, p2 = proposal_pools(graph)
    return _select(p1, ((w, v) for v, w in p2), t, max_items)


class GreedyPools:
    """Incrementally-maintained ``(P1, P2)`` pools bound to one game graph.

    Wraps a :class:`~repro.game.graph.GameGraph` and mirrors every referee
    grant into the pools, so :meth:`proposal` never rescans the edge set.
    Route all grants through :meth:`star` / :meth:`remove_edge` — they
    mutate the underlying graph *and* the pools together.

    Correctness rests on the game's monotonicity: ``P1`` (unstarred
    sources) only ever loses members — a vertex leaves when its last
    outgoing edge is granted or when it is starred, and nothing ever
    re-adds an edge or un-stars a node.  Consequently an edge enters ``P2``
    at most once (the moment its second endpoint leaves ``P1``) and leaves
    at most once (its own removal), giving amortised O(log m) per grant.
    """

    def __init__(self, graph: GameGraph) -> None:
        self.graph = graph
        self._out_degree: dict[int, int] = {}
        self._incident: dict[int, set[tuple[int, int]]] = {}
        for v, w in graph.edges:
            self._out_degree[v] = self._out_degree.get(v, 0) + 1
            self._incident.setdefault(v, set()).add((v, w))
            self._incident.setdefault(w, set()).add((v, w))
        p1, p2 = proposal_pools(graph)
        self._p1: list[int] = p1
        self._p1_set: set[int] = set(p1)
        # P2 keyed (dest, source): the canonical selection order.
        self._p2: list[tuple[int, int]] = [(w, v) for v, w in p2]
        self._p2_set: set[tuple[int, int]] = set(p2)

    # -- grant mirroring ------------------------------------------------

    def star(self, node: int) -> None:
        """Grant a node item: star it on the graph and update the pools."""
        self.graph.star(node)
        if node in self._p1_set:
            self._drop_from_p1(node)

    def remove_edge(self, edge: tuple[int, int]) -> None:
        """Grant an edge item: remove it from the graph and the pools."""
        self.graph.remove_edge(edge)
        v, w = edge
        self._incident[v].discard(edge)
        self._incident[w].discard(edge)
        if edge in self._p2_set:
            self._p2_set.remove(edge)
            # Bisect-backed removal: the pool is sorted by (dest, source),
            # so the exact entry is located in O(log |P2|) even inside a
            # run of equal-destination entries (where list.remove would
            # scan the whole duplicate-priority run before shifting).
            self._p2.pop(bisect_left(self._p2, (w, v)))
        self._out_degree[v] -= 1
        if self._out_degree[v] == 0 and v in self._p1_set:
            self._drop_from_p1(v)

    def _drop_from_p1(self, vertex: int) -> None:
        """``vertex`` stops being an unstarred source; promote its edges."""
        self._p1_set.remove(vertex)
        self._p1.pop(bisect_left(self._p1, vertex))
        for edge in self._incident.get(vertex, ()):
            a, b = edge
            if (
                a not in self._p1_set
                and b not in self._p1_set
                and edge not in self._p2_set
            ):
                self._p2_set.add(edge)
                insort(self._p2, (b, a))

    # -- queries --------------------------------------------------------

    def pools(self) -> tuple[list[int], list[tuple[int, int]]]:
        """Current ``(P1, P2)`` in the same order as :func:`proposal_pools`."""
        return list(self._p1), [(v, w) for w, v in self._p2]

    def proposal(
        self, t: int, *, max_items: int | None = None
    ) -> list[Item] | GreedyTermination:
        """The greedy move for the current state, from the live pools.

        Byte-for-byte identical to ``greedy_proposal(self.graph, t, ...)``
        (the engine-equivalence tests assert exactly that), without the
        per-move pool derivation or any copy of the pools.
        """
        return _select(self._p1, self._p2, t, max_items)
