"""The greedy-removal strategy (Section 5.2).

Define, for the current game state ``G = (V, E)`` with starred set ``S``:

* ``P1 = { v ∈ V \\ S : (v, *) ∈ E }`` — unstarred sources;
* ``P2 = { (v, w) ∈ E : v, w ∉ P1 }`` — edges disjoint from ``P1`` (whose
  sources are therefore necessarily starred).

The strategy proposes any ``t+1`` items from ``P1 ∪ P2`` satisfying
Restrictions 1-4, built deterministically here so that every f-AME node —
running this code on an identical local game copy — derives the *same*
proposal (Invariant 1 of Theorem 6).  When no such proposal exists, Lemma 3
guarantees the graph's vertex cover is at most ``t`` and the game is won.
"""

from __future__ import annotations

from dataclasses import dataclass

from .graph import EdgeItem, GameGraph, Item, NodeItem


@dataclass(frozen=True)
class GreedyTermination:
    """Returned instead of a proposal when the greedy strategy has won.

    Carries the certificate Lemma 3 constructs: the cover
    ``V' = P1 ∪ {destinations of P2}`` of size at most ``t``.
    """

    cover: frozenset[int]


def proposal_pools(
    graph: GameGraph,
) -> tuple[list[int], list[tuple[int, int]]]:
    """Compute ``(P1, P2)`` for the current state, deterministically ordered.

    ``P1`` is sorted by node id; ``P2`` is sorted by (destination, source)
    so the destination-distinct selection below is canonical.
    """
    p1 = sorted(graph.sources() - graph.starred)
    p1_set = set(p1)
    p2 = sorted(
        (
            (v, w)
            for (v, w) in graph.edges
            if v not in p1_set and w not in p1_set
        ),
        key=lambda edge: (edge[1], edge[0]),
    )
    return p1, p2


def greedy_proposal(
    graph: GameGraph, t: int, *, max_items: int | None = None
) -> list[Item] | GreedyTermination:
    """One greedy-removal move: a legal proposal, or the termination proof.

    The construction mirrors Lemma 3's existence argument:

    * take up to ``max_items`` nodes from ``P1``;
    * fill the remainder with destination-distinct edges from ``P2``
      (one edge per destination, smallest source first).

    ``max_items`` defaults to the paper's ``t + 1``; the multi-channel
    regimes of Section 5.5 pass the larger channel budget (``2t`` or
    ``C/t``), collecting as many items as available.  Termination happens
    when fewer than ``t + 1`` items are collectable: then no legal proposal
    exists at all (Lemma 3), and the returned :class:`GreedyTermination`
    carries the ``<= t`` cover certificate.
    """
    if max_items is None:
        max_items = t + 1
    if max_items < t + 1:
        raise ValueError("max_items must be at least t + 1")
    p1, p2 = proposal_pools(graph)
    items: list[Item] = [NodeItem(v) for v in p1[:max_items]]
    chosen_dests: set[int] = set()
    if len(items) < max_items:
        for v, w in p2:
            if w in chosen_dests:
                continue
            items.append(EdgeItem(v, w))
            chosen_dests.add(w)
            if len(items) == max_items:
                break
    if len(items) >= t + 1:
        return items
    # Termination: build Lemma 3's cover V' = P1 ∪ {dests of P2}.
    cover = set(p1) | {w for _, w in p2}
    return GreedyTermination(cover=frozenset(cover))
