"""The game engine: play a strategy against a referee and verify the win.

:class:`StarredEdgeRemovalGame` drives the loop of Section 5.1 — propose,
referee, apply — validating every proposal against Restrictions 1-4 and every
grant against the "non-empty subset" rule, then certifies termination by
checking the vertex-cover condition with the exact solver.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..analysis.vertex_cover import min_vertex_cover
from ..errors import GameRuleViolation
from .graph import EdgeItem, GameGraph, Item, NodeItem
from .greedy import GreedyTermination, greedy_proposal
from .referees import Referee
from .rules import check_proposal

Strategy = Callable[[GameGraph, int], "list[Item] | GreedyTermination"]


@dataclass
class GameResult:
    """Outcome of a completed game.

    Attributes
    ----------
    moves:
        Number of proposal/grant exchanges played.
    final_graph:
        The graph at termination (edges never granted).
    claimed_cover:
        The strategy's termination certificate (Lemma 3's ``V'``), if the
        strategy produced one.
    verified_cover:
        An exact minimum vertex cover of the final edge set, computed by the
        engine independently of the strategy's claim.
    stars_granted, edges_granted:
        Totals over the whole game.
    history:
        Per-move ``(proposal, granted)`` pairs, for inspection.
    """

    moves: int
    final_graph: GameGraph
    claimed_cover: frozenset[int] | None
    verified_cover: frozenset[int]
    stars_granted: int = 0
    edges_granted: int = 0
    history: list[tuple[list[Item], list[Item]]] = field(default_factory=list)

    @property
    def cover_size(self) -> int:
        """Size of the exact minimum vertex cover at termination."""
        return len(self.verified_cover)


class StarredEdgeRemovalGame:
    """One playable instance of the (G, t)-starred-edge removal game."""

    def __init__(self, graph: GameGraph, t: int) -> None:
        if t < 0:
            raise GameRuleViolation("t must be non-negative")
        self.graph = graph.copy()
        self.t = t
        self.moves = 0
        self.stars_granted = 0
        self.edges_granted = 0

    # ------------------------------------------------------------------

    def apply_grant(self, granted: Sequence[Item], proposal: Sequence[Item]) -> None:
        """Apply a referee response: star nodes, remove edges.

        Validates the grant is a non-empty subset of the proposal.
        """
        if not granted:
            raise GameRuleViolation("referee must grant a non-empty subset")
        proposal_set = set(proposal)
        for item in granted:
            if item not in proposal_set:
                raise GameRuleViolation(
                    f"granted item {item!r} was not proposed"
                )
        for item in granted:
            if isinstance(item, NodeItem):
                self.graph.star(item.node)
                self.stars_granted += 1
            elif isinstance(item, EdgeItem):
                self.graph.remove_edge(item.pair)
                self.edges_granted += 1
        self.moves += 1

    def play(
        self,
        referee: Referee,
        strategy: Strategy = greedy_proposal,
        *,
        max_moves: int | None = None,
        record_history: bool = False,
    ) -> GameResult:
        """Run the full game loop until the strategy terminates.

        ``max_moves`` guards against non-terminating (buggy) strategies; the
        greedy strategy needs at most ``3 |E|`` moves (Theorem 4: ``|E|``
        removals plus at most ``2 |E|`` stars).
        """
        if max_moves is None:
            max_moves = 3 * len(self.graph.edges) + self.t + 2
        history: list[tuple[list[Item], list[Item]]] = []
        while True:
            move = strategy(self.graph, self.t)
            if isinstance(move, GreedyTermination):
                verified = frozenset(min_vertex_cover(self.graph.edges))
                return GameResult(
                    moves=self.moves,
                    final_graph=self.graph,
                    claimed_cover=move.cover,
                    verified_cover=verified,
                    stars_granted=self.stars_granted,
                    edges_granted=self.edges_granted,
                    history=history,
                )
            check_proposal(self.graph, move, self.t)
            granted = referee.grant(self.graph, move, self.t)
            self.apply_grant(granted, move)
            if record_history:
                history.append((list(move), list(granted)))
            if self.moves > max_moves:
                raise GameRuleViolation(
                    f"game exceeded {max_moves} moves; strategy appears "
                    "not to terminate"
                )
