"""Referee strategies for the starred-edge removal game.

The referee models the adversary's jamming decision: of the ``t+1`` proposed
items (channels), the adversary can suppress ``t``, so the referee grants a
non-empty subset — in the radio simulation, exactly the items whose channels
survived.  Playing the abstract game against different referees lets us
measure the strategy's move count in isolation (experiment E1).
"""

from __future__ import annotations

import abc
import random
from typing import Sequence

from ..errors import ConfigurationError, GameRuleViolation
from .graph import EdgeItem, GameGraph, Item, NodeItem


class Referee(abc.ABC):
    """Chooses the granted subset of a legal proposal."""

    @abc.abstractmethod
    def grant(self, graph: GameGraph, proposal: Sequence[Item], t: int) -> list[Item]:
        """Return a non-empty subset of ``proposal``."""


class GenerousReferee(Referee):
    """Grants the whole proposal — the no-adversary case."""

    def grant(self, graph: GameGraph, proposal: Sequence[Item], t: int) -> list[Item]:
        return list(proposal)


class SingleGrantReferee(Referee):
    """Grants exactly one item by position — the full-budget jammer.

    ``position`` may be ``"first"`` or ``"last"``; it corresponds to the
    schedule-aware jammer's ``suffix``/``prefix`` victim policies.
    """

    def __init__(self, position: str = "last") -> None:
        if position not in ("first", "last"):
            raise ConfigurationError("position must be 'first' or 'last'")
        self._position = position

    def grant(self, graph: GameGraph, proposal: Sequence[Item], t: int) -> list[Item]:
        if not proposal:
            raise GameRuleViolation("cannot grant from an empty proposal")
        return [proposal[0] if self._position == "first" else proposal[-1]]


class AdversarialReferee(Referee):
    """Grants the single item heuristically worst for the player.

    Preference order: a node item (starring defers edge removal), then the
    edge whose removal leaves the most remaining edges incident to its
    endpoints (removing it helps the player least).  This is the strongest
    single-grant heuristic we found; Theorem 4's bound holds regardless.
    """

    def grant(self, graph: GameGraph, proposal: Sequence[Item], t: int) -> list[Item]:
        if not proposal:
            raise GameRuleViolation("cannot grant from an empty proposal")
        nodes = [item for item in proposal if isinstance(item, NodeItem)]
        if nodes:
            return [nodes[0]]
        edges = [item for item in proposal if isinstance(item, EdgeItem)]

        def residual_degree(edge: EdgeItem) -> int:
            return sum(
                1
                for (v, w) in graph.edges
                if edge.source in (v, w) or edge.dest in (v, w)
            )

        best = max(edges, key=lambda e: (residual_degree(e), e.pair))
        return [best]


class RandomReferee(Referee):
    """Grants a uniformly random non-empty subset — a chaotic middle ground."""

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng

    def grant(self, graph: GameGraph, proposal: Sequence[Item], t: int) -> list[Item]:
        if not proposal:
            raise GameRuleViolation("cannot grant from an empty proposal")
        k = self._rng.randint(1, len(proposal))
        return self._rng.sample(list(proposal), k)
