"""The (G, t)-starred-edge removal game (Section 5.1) and its solvers.

The game abstracts f-AME's scheduling problem away from the radio network:

* a *player* proposes ``t+1`` items — nodes of ``V`` or edges of ``E`` —
  subject to Restrictions 1-4;
* a *referee* (standing in for the adversary, who will jam ``t`` of the
  ``t+1`` channels) grants a non-empty subset;
* granted nodes join the starred set ``S`` (they have recruited surrogates);
  granted edges leave ``E`` (their message got through);
* the player wins once the remaining graph has a vertex cover of size
  ``<= t``.

The :func:`~repro.game.greedy.greedy_proposal` strategy (Section 5.2) wins in
``O(|E|)`` moves against every referee (Theorem 4), and its termination
certifies the cover bound (Lemma 3).
"""

from .graph import EdgeItem, GameGraph, Item, NodeItem
from .rules import check_proposal, is_legal_proposal
from .greedy import (
    GreedyPools,
    GreedyTermination,
    greedy_proposal,
    proposal_pools,
)
from .engine import GameResult, StarredEdgeRemovalGame
from .referees import (
    AdversarialReferee,
    GenerousReferee,
    RandomReferee,
    Referee,
    SingleGrantReferee,
)

__all__ = [
    "AdversarialReferee",
    "EdgeItem",
    "GameGraph",
    "GameResult",
    "GenerousReferee",
    "GreedyPools",
    "GreedyTermination",
    "Item",
    "NodeItem",
    "RandomReferee",
    "Referee",
    "SingleGrantReferee",
    "StarredEdgeRemovalGame",
    "check_proposal",
    "greedy_proposal",
    "is_legal_proposal",
    "proposal_pools",
]
