"""Game state: a directed graph plus the starred set ``S``.

Items of a proposal are :class:`NodeItem` or :class:`EdgeItem`; keeping them
as small frozen dataclasses (rather than bare ints/tuples) makes proposals
self-describing and prevents a node id from being confused with an edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Union

from ..errors import ConfigurationError


@dataclass(frozen=True)
class NodeItem:
    """A proposal item asking to *star* ``node`` (recruit surrogates)."""

    node: int

    def __repr__(self) -> str:
        return f"N({self.node})"


@dataclass(frozen=True)
class EdgeItem:
    """A proposal item asking to deliver the edge ``source -> dest``."""

    source: int
    dest: int

    @property
    def pair(self) -> tuple[int, int]:
        """The edge as an ordered pair."""
        return (self.source, self.dest)

    def __repr__(self) -> str:
        return f"E({self.source}->{self.dest})"


Item = Union[NodeItem, EdgeItem]


_FP_SEED = 0x5EED_F1A9
_FP_STAR = 1
_FP_REMOVE = 2


def initial_fingerprint(
    state_key: tuple[tuple[tuple[int, int], ...], tuple[int, ...]]
) -> int:
    """Fingerprint of a game state with no move history yet.

    Built from int tuples only, so the value is stable across processes
    (``PYTHONHASHSEED`` perturbs str/bytes hashing, not int tuples).
    """
    return hash((_FP_SEED, state_key))


def advance_fingerprint(fingerprint: int, token: tuple[int, ...]) -> int:
    """Chain one granted operation into a running state fingerprint.

    Tokens come from :func:`star_token` / :func:`remove_edge_token`.  The
    chaining is order-sensitive on purpose: two replicas agree on the
    fingerprint iff they applied the same grants in the same order, which
    is exactly Invariant 1 of Theorem 6 (all nodes advance their local game
    copy in lockstep).  Folding one grant is O(1) — replicas no longer need
    full sorted state snapshots to certify agreement.
    """
    return hash((fingerprint,) + token)


def star_token(node: int) -> tuple[int, ...]:
    """Fingerprint token for granting (starring) ``node``."""
    return (_FP_STAR, node)


def remove_edge_token(edge: tuple[int, int]) -> tuple[int, ...]:
    """Fingerprint token for granting (removing) ``edge``."""
    return (_FP_REMOVE, edge[0], edge[1])


@dataclass
class GameGraph:
    """Mutable state of one starred-edge removal game.

    Attributes
    ----------
    vertices:
        The fixed vertex set ``V`` (node ids).
    edges:
        The current edge set ``E`` — shrinks as the referee grants edges.
    starred:
        The starred set ``S`` — grows as the referee grants nodes.
    fingerprint:
        Incrementally-maintained hash of the starting state plus the full
        grant history, advanced in O(1) per :meth:`star` / :meth:`remove_edge`.
        Replicas that start from the same state and apply the same grants in
        the same order hold equal fingerprints; comparing them replaces the
        O(m log m) :meth:`state_key` snapshot when asserting Invariant 1.
    """

    vertices: frozenset[int]
    edges: set[tuple[int, int]] = field(default_factory=set)
    starred: set[int] = field(default_factory=set)
    # compare=False: the fingerprint encodes grant *history*, not state —
    # two graphs in the same state via different histories must still be ==.
    fingerprint: int | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.fingerprint is None:
            self.fingerprint = initial_fingerprint(self.state_key())

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple[int, int]], vertices: Iterable[int] | None = None
    ) -> "GameGraph":
        """Build a game graph from ordered pairs, inferring vertices.

        Raises :class:`~repro.errors.ConfigurationError` for self-loops or
        edges touching vertices outside an explicitly-given vertex set.
        """
        edge_set = set()
        inferred: set[int] = set()
        for v, w in pairs:
            if v == w:
                raise ConfigurationError(f"self-edge ({v}, {w}) not allowed")
            edge_set.add((v, w))
            inferred.update((v, w))
        vertex_set = frozenset(vertices) if vertices is not None else frozenset(inferred)
        if not inferred <= vertex_set:
            raise ConfigurationError(
                f"edges touch vertices outside V: {sorted(inferred - vertex_set)}"
            )
        return cls(vertices=vertex_set, edges=edge_set)

    def copy(self) -> "GameGraph":
        """Deep copy (the frozen vertex set is shared)."""
        return GameGraph(
            vertices=self.vertices,
            edges=set(self.edges),
            starred=set(self.starred),
            fingerprint=self.fingerprint,
        )

    # ------------------------------------------------------------------

    def sources(self) -> set[int]:
        """Vertices that are the source of at least one remaining edge."""
        return {v for v, _ in self.edges}

    def remove_edge(self, edge: tuple[int, int]) -> None:
        """Remove a granted edge; raises KeyError if absent."""
        self.edges.remove(edge)
        self.fingerprint = advance_fingerprint(
            self.fingerprint, remove_edge_token(edge)
        )

    def star(self, node: int) -> None:
        """Add a granted node to ``S``."""
        if node not in self.vertices:
            raise ConfigurationError(f"cannot star unknown vertex {node}")
        self.starred.add(node)
        self.fingerprint = advance_fingerprint(
            self.fingerprint, star_token(node)
        )

    def state_key(self) -> tuple[tuple[tuple[int, int], ...], tuple[int, ...]]:
        """Canonical hashable snapshot — used to assert Invariant 1 of
        Theorem 6 (all nodes hold identical game states)."""
        return (tuple(sorted(self.edges)), tuple(sorted(self.starred)))
