"""Game state: a directed graph plus the starred set ``S``.

Items of a proposal are :class:`NodeItem` or :class:`EdgeItem`; keeping them
as small frozen dataclasses (rather than bare ints/tuples) makes proposals
self-describing and prevents a node id from being confused with an edge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Union

from ..errors import ConfigurationError


@dataclass(frozen=True)
class NodeItem:
    """A proposal item asking to *star* ``node`` (recruit surrogates)."""

    node: int

    def __repr__(self) -> str:
        return f"N({self.node})"


@dataclass(frozen=True)
class EdgeItem:
    """A proposal item asking to deliver the edge ``source -> dest``."""

    source: int
    dest: int

    @property
    def pair(self) -> tuple[int, int]:
        """The edge as an ordered pair."""
        return (self.source, self.dest)

    def __repr__(self) -> str:
        return f"E({self.source}->{self.dest})"


Item = Union[NodeItem, EdgeItem]


@dataclass
class GameGraph:
    """Mutable state of one starred-edge removal game.

    Attributes
    ----------
    vertices:
        The fixed vertex set ``V`` (node ids).
    edges:
        The current edge set ``E`` — shrinks as the referee grants edges.
    starred:
        The starred set ``S`` — grows as the referee grants nodes.
    """

    vertices: frozenset[int]
    edges: set[tuple[int, int]] = field(default_factory=set)
    starred: set[int] = field(default_factory=set)

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple[int, int]], vertices: Iterable[int] | None = None
    ) -> "GameGraph":
        """Build a game graph from ordered pairs, inferring vertices.

        Raises :class:`~repro.errors.ConfigurationError` for self-loops or
        edges touching vertices outside an explicitly-given vertex set.
        """
        edge_set = set()
        inferred: set[int] = set()
        for v, w in pairs:
            if v == w:
                raise ConfigurationError(f"self-edge ({v}, {w}) not allowed")
            edge_set.add((v, w))
            inferred.update((v, w))
        vertex_set = frozenset(vertices) if vertices is not None else frozenset(inferred)
        if not inferred <= vertex_set:
            raise ConfigurationError(
                f"edges touch vertices outside V: {sorted(inferred - vertex_set)}"
            )
        return cls(vertices=vertex_set, edges=edge_set)

    def copy(self) -> "GameGraph":
        """Deep copy (the frozen vertex set is shared)."""
        return GameGraph(
            vertices=self.vertices,
            edges=set(self.edges),
            starred=set(self.starred),
        )

    # ------------------------------------------------------------------

    def sources(self) -> set[int]:
        """Vertices that are the source of at least one remaining edge."""
        return {v for v, _ in self.edges}

    def remove_edge(self, edge: tuple[int, int]) -> None:
        """Remove a granted edge; raises KeyError if absent."""
        self.edges.remove(edge)

    def star(self, node: int) -> None:
        """Add a granted node to ``S``."""
        if node not in self.vertices:
            raise ConfigurationError(f"cannot star unknown vertex {node}")
        self.starred.add(node)

    def state_key(self) -> tuple[tuple[tuple[int, int], ...], tuple[int, ...]]:
        """Canonical hashable snapshot — used to assert Invariant 1 of
        Theorem 6 (all nodes hold identical game states)."""
        return (tuple(sorted(self.edges)), tuple(sorted(self.starred)))
