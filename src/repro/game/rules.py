"""Proposal Restrictions 1-4 of the starred-edge removal game (Section 5.1).

A legal proposal ``P`` must satisfy:

1. ``P`` has exactly ``t + 1`` items, each a node of ``V`` or an edge of ``E``;
2. every node in ``P`` is unique — it appears in no edge of ``P`` as source
   or destination (and node items are pairwise distinct);
3. no two edges in ``P`` share a destination;
4. two edges in ``P`` share a source ``v`` only if ``v ∈ S``.

:func:`check_proposal` raises :class:`~repro.errors.GameRuleViolation` with a
message naming the violated restriction; :func:`is_legal_proposal` is the
boolean convenience wrapper.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import GameRuleViolation
from .graph import EdgeItem, GameGraph, Item, NodeItem


def check_proposal(
    graph: GameGraph,
    items: Sequence[Item],
    t: int,
    *,
    max_items: int | None = None,
) -> None:
    """Validate ``items`` against Restrictions 1-4; raise on violation.

    ``max_items`` generalises Restriction 1 for the multi-channel regimes of
    Section 5.5: with ``C`` usable channels a proposal may hold up to ``C``
    items, and any proposal of at least ``t + 1`` items still forces the
    referee (who can jam only ``t`` channels) to grant something.  The paper's
    base game is the default ``max_items = t + 1``.
    """
    # Restriction 1: size and membership.
    if max_items is None:
        max_items = t + 1
    if not t + 1 <= len(items) <= max_items:
        expected = (
            f"exactly t+1={t + 1}"
            if max_items == t + 1
            else f"between t+1={t + 1} and {max_items}"
        )
        raise GameRuleViolation(
            f"Restriction 1: proposal must have {expected} items, "
            f"got {len(items)}"
        )
    node_items: list[NodeItem] = []
    edge_items: list[EdgeItem] = []
    for item in items:
        if isinstance(item, NodeItem):
            if item.node not in graph.vertices:
                raise GameRuleViolation(
                    f"Restriction 1: node {item.node} is not in V"
                )
            node_items.append(item)
        elif isinstance(item, EdgeItem):
            if item.pair not in graph.edges:
                raise GameRuleViolation(
                    f"Restriction 1: edge {item.pair} is not in E"
                )
            edge_items.append(item)
        else:
            raise GameRuleViolation(f"Restriction 1: unknown item {item!r}")

    # Restriction 2: node uniqueness and disjointness from proposed edges.
    node_ids = [item.node for item in node_items]
    if len(set(node_ids)) != len(node_ids):
        raise GameRuleViolation("Restriction 2: duplicate node items")
    edge_endpoints = {v for e in edge_items for v in e.pair}
    overlapping = set(node_ids) & edge_endpoints
    if overlapping:
        raise GameRuleViolation(
            f"Restriction 2: nodes {sorted(overlapping)} also appear in "
            "proposed edges"
        )
    if len(set(item.pair for item in edge_items)) != len(edge_items):
        raise GameRuleViolation("Restriction 2: duplicate edge items")

    # Restriction 3: destination-disjoint edges.
    dests = [e.dest for e in edge_items]
    if len(set(dests)) != len(dests):
        raise GameRuleViolation(
            "Restriction 3: two proposed edges share a destination"
        )

    # Restriction 4: shared sources must be starred.
    source_counts: dict[int, int] = {}
    for e in edge_items:
        source_counts[e.source] = source_counts.get(e.source, 0) + 1
    for source, count in source_counts.items():
        if count > 1 and source not in graph.starred:
            raise GameRuleViolation(
                f"Restriction 4: source {source} repeats but is not starred"
            )


def is_legal_proposal(
    graph: GameGraph,
    items: Sequence[Item],
    t: int,
    *,
    max_items: int | None = None,
) -> bool:
    """True iff ``items`` satisfies Restrictions 1-4."""
    try:
        check_proposal(graph, items, t, max_items=max_items)
    except GameRuleViolation:
        return False
    return True
