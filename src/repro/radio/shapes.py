"""Reusable compiled-schedule geometry: the schedule-shape cache.

The feedback routines compile their oblivious repetition loops into
:class:`~repro.radio.network.RoundSchedule` batches.  Long-lived callers —
one f-AME run, the no-surrogate baseline, a bench loop — invoke them
hundreds of times with identical ``(participants, channels, slots,
repetitions)`` geometry, and before this cache every invocation rebuilt the
same per-round listener buckets, round metadata, transmitter templates and
listener-stream tables from scratch.

A :class:`ScheduleShapeCache` owns those *shape* objects and hands them
back across invocations:

* :meth:`buckets` — a :class:`BucketBlock` of pre-allocated per-channel
  listener lists for a whole batch of rounds, cleared in place on reuse
  (the listener groups are indexed by channel *position*, so the hot
  transpose from hop matrices avoids a dict hash per listener-round);
* :meth:`meta` — interned immutable :class:`RoundMeta` objects;
* :meth:`streams` — the listener stream table for a ``(namespace, label,
  nodes)`` key, short-circuiting one registry key construction + lookup
  per listener per invocation (the stream objects and their state remain
  the registry's own; a different registry under the same key rebuilds);
* :meth:`memo` — a bounded generic memo used for static transmitter
  templates (the per-slot rank→channel maps live inside the cached
  templates, so rank maps are reused along with them).

Everything cached here is shape, never content: buckets are cleared before
reuse, metadata and template frames are immutable, and nothing observable
changes whether a cache is shared, fresh per invocation, or absent — the
feedback equivalence gauntlets assert exactly that.  Consumers must not
retain a listener group past the invocation that produced it (the same
rule the engine's reusable :class:`AdversaryView` already imposes).
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Sequence

from ..rng import RngRegistry
from .network import RoundMeta

_MEMO_CAP = 1024
"""Entries per memo table before it is dropped wholesale (callers with
unbounded key churn — e.g. per-move witness templates — stay bounded)."""


class BucketBlock:
    """``rounds`` pre-allocated channel→listeners buckets over a fixed
    channel tuple, reusable in place.

    ``rows[i]`` is round ``i``'s buckets indexed by channel *position*
    (the hot fill path); ``listens[i]`` is the same lists viewed as the
    channel→listeners dict a :class:`CompiledRound` expects, pre-seeded
    with every channel in order; ``index`` maps channel id → position.
    """

    __slots__ = ("channels", "rows", "listens", "index")

    def __init__(self, channels: Sequence[int], rounds: int) -> None:
        self.channels = tuple(channels)
        self.rows: list[list[list[int]]] = [
            [[] for _ in self.channels] for _ in range(rounds)
        ]
        self.listens: list[dict[int, list[int]]] = [
            dict(zip(self.channels, row)) for row in self.rows
        ]
        self.index: dict[int, int] = {
            c: i for i, c in enumerate(self.channels)
        }

    def reset(self) -> None:
        """Clear every bucket in place (the dict views stay valid)."""
        for row in self.rows:
            for bucket in row:
                bucket.clear()


class ScheduleShapeCache:
    """Per-caller cache of compiled-schedule shape (see module docstring).

    Instances are cheap; the feedback routines create an ephemeral one per
    invocation when the caller passes none, so sharing is purely an
    amortization decision.  Not thread-safe (neither is the engine): a
    cache serves one logical caller at a time, and a bucket block is
    recycled only after the invocation that used it has folded its
    results.
    """

    __slots__ = ("_buckets", "_metas", "_streams", "_memo")

    def __init__(self) -> None:
        self._buckets: dict[tuple, BucketBlock] = {}
        self._metas: dict[tuple, RoundMeta] = {}
        self._streams: dict[tuple, tuple[RngRegistry, list[random.Random]]] = {}
        self._memo: dict[tuple, object] = {}

    def buckets(self, channels: Sequence[int], rounds: int) -> BucketBlock:
        """A cleared :class:`BucketBlock` for ``rounds`` rounds over
        ``channels`` (allocated on first use per geometry)."""
        key = (tuple(channels), rounds)
        block = self._buckets.get(key)
        if block is None:
            block = self._buckets[key] = BucketBlock(channels, rounds)
        else:
            block.reset()
        return block

    def meta(self, phase: str, **extra: object) -> RoundMeta:
        """The interned :class:`RoundMeta` for ``phase`` + ``extra``."""
        try:
            key = (phase, tuple(sorted(extra.items())))
        except TypeError:  # unorderable extra values: build uncached
            return RoundMeta(phase=phase, extra=dict(extra))
        meta = self._metas.get(key)
        if meta is None:
            if len(self._metas) >= _MEMO_CAP:
                self._metas.clear()
            meta = self._metas[key] = RoundMeta(
                phase=phase, extra=dict(extra)
            )
        return meta

    def streams(
        self,
        rng: RngRegistry,
        namespace: object,
        label: str,
        nodes: Iterable[int],
    ) -> list[random.Random]:
        """The streams ``rng.stream(namespace, label, node)`` for ``nodes``,
        in order, built once per ``(namespace, label, nodes)`` key.

        The key stringifies ``namespace`` exactly like the registry does,
        so two namespace spellings that alias in the registry alias here
        too.  The table is pinned to the registry that built it: a lookup
        with a different registry object rebuilds (and repins), so at most
        one registry is retained per key.
        """
        nodes = tuple(nodes)
        key = (str(namespace), label, nodes)
        entry = self._streams.get(key)
        if entry is not None and entry[0] is rng:
            return entry[1]
        if len(self._streams) >= _MEMO_CAP:
            self._streams.clear()
        table = rng.stream_block(namespace, label, nodes=nodes)
        self._streams[key] = (rng, table)
        return table

    def memo(self, key: tuple, build: Callable[[], object]) -> object:
        """Generic bounded memo: ``build()`` once per hashable ``key``.

        Used for static transmitter templates (immutable frames, so
        sharing one dict across rounds *and* invocations is safe — the
        engine already shares one template across a schedule's rounds).
        Unhashable keys simply build uncached.
        """
        try:
            value = self._memo.get(key)
        except TypeError:
            return build()
        if value is None:
            if len(self._memo) >= _MEMO_CAP:
                self._memo.clear()
            value = self._memo[key] = build()
        return value
