"""Trace export: serialize executions for offline inspection.

Long debugging sessions (and paper-style figures) want the raw execution
as data.  :func:`trace_to_records` flattens an
:class:`~repro.radio.trace.ExecutionTrace` into JSON-serializable dicts —
one per round — and :func:`dump_trace` / :func:`channel_occupancy` provide
the two most-wanted consumers: a JSON file and a per-channel activity
summary (how often each channel carried honest traffic, adversary traffic,
collisions, deliveries).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from .actions import Listen, Sleep, Transmit
from .messages import Jam
from .trace import ExecutionTrace, RoundRecord


def _payload_repr(payload: Any) -> Any:
    """JSON-safe view of a message payload (bytes become hex)."""
    if isinstance(payload, (bytes, bytearray)):
        return {"hex": bytes(payload).hex()}
    if isinstance(payload, (list, tuple)):
        return [_payload_repr(p) for p in payload]
    if isinstance(payload, dict):
        return {str(k): _payload_repr(v) for k, v in payload.items()}
    if payload is None or isinstance(payload, (str, int, float, bool)):
        return payload
    return repr(payload)


def record_to_dict(record: RoundRecord) -> dict[str, Any]:
    """One round as a JSON-serializable dict."""
    actions: dict[str, Any] = {}
    for node, action in record.actions.items():
        if isinstance(action, Transmit):
            actions[str(node)] = {
                "op": "transmit",
                "channel": action.channel,
                "kind": action.message.kind,
                "sender": action.message.sender,
                "payload": _payload_repr(action.message.payload),
            }
        elif isinstance(action, Listen):
            actions[str(node)] = {"op": "listen", "channel": action.channel}
        elif isinstance(action, Sleep):
            actions[str(node)] = {"op": "sleep"}
    adversary = [
        {
            "channel": tx.channel,
            "jam": isinstance(tx.payload, Jam),
            "kind": None if isinstance(tx.payload, Jam) else tx.payload.kind,
        }
        for tx in record.adversary_transmissions
    ]
    delivered = {
        str(channel): (None if msg is None else msg.kind)
        for channel, msg in record.delivered.items()
    }
    return {
        "round": record.index,
        "meta": _payload_repr(dict(record.meta)),
        "actions": actions,
        "adversary": adversary,
        "delivered": delivered,
    }


def trace_to_records(trace: ExecutionTrace) -> list[dict[str, Any]]:
    """The whole trace as a list of JSON-serializable dicts."""
    return [record_to_dict(record) for record in trace]


def dump_trace(trace: ExecutionTrace, path: str | Path) -> int:
    """Write the trace as JSON lines; returns the number of rounds."""
    records = trace_to_records(trace)
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record) + "\n")
    return len(records)


def channel_occupancy(trace: ExecutionTrace, channels: int) -> list[dict[str, int]]:
    """Per-channel activity counters over the whole trace.

    Returns one dict per channel with keys ``honest`` (rounds carrying at
    least one honest transmission), ``adversary`` (rounds the adversary
    touched it), ``collisions`` (two-plus transmitters) and ``delivered``
    (successful decodes).
    """
    stats = [
        {"honest": 0, "adversary": 0, "collisions": 0, "delivered": 0}
        for _ in range(channels)
    ]
    for record in trace:
        adversary_channels = record.adversary_channels()
        for channel in range(channels):
            honest = record.honest_transmitters(channel)
            if honest:
                stats[channel]["honest"] += 1
            if channel in adversary_channels:
                stats[channel]["adversary"] += 1
            transmitters = len(honest) + (1 if channel in adversary_channels else 0)
            if transmitters >= 2:
                stats[channel]["collisions"] += 1
            if record.delivered.get(channel) is not None:
                stats[channel]["delivered"] += 1
    return stats
