"""Per-round node actions: transmit, listen, or sleep.

The model (Section 3) allows a node one action per round on one channel.
These small frozen dataclasses make protocol round-functions explicit and
easily assertable in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from .messages import Message


@dataclass(frozen=True)
class Transmit:
    """Broadcast ``message`` on ``channel`` this round."""

    channel: int
    message: Message


@dataclass(frozen=True)
class Listen:
    """Tune to ``channel`` and receive whatever single transmission succeeds."""

    channel: int


@dataclass(frozen=True)
class Sleep:
    """Do nothing this round (neither transmit nor receive)."""


Action = Union[Transmit, Listen, Sleep]
