"""Per-round node actions: transmit, listen, or sleep.

The model (Section 3) allows a node one action per round on one channel.
These small frozen dataclasses make protocol round-functions explicit and
easily assertable in tests.

:class:`Listen` and :class:`Sleep` are *flyweights*: constructing
``Listen(c)`` returns one shared instance per channel and ``Sleep()`` always
returns the same singleton.  Protocols resolve millions of rounds, and the
listen/sleep actions they submit are pure value objects with a tiny key
space, so interning removes almost all per-round allocation on the hot path
while keeping construction-site code unchanged.  ``SLEEP`` is the shared
sleep instance for callers that want to skip the constructor call entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Union

from .messages import Message


@dataclass(frozen=True)
class Transmit:
    """Broadcast ``message`` on ``channel`` this round."""

    channel: int
    message: Message


@dataclass(frozen=True, init=False)
class Listen:
    """Tune to ``channel`` and receive whatever single transmission succeeds."""

    channel: int

    _interned: ClassVar[dict[int, "Listen"]] = {}

    # init=False: instances are fully built here, so constructing an
    # already-interned channel can never re-run an __init__ against the
    # shared (frozen) instance.  Only exact ints are interned — equal but
    # differently-typed keys (True, 1.0) get ordinary fresh instances, and
    # validation of the channel *value* stays with the network.
    def __new__(cls, channel: int) -> "Listen":
        if type(channel) is int:
            cached = cls._interned.get(channel)
            if cached is None:
                cached = super().__new__(cls)
                object.__setattr__(cached, "channel", channel)
                cls._interned[channel] = cached
            return cached
        instance = super().__new__(cls)
        object.__setattr__(instance, "channel", channel)
        return instance

    def __copy__(self) -> "Listen":
        return self

    def __deepcopy__(self, memo: dict) -> "Listen":
        return self

    def __reduce__(self):
        return (Listen, (self.channel,))


@dataclass(frozen=True, init=False)
class Sleep:
    """Do nothing this round (neither transmit nor receive)."""

    _instance: ClassVar["Sleep | None"] = None

    def __new__(cls) -> "Sleep":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __copy__(self) -> "Sleep":
        return self

    def __deepcopy__(self, memo: dict) -> "Sleep":
        return self

    def __reduce__(self):
        return (Sleep, ())


SLEEP = Sleep()
"""The shared :class:`Sleep` flyweight (``Sleep()`` returns the same object)."""

Action = Union[Transmit, Listen, Sleep]
