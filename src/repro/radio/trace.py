"""Execution traces: a complete, queryable record of every simulated round.

Traces serve three purposes:

1. they are the *adversary's knowledge* — Section 3 grants the adversary full
   knowledge of all completed rounds, which we implement by handing it the
   trace;
2. they let tests assert low-level radio behaviour (who collided with whom,
   which spoofs were delivered);
3. they feed the benchmark harness (round counts per phase, energy, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from .actions import Action, Listen, Sleep, Transmit
from .messages import Jam, Message, Transmission


class SparseDelivered(Mapping):
    """A dense-compatible view over a sparse per-channel delivery map.

    Only *touched* channels (those carrying at least one transmission) are
    stored; every untouched channel reads as ``None`` (silence), which is
    exactly what the round resolution would have recorded for it.  The view
    therefore behaves like the dense ``{channel: message-or-None}`` dict the
    trace historically stored — same ``len`` (``C``), same iteration order
    (channel ids ascending), same lookups — while costing O(touched) memory
    per round instead of O(C).  Long-lived traced runs thus scale in the
    channel count.
    """

    __slots__ = ("_touched", "_channels")

    def __init__(
        self, touched: Mapping[int, Message | None], channels: int
    ) -> None:
        self._touched = dict(touched)
        self._channels = channels

    def __getitem__(self, channel: int) -> Message | None:
        if isinstance(channel, int) and 0 <= channel < self._channels:
            return self._touched.get(channel)
        raise KeyError(channel)

    def get(self, channel: int, default: Any = None) -> Message | None:
        """O(1) lookup; untouched in-range channels read as ``None``."""
        if isinstance(channel, int) and 0 <= channel < self._channels:
            return self._touched.get(channel)
        return default

    def __iter__(self) -> Iterator[int]:
        return iter(range(self._channels))

    def __len__(self) -> int:
        return self._channels

    def __contains__(self, channel: object) -> bool:
        return isinstance(channel, int) and 0 <= channel < self._channels

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SparseDelivered):
            if self._channels != other._channels:
                return False
            a = {c: m for c, m in self._touched.items() if m is not None}
            b = {c: m for c, m in other._touched.items() if m is not None}
            return a == b
        if isinstance(other, Mapping):
            return dict(self) == dict(other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result

    __hash__ = None  # mutable-dict semantics, like the dense dict it replaces

    def sparse_items(self) -> Iterator[tuple[int, Message]]:
        """Iterate only the channels that decoded a message — O(touched)."""
        return (
            (channel, msg)
            for channel, msg in self._touched.items()
            if msg is not None
        )

    def __repr__(self) -> str:
        return (
            f"SparseDelivered({self._touched!r}, channels={self._channels})"
        )


@dataclass(frozen=True)
class RoundRecord:
    """Everything that happened in one synchronous round.

    Attributes
    ----------
    index:
        0-based round number.
    actions:
        Each honest node's action this round (absent ⇒ slept).
    adversary_transmissions:
        The adversary's (channel, payload) pairs, at most ``t`` of them.
    delivered:
        Per channel, the message successfully decoded on that channel (or
        ``None`` for silence/collision/jam).  A delivered message whose only
        transmitter was the adversary is a successful *spoof*.
    meta:
        Public, deterministic protocol annotations for this round (phase
        label, schedule) — information the adversary is entitled to because
        it can derive it from the protocol code and past history.
    """

    index: int
    actions: Mapping[int, Action]
    adversary_transmissions: tuple[Transmission, ...]
    delivered: Mapping[int, Message | None]
    meta: Mapping[str, Any] = field(default_factory=dict)

    # -- convenience queries -------------------------------------------

    def honest_transmitters(self, channel: int) -> list[int]:
        """Node ids that transmitted on ``channel`` this round."""
        return [
            node
            for node, action in self.actions.items()
            if isinstance(action, Transmit) and action.channel == channel
        ]

    def listeners(self, channel: int) -> list[int]:
        """Node ids that listened on ``channel`` this round."""
        return [
            node
            for node, action in self.actions.items()
            if isinstance(action, Listen) and action.channel == channel
        ]

    def adversary_channels(self) -> set[int]:
        """Channels the adversary touched this round."""
        return {tx.channel for tx in self.adversary_transmissions}

    def was_jammed(self, channel: int) -> bool:
        """True when the adversary transmitted on ``channel`` and a would-be
        honest delivery was thereby suppressed (or noise occupied it)."""
        return channel in self.adversary_channels()

    def was_spoofed(self, channel: int) -> bool:
        """True when the delivered message on ``channel`` originated solely
        from the adversary."""
        msg = self.delivered.get(channel)
        if msg is None:
            return False
        if self.honest_transmitters(channel):
            return False
        return any(
            not isinstance(tx.payload, Jam) and tx.payload == msg
            for tx in self.adversary_transmissions
            if tx.channel == channel
        )

    def received_by(self, node: int) -> Message | None:
        """What ``node`` received this round (``None`` if it was not
        listening, or heard silence/collision)."""
        action = self.actions.get(node)
        if not isinstance(action, Listen):
            return None
        return self.delivered.get(action.channel)

    def canonical_form(self) -> dict:
        """A semantics-preserving normal form for record comparison.

        Two executions are behaviourally identical iff their records agree
        on this form.  Explicit :class:`~repro.radio.actions.Sleep` entries
        are dropped (a sleeping node is indistinguishable from an absent
        one) and silent channels are dropped from ``delivered`` (silence on
        an untouched channel carries no information) — which makes the form
        invariant under dense vs. sparse action submission.
        """
        delivered = self.delivered
        if isinstance(delivered, SparseDelivered):
            delivered_items = list(delivered.sparse_items())
        else:
            delivered_items = [
                (channel, msg)
                for channel, msg in delivered.items()
                if msg is not None
            ]
        delivered_items.sort(key=lambda item: item[0])
        return {
            "index": self.index,
            "actions": {
                node: action
                for node, action in sorted(self.actions.items())
                if not isinstance(action, Sleep)
            },
            "adversary": self.adversary_transmissions,
            "delivered": dict(delivered_items),
            "meta": dict(self.meta),
        }


class ExecutionTrace:
    """Append-only sequence of :class:`RoundRecord` with summary queries."""

    def __init__(self) -> None:
        self._rounds: list[RoundRecord] = []

    def append(self, record: RoundRecord) -> None:
        """Append a completed round (driver use only)."""
        self._rounds.append(record)

    def __len__(self) -> int:
        return len(self._rounds)

    def __iter__(self) -> Iterator[RoundRecord]:
        return iter(self._rounds)

    def __getitem__(self, index: int) -> RoundRecord:
        return self._rounds[index]

    @property
    def rounds(self) -> tuple[RoundRecord, ...]:
        """All completed rounds as an immutable tuple."""
        return tuple(self._rounds)

    def canonical_forms(self) -> list[dict]:
        """Normal forms of every round (see
        :meth:`RoundRecord.canonical_form`) — the trace-equality oracle used
        by the engine-equivalence tests."""
        return [record.canonical_form() for record in self._rounds]

    # -- summaries ------------------------------------------------------

    def count_rounds(self, phase: str | None = None) -> int:
        """Number of rounds, optionally restricted to a phase label."""
        if phase is None:
            return len(self._rounds)
        return sum(1 for r in self._rounds if r.meta.get("phase") == phase)

    def spoofed_deliveries(self) -> list[tuple[int, int, Message]]:
        """All successful spoofs as ``(round, channel, message)`` triples."""
        out: list[tuple[int, int, Message]] = []
        for record in self._rounds:
            delivered = record.delivered
            if isinstance(delivered, SparseDelivered):
                items = delivered.sparse_items()
            else:
                items = (
                    (c, m) for c, m in delivered.items() if m is not None
                )
            for channel, msg in items:
                if record.was_spoofed(channel):
                    out.append((record.index, channel, msg))
        return out

    def jammed_rounds(self) -> int:
        """Rounds in which the adversary transmitted at all."""
        return sum(1 for r in self._rounds if r.adversary_transmissions)

    def phase_breakdown(self) -> dict[str, int]:
        """Round counts keyed by phase label (unlabelled rounds under '')."""
        out: dict[str, int] = {}
        for record in self._rounds:
            key = str(record.meta.get("phase", ""))
            out[key] = out.get(key, 0) + 1
        return out
