"""Execution traces: a complete, queryable record of every simulated round.

Traces serve three purposes:

1. they are the *adversary's knowledge* — Section 3 grants the adversary full
   knowledge of all completed rounds, which we implement by handing it the
   trace;
2. they let tests assert low-level radio behaviour (who collided with whom,
   which spoofs were delivered);
3. they feed the benchmark harness (round counts per phase, energy, etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

from .actions import Action, Listen, Sleep, Transmit
from .messages import Jam, Message, Transmission


@dataclass(frozen=True)
class RoundRecord:
    """Everything that happened in one synchronous round.

    Attributes
    ----------
    index:
        0-based round number.
    actions:
        Each honest node's action this round (absent ⇒ slept).
    adversary_transmissions:
        The adversary's (channel, payload) pairs, at most ``t`` of them.
    delivered:
        Per channel, the message successfully decoded on that channel (or
        ``None`` for silence/collision/jam).  A delivered message whose only
        transmitter was the adversary is a successful *spoof*.
    meta:
        Public, deterministic protocol annotations for this round (phase
        label, schedule) — information the adversary is entitled to because
        it can derive it from the protocol code and past history.
    """

    index: int
    actions: Mapping[int, Action]
    adversary_transmissions: tuple[Transmission, ...]
    delivered: Mapping[int, Message | None]
    meta: Mapping[str, Any] = field(default_factory=dict)

    # -- convenience queries -------------------------------------------

    def honest_transmitters(self, channel: int) -> list[int]:
        """Node ids that transmitted on ``channel`` this round."""
        return [
            node
            for node, action in self.actions.items()
            if isinstance(action, Transmit) and action.channel == channel
        ]

    def listeners(self, channel: int) -> list[int]:
        """Node ids that listened on ``channel`` this round."""
        return [
            node
            for node, action in self.actions.items()
            if isinstance(action, Listen) and action.channel == channel
        ]

    def adversary_channels(self) -> set[int]:
        """Channels the adversary touched this round."""
        return {tx.channel for tx in self.adversary_transmissions}

    def was_jammed(self, channel: int) -> bool:
        """True when the adversary transmitted on ``channel`` and a would-be
        honest delivery was thereby suppressed (or noise occupied it)."""
        return channel in self.adversary_channels()

    def was_spoofed(self, channel: int) -> bool:
        """True when the delivered message on ``channel`` originated solely
        from the adversary."""
        msg = self.delivered.get(channel)
        if msg is None:
            return False
        if self.honest_transmitters(channel):
            return False
        return any(
            not isinstance(tx.payload, Jam) and tx.payload == msg
            for tx in self.adversary_transmissions
            if tx.channel == channel
        )

    def received_by(self, node: int) -> Message | None:
        """What ``node`` received this round (``None`` if it was not
        listening, or heard silence/collision)."""
        action = self.actions.get(node)
        if not isinstance(action, Listen):
            return None
        return self.delivered.get(action.channel)

    def canonical_form(self) -> dict:
        """A semantics-preserving normal form for record comparison.

        Two executions are behaviourally identical iff their records agree
        on this form.  Explicit :class:`~repro.radio.actions.Sleep` entries
        are dropped (a sleeping node is indistinguishable from an absent
        one) and silent channels are dropped from ``delivered`` (silence on
        an untouched channel carries no information) — which makes the form
        invariant under dense vs. sparse action submission.
        """
        return {
            "index": self.index,
            "actions": {
                node: action
                for node, action in sorted(self.actions.items())
                if not isinstance(action, Sleep)
            },
            "adversary": self.adversary_transmissions,
            "delivered": {
                channel: msg
                for channel, msg in sorted(self.delivered.items())
                if msg is not None
            },
            "meta": dict(self.meta),
        }


class ExecutionTrace:
    """Append-only sequence of :class:`RoundRecord` with summary queries."""

    def __init__(self) -> None:
        self._rounds: list[RoundRecord] = []

    def append(self, record: RoundRecord) -> None:
        """Append a completed round (driver use only)."""
        self._rounds.append(record)

    def __len__(self) -> int:
        return len(self._rounds)

    def __iter__(self) -> Iterator[RoundRecord]:
        return iter(self._rounds)

    def __getitem__(self, index: int) -> RoundRecord:
        return self._rounds[index]

    @property
    def rounds(self) -> tuple[RoundRecord, ...]:
        """All completed rounds as an immutable tuple."""
        return tuple(self._rounds)

    def canonical_forms(self) -> list[dict]:
        """Normal forms of every round (see
        :meth:`RoundRecord.canonical_form`) — the trace-equality oracle used
        by the engine-equivalence tests."""
        return [record.canonical_form() for record in self._rounds]

    # -- summaries ------------------------------------------------------

    def count_rounds(self, phase: str | None = None) -> int:
        """Number of rounds, optionally restricted to a phase label."""
        if phase is None:
            return len(self._rounds)
        return sum(1 for r in self._rounds if r.meta.get("phase") == phase)

    def spoofed_deliveries(self) -> list[tuple[int, int, Message]]:
        """All successful spoofs as ``(round, channel, message)`` triples."""
        out: list[tuple[int, int, Message]] = []
        for record in self._rounds:
            for channel, msg in record.delivered.items():
                if msg is not None and record.was_spoofed(channel):
                    out.append((record.index, channel, msg))
        return out

    def jammed_rounds(self) -> int:
        """Rounds in which the adversary transmitted at all."""
        return sum(1 for r in self._rounds if r.adversary_transmissions)

    def phase_breakdown(self) -> dict[str, int]:
        """Round counts keyed by phase label (unlabelled rounds under '')."""
        out: dict[str, int] = {}
        for record in self._rounds:
            key = str(record.meta.get("phase", ""))
            out[key] = out.get(key, 0) + 1
        return out
