"""Lightweight counters aggregated while the simulation runs.

Unlike :mod:`repro.radio.trace`, which stores everything, the metrics object
keeps O(1) state and is always cheap enough to leave enabled — benchmark runs
that disable trace retention still get round/energy accounting from here.
"""

from __future__ import annotations

from dataclasses import MISSING, dataclass, field, fields


@dataclass
class NetworkMetrics:
    """Aggregate counters for one :class:`repro.radio.RadioNetwork` run.

    Attributes
    ----------
    rounds:
        Total synchronous rounds executed.
    honest_transmissions:
        Total (node, round) transmit actions — a proxy for energy spent.
    listens:
        Total (node, round) listen actions.
    deliveries:
        Channel-rounds on which a message was successfully decoded.
    collisions:
        Channel-rounds with two or more transmitters (honest or adversarial).
    adversary_transmissions:
        Total adversary (channel, round) transmissions.
    spoofs_delivered:
        Deliveries whose sole transmitter was the adversary — i.e. successful
        spoofs at the *radio* level (a protocol may still reject the frame).
    rounds_by_phase:
        Round counts keyed by the ``phase`` annotation of round metadata.
    """

    rounds: int = 0
    honest_transmissions: int = 0
    listens: int = 0
    deliveries: int = 0
    collisions: int = 0
    adversary_transmissions: int = 0
    spoofs_delivered: int = 0
    rounds_by_phase: dict[str, int] = field(default_factory=dict)

    def note_phase(self, phase: str) -> None:
        """Attribute the current round to ``phase``."""
        self.rounds_by_phase[phase] = self.rounds_by_phase.get(phase, 0) + 1

    def merge(self, other: "NetworkMetrics") -> "NetworkMetrics":
        """Return a new metrics object summing ``self`` and ``other``.

        The merge is *total* by construction: the result's class is the
        more derived of the two operand types (which must be related by
        subclassing; unrelated types raise :class:`TypeError`), and every
        dataclass field of that class participates — a counter added
        later, including by a subclass, merges automatically instead of
        being silently dropped.  The property is what lets the Monte Carlo
        harness fold per-trial metrics with a plain
        ``NetworkMetrics().merge(...)`` seed, and
        ``tests/test_radio_trace.py`` pins it by field enumeration.  A
        field absent on one operand (base-class instance merged with a
        subclass's) contributes its declared default.  Scalar counters
        add; dict-valued counters (``rounds_by_phase``) merge key-wise by
        addition.
        """
        if isinstance(other, type(self)):
            merged = type(other)()
        elif isinstance(self, type(other)):
            merged = type(self)()
        else:
            raise TypeError(
                f"cannot merge {type(self).__name__} with unrelated "
                f"{type(other).__name__}"
            )
        for f in fields(merged):
            default = (
                f.default_factory()
                if f.default_factory is not MISSING
                else f.default
            )
            mine = getattr(self, f.name, default)
            theirs = getattr(other, f.name, default)
            if isinstance(mine, dict):
                combined = dict(mine)
                for key, count in theirs.items():
                    combined[key] = combined.get(key, 0) + count
                setattr(merged, f.name, combined)
            else:
                setattr(merged, f.name, mine + theirs)
        return merged
