"""Lightweight counters aggregated while the simulation runs.

Unlike :mod:`repro.radio.trace`, which stores everything, the metrics object
keeps O(1) state and is always cheap enough to leave enabled — benchmark runs
that disable trace retention still get round/energy accounting from here.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class NetworkMetrics:
    """Aggregate counters for one :class:`repro.radio.RadioNetwork` run.

    Attributes
    ----------
    rounds:
        Total synchronous rounds executed.
    honest_transmissions:
        Total (node, round) transmit actions — a proxy for energy spent.
    listens:
        Total (node, round) listen actions.
    deliveries:
        Channel-rounds on which a message was successfully decoded.
    collisions:
        Channel-rounds with two or more transmitters (honest or adversarial).
    adversary_transmissions:
        Total adversary (channel, round) transmissions.
    spoofs_delivered:
        Deliveries whose sole transmitter was the adversary — i.e. successful
        spoofs at the *radio* level (a protocol may still reject the frame).
    rounds_by_phase:
        Round counts keyed by the ``phase`` annotation of round metadata.
    """

    rounds: int = 0
    honest_transmissions: int = 0
    listens: int = 0
    deliveries: int = 0
    collisions: int = 0
    adversary_transmissions: int = 0
    spoofs_delivered: int = 0
    rounds_by_phase: dict[str, int] = field(default_factory=dict)

    def note_phase(self, phase: str) -> None:
        """Attribute the current round to ``phase``."""
        self.rounds_by_phase[phase] = self.rounds_by_phase.get(phase, 0) + 1

    def merge(self, other: "NetworkMetrics") -> "NetworkMetrics":
        """Return a new metrics object summing ``self`` and ``other``."""
        merged = NetworkMetrics(
            rounds=self.rounds + other.rounds,
            honest_transmissions=self.honest_transmissions
            + other.honest_transmissions,
            listens=self.listens + other.listens,
            deliveries=self.deliveries + other.deliveries,
            collisions=self.collisions + other.collisions,
            adversary_transmissions=self.adversary_transmissions
            + other.adversary_transmissions,
            spoofs_delivered=self.spoofs_delivered + other.spoofs_delivered,
        )
        merged.rounds_by_phase = dict(self.rounds_by_phase)
        for phase, count in other.rounds_by_phase.items():
            merged.rounds_by_phase[phase] = (
                merged.rounds_by_phase.get(phase, 0) + count
            )
        return merged
