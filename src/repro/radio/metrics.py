"""Lightweight counters aggregated while the simulation runs.

Unlike :mod:`repro.radio.trace`, which stores everything, the metrics object
keeps O(1) state and is always cheap enough to leave enabled — benchmark runs
that disable trace retention still get round/energy accounting from here.
"""

from __future__ import annotations

from dataclasses import MISSING, dataclass, field, fields
from typing import Any

_SCALAR_TYPES = frozenset((bool, int, float, str, bytes))


def payload_size(payload: Any) -> int:
    """Abstract wire size of a frame payload, in scalar units.

    The accounting is deliberately simple — every scalar (int, str, bool,
    bytes digest, ...) costs one unit, containers cost the sum of their
    contents, ``None`` is free — so that *relative* sizes between frame
    encodings are meaningful without modelling a real serializer.  A
    payload that knows its own wire representation (e.g.
    :class:`~repro.radio.messages.DeltaFrame`) exposes a ``wire_size()``
    method, which takes precedence over the container fallbacks; this is
    how the digest/delta feedback frames report their compressed size.
    """
    if payload is None:
        return 0
    # Exact-type dispatch first: scalar and tuple payloads dominate the
    # per-round hot path, and the wire_size probe (a getattr) is only
    # worth paying for the exotic rest.
    kind = type(payload)
    if kind in _SCALAR_TYPES:
        return 1
    if kind is tuple or kind is list:
        return sum(payload_size(part) for part in payload)
    wire = getattr(payload, "wire_size", None)
    if callable(wire):
        return wire()
    if isinstance(payload, (tuple, list, set, frozenset)):
        return sum(payload_size(part) for part in payload)
    if isinstance(payload, dict):
        return sum(
            payload_size(key) + payload_size(value)
            for key, value in payload.items()
        )
    return 1


def frame_size(message: Any) -> int:
    """Wire size of a decodable frame: one unit of kind + its payload."""
    return 1 + payload_size(message.payload)


@dataclass
class NetworkMetrics:
    """Aggregate counters for one :class:`repro.radio.RadioNetwork` run.

    Attributes
    ----------
    rounds:
        Total synchronous rounds executed.
    honest_transmissions:
        Total (node, round) transmit actions — a proxy for energy spent.
    listens:
        Total (node, round) listen actions.
    deliveries:
        Channel-rounds on which a message was successfully decoded.
    collisions:
        Channel-rounds with two or more transmitters (honest or adversarial).
    adversary_transmissions:
        Total adversary (channel, round) transmissions.
    spoofs_delivered:
        Deliveries whose sole transmitter was the adversary — i.e. successful
        spoofs at the *radio* level (a protocol may still reject the frame).
    payload_units:
        Total wire size of all honest transmissions (see
        :func:`payload_size`); adversary frames are excluded — their cost
        model is the per-round channel budget, not bandwidth.  This is the
        counter the digest/delta feedback frames shrink.
    rounds_by_phase:
        Round counts keyed by the ``phase`` annotation of round metadata.
    """

    rounds: int = 0
    honest_transmissions: int = 0
    listens: int = 0
    deliveries: int = 0
    collisions: int = 0
    adversary_transmissions: int = 0
    spoofs_delivered: int = 0
    payload_units: int = 0
    rounds_by_phase: dict[str, int] = field(default_factory=dict)

    def note_phase(self, phase: str) -> None:
        """Attribute the current round to ``phase``."""
        self.rounds_by_phase[phase] = self.rounds_by_phase.get(phase, 0) + 1

    def merge(self, other: "NetworkMetrics") -> "NetworkMetrics":
        """Return a new metrics object summing ``self`` and ``other``.

        The merge is *total* by construction: the result's class is the
        more derived of the two operand types (which must be related by
        subclassing; unrelated types raise :class:`TypeError`), and every
        dataclass field of that class participates — a counter added
        later, including by a subclass, merges automatically instead of
        being silently dropped.  The property is what lets the Monte Carlo
        harness fold per-trial metrics with a plain
        ``NetworkMetrics().merge(...)`` seed, and
        ``tests/test_radio_trace.py`` pins it by field enumeration.  A
        field absent on one operand (base-class instance merged with a
        subclass's) contributes its declared default.  Scalar counters
        add; dict-valued counters (``rounds_by_phase``) merge key-wise by
        addition.
        """
        if isinstance(other, type(self)):
            merged = type(other)()
        elif isinstance(self, type(other)):
            merged = type(self)()
        else:
            raise TypeError(
                f"cannot merge {type(self).__name__} with unrelated "
                f"{type(other).__name__}"
            )
        for f in fields(merged):
            default = (
                f.default_factory()
                if f.default_factory is not MISSING
                else f.default
            )
            mine = getattr(self, f.name, default)
            theirs = getattr(other, f.name, default)
            if isinstance(mine, dict):
                combined = dict(mine)
                for key, count in theirs.items():
                    combined[key] = combined.get(key, 0) + count
                setattr(merged, f.name, combined)
            else:
                setattr(merged, f.name, mine + theirs)
        return merged
