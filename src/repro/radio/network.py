"""The synchronous radio network simulator.

:class:`RadioNetwork` resolves one round at a time.  The contract follows
Section 3 of the paper exactly:

* every honest node submits one :class:`~repro.radio.actions.Action`;
* the adversary — asked *after* the honest actions are fixed but shown only
  past history plus deterministic public metadata — submits up to ``t``
  transmissions on distinct channels;
* per channel: exactly one transmission ⇒ listeners decode it (if it is a
  message rather than noise); zero or several ⇒ listeners hear nothing.
  Listeners cannot distinguish silence, collision, and pure noise.

The adversary's one-round observation delay is enforced structurally: the
view object handed to the adversary contains the trace of *completed* rounds
only, alongside the current round's public ``meta`` (which the adversary
could derive itself, since protocols are known and their deterministic
schedule depends only on public history).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from ..errors import ConfigurationError, ProtocolViolation
from ..params import ProtocolParameters, DEFAULT_PARAMETERS, validate_model
from .actions import Action, Listen, Sleep, Transmit
from .messages import Jam, Message, Transmission
from .metrics import NetworkMetrics
from .trace import ExecutionTrace, RoundRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..adversary.base import Adversary


@dataclass(frozen=True)
class RoundMeta:
    """Public, deterministic annotations attached to a round.

    ``phase`` labels the protocol phase (for metrics and adversaries);
    ``schedule`` optionally exposes the deterministic broadcast schedule of
    the round.  Exposing the schedule is not a leak: the paper's adversary
    knows the protocol and all past randomness, so anything deterministic
    given public history is already in its knowledge.
    """

    phase: str = ""
    schedule: Mapping[str, Any] | None = None
    extra: Mapping[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """Flatten into the dict stored on the round record."""
        out: dict[str, Any] = {"phase": self.phase}
        if self.schedule is not None:
            out["schedule"] = self.schedule
        out.update(self.extra)
        return out


@dataclass(frozen=True)
class AdversaryView:
    """Everything the adversary may legitimately observe before acting.

    Attributes
    ----------
    n, channels, t:
        The public model parameters.
    round_index:
        Index of the round about to be resolved.
    history:
        The full trace of completed rounds — including every honest node's
        past actions and random choices, per the paper's assumption that
        "at the end of each round, the adversary learns all random choices
        made in all completed rounds".
    meta:
        The current round's public metadata (phase, deterministic schedule).
    """

    n: int
    channels: int
    t: int
    round_index: int
    history: ExecutionTrace
    meta: RoundMeta


class RadioNetwork:
    """Round-based simulator for the multi-channel radio model.

    Parameters
    ----------
    n:
        Number of honest nodes, with ids ``0 .. n-1``.
    channels:
        Number of channels ``C``; channels are ids ``0 .. C-1``.
    t:
        Adversary budget: distinct channels it may transmit on per round.
    adversary:
        Strategy object implementing
        :class:`repro.adversary.base.Adversary`; ``None`` means no adversary.
    params:
        Protocol constants (used here only for the round cap).
    keep_trace:
        When ``False``, round records are not retained (metrics still are);
        long benchmark runs use this to bound memory.  Note that adversaries
        needing history force ``keep_trace=True``.
    """

    def __init__(
        self,
        n: int,
        channels: int,
        t: int,
        adversary: "Adversary | None" = None,
        *,
        params: ProtocolParameters = DEFAULT_PARAMETERS,
        keep_trace: bool = True,
    ) -> None:
        validate_model(n, channels, t)
        self.n = n
        self.channels = channels
        self.t = t
        self.params = params
        self.adversary = adversary
        self._keep_trace = keep_trace
        if adversary is not None and adversary.needs_history and not keep_trace:
            raise ConfigurationError(
                "adversary requires history but keep_trace=False"
            )
        self.trace = ExecutionTrace()
        self.metrics = NetworkMetrics()
        self._round_index = 0

    @property
    def round_index(self) -> int:
        """Index of the next round to execute."""
        return self._round_index

    # ------------------------------------------------------------------

    def _validate_actions(self, actions: Mapping[int, Action]) -> None:
        for node, action in actions.items():
            if not 0 <= node < self.n:
                raise ProtocolViolation(f"unknown node id {node}")
            if isinstance(action, (Transmit, Listen)):
                if not 0 <= action.channel < self.channels:
                    raise ProtocolViolation(
                        f"node {node} used invalid channel {action.channel} "
                        f"(C={self.channels})"
                    )
            elif not isinstance(action, Sleep):
                raise ProtocolViolation(
                    f"node {node} submitted unknown action {action!r}"
                )

    def _validate_adversary(self, txs: list[Transmission]) -> None:
        seen: set[int] = set()
        for tx in txs:
            if not 0 <= tx.channel < self.channels:
                raise ProtocolViolation(
                    f"adversary used invalid channel {tx.channel}"
                )
            if tx.channel in seen:
                raise ProtocolViolation(
                    f"adversary transmitted twice on channel {tx.channel}"
                )
            seen.add(tx.channel)
        if len(seen) > self.t:
            raise ProtocolViolation(
                f"adversary transmitted on {len(seen)} channels; budget t={self.t}"
            )

    # ------------------------------------------------------------------

    def execute_round(
        self,
        actions: Mapping[int, Action],
        meta: RoundMeta | None = None,
    ) -> dict[int, Message | None]:
        """Resolve one synchronous round.

        ``actions`` may be *sparse*: nodes absent from the mapping sleep.
        Submitting only the non-sleeping nodes is the fast path — resolution
        cost is proportional to the number of active nodes and touched
        channels, not to ``n`` or ``C``.  Explicit :class:`Sleep` entries
        remain accepted (and are recorded verbatim when tracing), so dense
        legacy callers resolve identically.

        Returns a dict mapping every *listening* node to what it received
        (``None`` for silence/collision/noise).  Nodes that transmitted or
        slept are absent from the result.
        """
        if (
            self.params.max_rounds is not None
            and self._round_index >= self.params.max_rounds
        ):
            raise ProtocolViolation(
                f"round cap exceeded ({self.params.max_rounds} rounds); "
                "likely a non-terminating configuration"
            )
        meta = meta or RoundMeta()
        if self.params.validate_actions:
            self._validate_actions(actions)

        adversary_txs: list[Transmission] = []
        if self.adversary is not None:
            view = AdversaryView(
                n=self.n,
                channels=self.channels,
                t=self.t,
                round_index=self._round_index,
                history=self.trace,
                meta=meta,
            )
            adversary_txs = list(self.adversary.act(view))
            self._validate_adversary(adversary_txs)

        # Per-channel resolution over *touched* channels only.  Untouched
        # channels carry silence, which listeners observe as ``None``.
        transmitters: dict[int, list[Message | Jam]] = {}
        honest_tx = 0
        listens = 0
        for action in actions.values():
            if isinstance(action, Transmit):
                honest_tx += 1
                transmitters.setdefault(action.channel, []).append(
                    action.message
                )
            elif isinstance(action, Listen):
                listens += 1
        adversary_channels: set[int] = set()
        for tx in adversary_txs:
            adversary_channels.add(tx.channel)
            transmitters.setdefault(tx.channel, []).append(tx.payload)

        delivered: dict[int, Message | None] = {}
        deliveries = 0
        spoofs = 0
        for channel, payloads in transmitters.items():
            if len(payloads) == 1 and isinstance(payloads[0], Message):
                delivered[channel] = payloads[0]
                deliveries += 1
                if channel in adversary_channels:
                    # The sole (decoded) transmission came from the
                    # adversary: a successful spoof at the radio level.
                    spoofs += 1
            else:
                delivered[channel] = None
                if len(payloads) >= 2:
                    self.metrics.collisions += 1

        # Bookkeeping.
        self.metrics.rounds += 1
        self.metrics.honest_transmissions += honest_tx
        self.metrics.listens += listens
        self.metrics.adversary_transmissions += len(adversary_txs)
        self.metrics.deliveries += deliveries
        self.metrics.spoofs_delivered += spoofs
        if meta.phase:
            self.metrics.note_phase(meta.phase)

        # The round record (and its dense per-channel delivery map) is built
        # only when something will actually retain it; pure benchmark runs
        # with keep_trace=False skip the construction entirely.
        if self._keep_trace or (
            self.adversary is not None and self.adversary.needs_history
        ):
            self.trace.append(
                RoundRecord(
                    index=self._round_index,
                    actions=dict(actions),
                    adversary_transmissions=tuple(adversary_txs),
                    delivered={
                        channel: delivered.get(channel)
                        for channel in range(self.channels)
                    },
                    meta=meta.as_dict(),
                )
            )
        self._round_index += 1

        # Per-listener results.
        results: dict[int, Message | None] = {}
        for node, action in actions.items():
            if isinstance(action, Listen):
                results[node] = delivered.get(action.channel)
        return results

    def execute_rounds(
        self,
        batch: "Iterable[tuple[Mapping[int, Action], RoundMeta | None]]",
    ) -> list[dict[int, Message | None]]:
        """Resolve a precomputed sequence of rounds back-to-back.

        Protocols that derive a whole schedule up front (fixed epochs,
        deterministic sweeps) can submit it in one call instead of paying
        the per-round dispatch in their own loop.  Each entry is an
        ``(actions, meta)`` pair resolved exactly as by
        :meth:`execute_round` — including adversary interaction per round —
        and the per-listener result dicts are returned in order.
        """
        execute = self.execute_round
        return [execute(actions, meta) for actions, meta in batch]
