"""The synchronous radio network simulator.

:class:`RadioNetwork` resolves one round at a time.  The contract follows
Section 3 of the paper exactly:

* every honest node submits one :class:`~repro.radio.actions.Action`;
* the adversary — asked *after* the honest actions are fixed but shown only
  past history plus deterministic public metadata — submits up to ``t``
  transmissions on distinct channels;
* per channel: exactly one transmission ⇒ listeners decode it (if it is a
  message rather than noise); zero or several ⇒ listeners hear nothing.
  Listeners cannot distinguish silence, collision, and pure noise.

The adversary's one-round observation delay is enforced structurally: the
view object handed to the adversary contains the trace of *completed* rounds
only, alongside the current round's public ``meta`` (which the adversary
could derive itself, since protocols are known and their deterministic
schedule depends only on public history).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping, Sequence

from ..errors import ConfigurationError, ProtocolViolation
from ..params import ProtocolParameters, DEFAULT_PARAMETERS, validate_model
from .actions import Action, Listen, Sleep, Transmit
from .messages import Jam, Message, Transmission
from .metrics import NetworkMetrics, frame_size, payload_size
from .trace import ExecutionTrace, RoundRecord, SparseDelivered

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..adversary.base import Adversary


@dataclass(frozen=True)
class RoundMeta:
    """Public, deterministic annotations attached to a round.

    ``phase`` labels the protocol phase (for metrics and adversaries);
    ``schedule`` optionally exposes the deterministic broadcast schedule of
    the round.  Exposing the schedule is not a leak: the paper's adversary
    knows the protocol and all past randomness, so anything deterministic
    given public history is already in its knowledge.
    """

    phase: str = ""
    schedule: Mapping[str, Any] | None = None
    extra: Mapping[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """Flatten into the dict stored on the round record."""
        out: dict[str, Any] = {"phase": self.phase}
        if self.schedule is not None:
            out["schedule"] = self.schedule
        out.update(self.extra)
        return out


@dataclass(frozen=True)
class AdversaryView:
    """Everything the adversary may legitimately observe before acting.

    Attributes
    ----------
    n, channels, t:
        The public model parameters.
    round_index:
        Index of the round about to be resolved.
    history:
        The full trace of completed rounds — including every honest node's
        past actions and random choices, per the paper's assumption that
        "at the end of each round, the adversary learns all random choices
        made in all completed rounds".
    meta:
        The current round's public metadata (phase, deterministic schedule).
    """

    n: int
    channels: int
    t: int
    round_index: int
    history: ExecutionTrace
    meta: RoundMeta


@dataclass(frozen=True)
class CompiledRound:
    """One precompiled round of a :class:`RoundSchedule`.

    Attributes
    ----------
    transmits:
        ``node -> Transmit``.  Rounds that share a *static transmitter
        template* (e.g. the witnesses of one feedback slot, identical over
        every repetition) may reference the **same** mapping object — the
        engine validates each distinct mapping once, not once per round.
    listens:
        ``channel -> ordered listener node ids``.  Grouping listeners by
        channel is what makes lazy resolution possible: a channel's
        delivery is computed once, silent channels cost nothing, and the
        engine never touches individual listeners unless a trace record is
        being built.
    meta:
        Round metadata, exactly as for :meth:`RadioNetwork.execute_round`.
    listen_count:
        Total listener count, precomputed so per-round metric bookkeeping
        stays O(1) in the population size.
    """

    transmits: Mapping[int, Transmit]
    listens: Mapping[int, Sequence[int]]
    meta: RoundMeta
    listen_count: int

    @classmethod
    def make(
        cls,
        transmits: Mapping[int, Transmit],
        listens: Mapping[int, Sequence[int]],
        meta: RoundMeta | None = None,
    ) -> "CompiledRound":
        """Build a round, deriving ``listen_count`` from the groups."""
        return cls(
            transmits=transmits,
            listens=listens,
            meta=meta or RoundMeta(),
            listen_count=sum(len(group) for group in listens.values()),
        )

    def as_actions(self) -> dict[int, Action]:
        """Expand into the per-node action map of the classic interface."""
        actions: dict[int, Action] = dict(self.transmits)
        for channel, group in self.listens.items():
            listen = Listen(channel)
            for node in group:
                actions[node] = listen
        return actions


class RoundSchedule:
    """A precompiled, data-independent batch of rounds.

    Protocols whose round structure is *oblivious* — fixed repetition
    loops, deterministic sweeps, precomputed random hop sequences — compile
    the whole loop once and submit it through
    :meth:`RadioNetwork.execute_schedule`.  The engine then resolves each
    round at a cost proportional to the transmitters and the *touched*
    channels, not to the population or the channel count: listeners are
    settled per channel group, and a listener on a silent channel costs no
    per-node work at all.

    A schedule is a plain value (picklable when its messages are), which is
    what makes it a unit of work that can later be fanned out to worker
    processes.
    """

    __slots__ = ("rounds",)

    def __init__(self, rounds: Iterable[CompiledRound]) -> None:
        self.rounds = tuple(rounds)

    def __len__(self) -> int:
        return len(self.rounds)

    def __iter__(self) -> Iterator[CompiledRound]:
        return iter(self.rounds)

    def as_action_batches(
        self,
    ) -> list[tuple[dict[int, Action], RoundMeta]]:
        """The classic ``(actions, meta)`` expansion of every round.

        Used by the compatibility fallback for :class:`RadioNetwork`
        subclasses that customise :meth:`RadioNetwork.execute_round`, and
        by equivalence tests.
        """
        return [(cr.as_actions(), cr.meta) for cr in self.rounds]


class RadioNetwork:
    """Round-based simulator for the multi-channel radio model.

    Parameters
    ----------
    n:
        Number of honest nodes, with ids ``0 .. n-1``.
    channels:
        Number of channels ``C``; channels are ids ``0 .. C-1``.
    t:
        Adversary budget: distinct channels it may transmit on per round.
    adversary:
        Strategy object implementing
        :class:`repro.adversary.base.Adversary`; ``None`` means no adversary.
    params:
        Protocol constants (used here only for the round cap).
    keep_trace:
        When ``False``, round records are not retained (metrics still are);
        long benchmark runs use this to bound memory.  Note that adversaries
        needing history force ``keep_trace=True``.
    """

    def __init__(
        self,
        n: int,
        channels: int,
        t: int,
        adversary: "Adversary | None" = None,
        *,
        params: ProtocolParameters = DEFAULT_PARAMETERS,
        keep_trace: bool = True,
    ) -> None:
        validate_model(n, channels, t)
        self.n = n
        self.channels = channels
        self.t = t
        self.params = params
        self.adversary = adversary
        self._keep_trace = keep_trace
        if adversary is not None and adversary.needs_history and not keep_trace:
            raise ConfigurationError(
                "adversary requires history but keep_trace=False"
            )
        self.trace = ExecutionTrace()
        self.metrics = NetworkMetrics()
        self._round_index = 0
        # One shared view instance, reused across rounds for adversaries
        # that declare ``reusable_view`` (see Adversary.reusable_view).
        self._shared_view: AdversaryView | None = None

    @property
    def round_index(self) -> int:
        """Index of the next round to execute."""
        return self._round_index

    # ------------------------------------------------------------------

    def _validate_actions(self, actions: Mapping[int, Action]) -> None:
        for node, action in actions.items():
            if not 0 <= node < self.n:
                raise ProtocolViolation(f"unknown node id {node}")
            if isinstance(action, (Transmit, Listen)):
                if not 0 <= action.channel < self.channels:
                    raise ProtocolViolation(
                        f"node {node} used invalid channel {action.channel} "
                        f"(C={self.channels})"
                    )
            elif not isinstance(action, Sleep):
                raise ProtocolViolation(
                    f"node {node} submitted unknown action {action!r}"
                )

    def _validate_adversary(self, txs: list[Transmission]) -> None:
        seen: set[int] = set()
        for tx in txs:
            if not 0 <= tx.channel < self.channels:
                raise ProtocolViolation(
                    f"adversary used invalid channel {tx.channel}"
                )
            if tx.channel in seen:
                raise ProtocolViolation(
                    f"adversary transmitted twice on channel {tx.channel}"
                )
            seen.add(tx.channel)
        if len(seen) > self.t:
            raise ProtocolViolation(
                f"adversary transmitted on {len(seen)} channels; budget t={self.t}"
            )

    # ------------------------------------------------------------------

    def _adversary_view(self, meta: RoundMeta) -> AdversaryView:
        """The view handed to the adversary for the round about to resolve.

        Adversaries that declare :attr:`~repro.adversary.base.Adversary.
        reusable_view` get **one** view object whose ``round_index`` and
        ``meta`` are advanced in place each round (the population fields
        are constant and ``history`` is the live trace, which mutates as
        rounds complete) — removing the last per-round allocation on
        adversarial hot paths.  Everyone else gets a fresh frozen view.
        """
        if getattr(self.adversary, "reusable_view", False):
            view = self._shared_view
            if view is None:
                view = AdversaryView(
                    n=self.n,
                    channels=self.channels,
                    t=self.t,
                    round_index=self._round_index,
                    history=self.trace,
                    meta=meta,
                )
                self._shared_view = view
            else:
                object.__setattr__(view, "round_index", self._round_index)
                object.__setattr__(view, "meta", meta)
            return view
        return AdversaryView(
            n=self.n,
            channels=self.channels,
            t=self.t,
            round_index=self._round_index,
            history=self.trace,
            meta=meta,
        )

    def _decode_channels(
        self,
        transmitters: Mapping[int, list],
        adversary_channels: "set[int]",
    ) -> tuple[dict[int, Message | None], int, int]:
        """Resolve every touched channel by the single-transmitter rule.

        The one decode-and-account step shared by :meth:`execute_round`
        and :meth:`execute_schedule` — exactly one decodable transmission
        on a channel delivers it (counting a spoof when that transmission
        was the adversary's), anything else is silence or a collision.
        Returns ``(delivered, deliveries, spoofs)``; collisions are
        counted directly on the metrics.
        """
        delivered: dict[int, Message | None] = {}
        deliveries = 0
        spoofs = 0
        for channel, payloads in transmitters.items():
            if len(payloads) == 1 and isinstance(payloads[0], Message):
                delivered[channel] = payloads[0]
                deliveries += 1
                if channel in adversary_channels:
                    # The sole (decoded) transmission came from the
                    # adversary: a successful spoof at the radio level.
                    spoofs += 1
            else:
                delivered[channel] = None
                if len(payloads) >= 2:
                    self.metrics.collisions += 1
        return delivered, deliveries, spoofs

    def execute_round(
        self,
        actions: Mapping[int, Action],
        meta: RoundMeta | None = None,
    ) -> dict[int, Message | None]:
        """Resolve one synchronous round.

        ``actions`` may be *sparse*: nodes absent from the mapping sleep.
        Submitting only the non-sleeping nodes is the fast path — resolution
        cost is proportional to the number of active nodes and touched
        channels, not to ``n`` or ``C``.  Explicit :class:`Sleep` entries
        remain accepted (and are recorded verbatim when tracing), so dense
        legacy callers resolve identically.

        Returns a dict mapping every *listening* node to what it received
        (``None`` for silence/collision/noise).  Nodes that transmitted or
        slept are absent from the result.
        """
        if (
            self.params.max_rounds is not None
            and self._round_index >= self.params.max_rounds
        ):
            raise ProtocolViolation(
                f"round cap exceeded ({self.params.max_rounds} rounds); "
                "likely a non-terminating configuration"
            )
        meta = meta or RoundMeta()
        if self.params.validate_actions:
            self._validate_actions(actions)

        adversary_txs: list[Transmission] = []
        if self.adversary is not None:
            adversary_txs = list(self.adversary.act(self._adversary_view(meta)))
            self._validate_adversary(adversary_txs)

        # Per-channel resolution over *touched* channels only.  Untouched
        # channels carry silence, which listeners observe as ``None``.
        transmitters: dict[int, list[Message | Jam]] = {}
        honest_tx = 0
        listens = 0
        payload_units = 0
        meter = self.params.meter_payloads
        for action in actions.values():
            if isinstance(action, Transmit):
                honest_tx += 1
                if meter:
                    # frame_size, inlined: one unit of kind + the payload.
                    payload_units += 1 + payload_size(action.message.payload)
                transmitters.setdefault(action.channel, []).append(
                    action.message
                )
            elif isinstance(action, Listen):
                listens += 1
        adversary_channels: set[int] = set()
        for tx in adversary_txs:
            adversary_channels.add(tx.channel)
            transmitters.setdefault(tx.channel, []).append(tx.payload)

        delivered, deliveries, spoofs = self._decode_channels(
            transmitters, adversary_channels
        )

        # Bookkeeping.
        self.metrics.rounds += 1
        self.metrics.honest_transmissions += honest_tx
        self.metrics.listens += listens
        self.metrics.payload_units += payload_units
        self.metrics.adversary_transmissions += len(adversary_txs)
        self.metrics.deliveries += deliveries
        self.metrics.spoofs_delivered += spoofs
        if meta.phase:
            self.metrics.note_phase(meta.phase)

        # The round record (and its dense per-channel delivery map) is built
        # only when something will actually retain it; pure benchmark runs
        # with keep_trace=False skip the construction entirely.
        if self._keep_trace or (
            self.adversary is not None and self.adversary.needs_history
        ):
            self.trace.append(
                RoundRecord(
                    index=self._round_index,
                    actions=dict(actions),
                    adversary_transmissions=tuple(adversary_txs),
                    delivered=SparseDelivered(delivered, self.channels),
                    meta=meta.as_dict(),
                )
            )
        self._round_index += 1

        # Per-listener results.
        results: dict[int, Message | None] = {}
        for node, action in actions.items():
            if isinstance(action, Listen):
                results[node] = delivered.get(action.channel)
        return results

    def execute_rounds(
        self,
        batch: "RoundSchedule | Iterable[tuple[Mapping[int, Action], RoundMeta | None]]",
    ) -> list[dict[int, Message | None]]:
        """Resolve a precomputed sequence of rounds back-to-back.

        Protocols that derive a whole schedule up front (fixed epochs,
        deterministic sweeps) can submit it in one call instead of paying
        the per-round dispatch in their own loop.  Each entry is an
        ``(actions, meta)`` pair resolved exactly as by
        :meth:`execute_round` — including adversary interaction per round —
        and the per-listener result dicts are returned in order.

        A precompiled :class:`RoundSchedule` is also accepted: it runs
        through the :meth:`execute_schedule` fast path and the per-channel
        results are expanded back into the same per-listener dicts this
        method always returns, so the result contract is shape-stable
        regardless of the submission style.  Callers wanting the raw
        channel-level results (no per-listener fan-out cost) use
        :meth:`execute_schedule` directly.
        """
        if isinstance(batch, RoundSchedule):
            out: list[dict[int, Message | None]] = []
            for cr, heard in zip(batch.rounds, self.execute_schedule(batch)):
                results: dict[int, Message | None] = {}
                for channel, group in cr.listens.items():
                    msg = heard.get(channel)
                    for node in group:
                        results[node] = msg
                out.append(results)
            return out
        execute = self.execute_round
        return [execute(actions, meta) for actions, meta in batch]

    # ------------------------------------------------------------------
    # The compiled-schedule fast path.
    # ------------------------------------------------------------------

    def _validate_compiled(
        self, cr: CompiledRound, validated_transmits: set[int]
    ) -> None:
        """Validate one compiled round.

        Transmitter maps shared across rounds (the static template of a
        repetition loop) are validated once per :meth:`execute_schedule`
        call, keyed by object identity — the schedule keeps them alive, so
        ids are stable for the duration of the call.
        """
        if id(cr.transmits) not in validated_transmits:
            validated_transmits.add(id(cr.transmits))
            for node, action in cr.transmits.items():
                if not 0 <= node < self.n:
                    raise ProtocolViolation(f"unknown node id {node}")
                if not isinstance(action, Transmit):
                    raise ProtocolViolation(
                        f"compiled transmit map holds {action!r} for node "
                        f"{node}; only Transmit actions belong there"
                    )
                if not 0 <= action.channel < self.channels:
                    raise ProtocolViolation(
                        f"node {node} used invalid channel {action.channel} "
                        f"(C={self.channels})"
                    )
        listeners_seen: set[int] = set()
        listener_total = 0
        for channel, group in cr.listens.items():
            if not 0 <= channel < self.channels:
                raise ProtocolViolation(
                    f"listeners grouped on invalid channel {channel} "
                    f"(C={self.channels})"
                )
            if not group:
                continue
            # min/max and the set ops below run at C speed; only dig for
            # the per-node culprit on failure.
            if not (0 <= min(group) and max(group) < self.n):
                bad = next(n for n in group if not 0 <= n < self.n)
                raise ProtocolViolation(f"unknown node id {bad}")
            listeners_seen.update(group)
            listener_total += len(group)
        # One action per node per round: a node may listen at most once and
        # may not both transmit and listen (states the per-node action API
        # cannot even represent must stay unrepresentable here too).
        if len(listeners_seen) != listener_total:
            raise ProtocolViolation(
                "compiled round schedules a node in two listener groups"
            )
        if cr.listen_count != listener_total:
            raise ProtocolViolation(
                f"compiled round declares listen_count={cr.listen_count} "
                f"but its groups hold {listener_total} listeners "
                "(build rounds with CompiledRound.make)"
            )
        if cr.transmits and not listeners_seen.isdisjoint(cr.transmits):
            bad = sorted(listeners_seen & set(cr.transmits))[0]
            raise ProtocolViolation(
                f"node {bad} is scheduled to both transmit and listen"
            )

    def execute_schedule(
        self, schedule: "RoundSchedule"
    ) -> list[dict[int, Message]]:
        """Resolve a precompiled :class:`RoundSchedule`.

        Returns one dict per round mapping **channel** to the message
        decoded on it, containing entries only for channels that (a) had at
        least one scheduled listener and (b) delivered a message.  Callers
        fan results out to their listeners themselves (they compiled the
        listener groups, so they know them) — this is what lets a round
        with ``n`` listeners on silent or collided channels resolve without
        any per-listener work.

        Adversary interaction, metrics, the round cap, and trace retention
        behave exactly as in :meth:`execute_round`: per-round records (with
        full per-node action maps) are reconstructed whenever the trace is
        retained, so traced executions are indistinguishable from the
        per-round path.
        """
        if type(self).execute_round is not RadioNetwork.execute_round:
            # A subclass customises round resolution (e.g. the
            # restricted-listening model): preserve its semantics by
            # expanding each compiled round through the classic interface.
            # Contract: like the base model, an override must resolve all
            # listeners on one channel identically (the radio medium has
            # no per-listener state); the channel-level result is read
            # from the group's first listener.  An override with
            # per-listener semantics must override this method too.
            out: list[dict[int, Message]] = []
            for cr in schedule.rounds:
                results = self.execute_round(cr.as_actions(), cr.meta)
                heard: dict[int, Message] = {}
                for channel, group in cr.listens.items():
                    if group:
                        msg = results.get(group[0])
                        if msg is not None:
                            heard[channel] = msg
                out.append(heard)
            return out

        validate = self.params.validate_actions
        meter_payloads = self.params.meter_payloads
        validated_transmits: set[int] = set()
        # Payload accounting per distinct transmitter template: a static
        # template shared by every repetition of a transfer is sized once
        # (same id-keyed caching as validation), so per-round bookkeeping
        # stays O(1) even for large knowledge frames.
        template_sizes: dict[int, int] = {}
        keep_records = self._keep_trace or (
            self.adversary is not None and self.adversary.needs_history
        )
        max_rounds = self.params.max_rounds
        metrics = self.metrics
        outputs: list[dict[int, Message]] = []

        for cr in schedule.rounds:
            if max_rounds is not None and self._round_index >= max_rounds:
                raise ProtocolViolation(
                    f"round cap exceeded ({max_rounds} rounds); "
                    "likely a non-terminating configuration"
                )
            if validate:
                self._validate_compiled(cr, validated_transmits)

            adversary_txs: list[Transmission] = []
            if self.adversary is not None:
                adversary_txs = list(
                    self.adversary.act(self._adversary_view(cr.meta))
                )
                self._validate_adversary(adversary_txs)

            # Channel resolution over touched channels only.
            transmitters: dict[int, list[Message | Jam]] = {}
            for action in cr.transmits.values():
                transmitters.setdefault(action.channel, []).append(
                    action.message
                )
            adversary_channels: set[int] = set()
            for tx in adversary_txs:
                adversary_channels.add(tx.channel)
                transmitters.setdefault(tx.channel, []).append(tx.payload)

            delivered, deliveries, spoofs = self._decode_channels(
                transmitters, adversary_channels
            )

            if meter_payloads:
                payload_units = template_sizes.get(id(cr.transmits))
                if payload_units is None:
                    payload_units = sum(
                        frame_size(action.message)
                        for action in cr.transmits.values()
                    )
                    template_sizes[id(cr.transmits)] = payload_units
            else:
                payload_units = 0

            metrics.rounds += 1
            metrics.honest_transmissions += len(cr.transmits)
            metrics.listens += cr.listen_count
            metrics.payload_units += payload_units
            metrics.adversary_transmissions += len(adversary_txs)
            metrics.deliveries += deliveries
            metrics.spoofs_delivered += spoofs
            if cr.meta.phase:
                metrics.note_phase(cr.meta.phase)

            if keep_records:
                self.trace.append(
                    RoundRecord(
                        index=self._round_index,
                        actions=cr.as_actions(),
                        adversary_transmissions=tuple(adversary_txs),
                        delivered=SparseDelivered(delivered, self.channels),
                        meta=cr.meta.as_dict(),
                    )
                )
            self._round_index += 1

            # Lazy listener settlement: only channels that both carried a
            # decodable message and have listeners produce an entry.
            heard: dict[int, Message] = {}
            listens = cr.listens
            if deliveries:
                for channel, msg in delivered.items():
                    if msg is not None and channel in listens:
                        heard[channel] = msg
            outputs.append(heard)
        return outputs
