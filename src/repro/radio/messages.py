"""Message and jamming payload types for the radio model.

A :class:`Message` is what a listener decodes when a transmission succeeds.
Crucially — per Section 3 of the paper — the ``sender`` field is a *claim*,
not a fact: communication is unauthenticated, so a spoofing adversary can put
any node id in ``sender``.  Protocol code must never trust it except when the
round's broadcast schedule makes spoofing impossible (the paper's first
insight: on a fully scheduled round, an adversary transmission can only cause
a collision, never a spoof).

:class:`Jam` models undecodable noise.  A jam never reaches a listener as a
message; its only effect is to collide with concurrent transmissions (or to
occupy an otherwise-empty channel with noise, which listeners cannot
distinguish from silence because the model has no collision detection).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Message:
    """A decodable radio frame.

    Attributes
    ----------
    kind:
        Protocol-level frame type, e.g. ``"ame-data"``, ``"feedback-true"``.
        Using explicit kinds lets receivers discard frames that cannot belong
        to the current phase.
    sender:
        The *claimed* origin.  Never authenticated by the channel itself.
    payload:
        Arbitrary protocol content.  Must be treated as attacker-controlled
        unless the schedule authenticates the round.
    """

    kind: str
    sender: int | None = None
    payload: Any = None

    def __repr__(self) -> str:  # compact, trace-friendly
        return f"Message({self.kind!r}, from={self.sender}, {self.payload!r})"


DELTA_KIND = "knowledge-delta"
"""Frame kind carrying a :class:`DeltaFrame` payload."""


@dataclass(frozen=True)
class DeltaFrame:
    """Digest/delta encoding of a knowledge broadcast.

    The parallel feedback merge historically shipped a full ``slot -> flag``
    map in every frame, paying O(frame) message size per transmission and
    O(frame) ``dict.update`` per listener per decode.  A delta frame ships
    the same *information* in compressed form:

    ``tag``
        The transfer identifier (merge-tree level and direction), exactly as
        on the full-frame encoding — receivers discard frames from other
        transfers.
    ``digest``
        Digest of the frame's full slot coverage (an incremental
        :class:`~repro.fame.digests.SlotSetDigest` value).  Receivers verify
        the delta against it before applying, and use it as an O(1)
        already-applied key so repeated decodes of the same transfer cost no
        per-slot work.
    ``true_slots``
        The delta payload: exactly the slots whose flag is true — the only
        entries that can ever change a receiver's output set ``D``.  False
        flags are never shipped; a frame's knowledge is the slot set itself.
    ``full``
        Normally ``None``.  When a receiver detects a digest mismatch (the
        delta does not hash to ``digest``), a frame carrying the explicit
        ``(slot, flag)`` items is the *full-frame resync* escape hatch: the
        receiver abandons the delta machinery for this frame and applies the
        uncompressed items, exactly as the reference encoding would.

    Like every radio payload, all fields are attacker-influencable unless
    the round's broadcast schedule makes spoofing impossible; the digest is
    an integrity check against encoding bugs and forged deltas, not an
    authenticator.
    """

    tag: Any
    digest: bytes
    true_slots: tuple[int, ...]
    full: tuple[tuple[int, bool], ...] | None = None

    def wire_size(self) -> int:
        """Wire size in the units of :func:`repro.radio.metrics.payload_size`.

        One unit per true slot plus one for the (constant-size) digest and
        the tag's own units; a resync frame additionally pays the full
        item list it carries.
        """
        from .metrics import payload_size

        size = payload_size(self.tag) + 1 + len(self.true_slots)
        if self.full is not None:
            size += 2 * len(self.full)
        return size

    def __repr__(self) -> str:  # compact, trace-friendly
        resync = ", resync" if self.full is not None else ""
        return (
            f"DeltaFrame({self.tag!r}, true={self.true_slots!r}, "
            f"digest={self.digest[:4].hex()}…{resync})"
        )


@dataclass(frozen=True)
class Jam:
    """Undecodable noise injected by the adversary.

    The ``note`` is metadata for traces/debugging only; it is never visible
    to honest nodes.
    """

    note: str = ""

    def __repr__(self) -> str:
        return f"Jam({self.note!r})" if self.note else "Jam()"


JAM = Jam()
"""A shared default jam payload, for adversaries that don't annotate jams."""


@dataclass(frozen=True)
class Transmission:
    """An (channel, payload) pair offered to the medium in one round."""

    channel: int
    payload: Message | Jam = field(default=JAM)

    @property
    def is_jam(self) -> bool:
        """True when the payload is noise rather than a decodable message."""
        return isinstance(self.payload, Jam)
