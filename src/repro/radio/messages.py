"""Message and jamming payload types for the radio model.

A :class:`Message` is what a listener decodes when a transmission succeeds.
Crucially — per Section 3 of the paper — the ``sender`` field is a *claim*,
not a fact: communication is unauthenticated, so a spoofing adversary can put
any node id in ``sender``.  Protocol code must never trust it except when the
round's broadcast schedule makes spoofing impossible (the paper's first
insight: on a fully scheduled round, an adversary transmission can only cause
a collision, never a spoof).

:class:`Jam` models undecodable noise.  A jam never reaches a listener as a
message; its only effect is to collide with concurrent transmissions (or to
occupy an otherwise-empty channel with noise, which listeners cannot
distinguish from silence because the model has no collision detection).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Message:
    """A decodable radio frame.

    Attributes
    ----------
    kind:
        Protocol-level frame type, e.g. ``"ame-data"``, ``"feedback-true"``.
        Using explicit kinds lets receivers discard frames that cannot belong
        to the current phase.
    sender:
        The *claimed* origin.  Never authenticated by the channel itself.
    payload:
        Arbitrary protocol content.  Must be treated as attacker-controlled
        unless the schedule authenticates the round.
    """

    kind: str
    sender: int | None = None
    payload: Any = None

    def __repr__(self) -> str:  # compact, trace-friendly
        return f"Message({self.kind!r}, from={self.sender}, {self.payload!r})"


@dataclass(frozen=True)
class Jam:
    """Undecodable noise injected by the adversary.

    The ``note`` is metadata for traces/debugging only; it is never visible
    to honest nodes.
    """

    note: str = ""

    def __repr__(self) -> str:
        return f"Jam({self.note!r})" if self.note else "Jam()"


JAM = Jam()
"""A shared default jam payload, for adversaries that don't annotate jams."""


@dataclass(frozen=True)
class Transmission:
    """An (channel, payload) pair offered to the medium in one round."""

    channel: int
    payload: Message | Jam = field(default=JAM)

    @property
    def is_jam(self) -> bool:
        """True when the payload is noise rather than a decodable message."""
        return isinstance(self.payload, Jam)
