"""The synchronous multi-channel single-hop radio network substrate.

This subpackage implements the communication model of Section 3 of the paper
verbatim:

* ``n`` nodes, ``C > 1`` channels, synchronous rounds, all nodes start
  together;
* each round a node transmits **or** receives on a single channel (or
  sleeps);
* exactly one transmitter on a channel ⇒ every listener on that channel
  receives the transmission; zero or two-plus transmitters ⇒ listeners
  receive nothing;
* no collision detection — silence and collision are indistinguishable;
* a malicious adversary may transmit on up to ``t < C`` channels per round
  (jamming and/or spoofing) and observes everything with one round of delay.
"""

from .actions import SLEEP, Action, Listen, Sleep, Transmit
from .messages import DELTA_KIND, JAM, DeltaFrame, Jam, Message
from .network import (
    AdversaryView,
    CompiledRound,
    RadioNetwork,
    RoundMeta,
    RoundSchedule,
)
from .shapes import BucketBlock, ScheduleShapeCache
from .trace import ExecutionTrace, RoundRecord, SparseDelivered
from .metrics import NetworkMetrics, frame_size, payload_size
from .export import channel_occupancy, dump_trace, trace_to_records

__all__ = [
    "Action",
    "AdversaryView",
    "BucketBlock",
    "CompiledRound",
    "DELTA_KIND",
    "DeltaFrame",
    "ExecutionTrace",
    "JAM",
    "Jam",
    "Listen",
    "Message",
    "NetworkMetrics",
    "RadioNetwork",
    "RoundMeta",
    "RoundRecord",
    "RoundSchedule",
    "SLEEP",
    "ScheduleShapeCache",
    "Sleep",
    "SparseDelivered",
    "Transmit",
    "channel_occupancy",
    "dump_trace",
    "frame_size",
    "payload_size",
    "trace_to_records",
]
