"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.  The
sub-classes separate the three broad failure domains: configuration problems
(caller error), protocol-rule violations (the simulation detected behaviour
that the paper's model forbids), and simulation-state problems (the whp
guarantees of the paper were violated in a particular random execution).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """Raised when caller-supplied parameters are invalid or inconsistent.

    Examples: ``t >= C``, a population too small for the witness assignment
    (the paper requires ``n > 3(t+1)^2 + 2(t+1)``), or a malformed edge set.
    """


class ProtocolViolation(ReproError):
    """Raised when a component breaks the rules of the model.

    Examples: an adversary attempting to transmit on more than ``t`` channels
    in a round, a node transmitting and listening simultaneously, or a game
    proposal violating Restrictions 1-4 of the starred-edge removal game.
    """


class GameRuleViolation(ProtocolViolation):
    """Raised when a starred-edge-removal-game move is illegal."""


class ScheduleError(ProtocolViolation):
    """Raised when a proposal cannot be mapped onto channels.

    Examples: a proposal whose source must both broadcast and listen without
    being starred (so no surrogate is available), or a population too small
    to fill every witness group.  Proposals produced by the greedy strategy
    on a validated configuration are always schedulable; this error flags
    hand-crafted proposals or mis-sized populations.
    """


class SimulationDiverged(ReproError):
    """Raised when the distributed simulation loses consistency.

    f-AME relies on a with-high-probability agreement (Lemma 5) between all
    nodes on the referee's response.  When an execution falls into the low
    probability failure event and node states diverge, the driver raises this
    exception (or records it, depending on
    :attr:`repro.params.ProtocolParameters.strict_consistency`).
    """


class DispatchError(ReproError):
    """Raised when a trial-dispatch backend cannot complete its batch.

    Examples: every socket worker died with trials still queued, a frame
    exceeded the wire-size cap, or the coordinator sat idle past its
    timeout with results outstanding.  Completed trials are never lost to
    this error — anything already journalled stays journalled, so a
    ``--resume`` picks up where the failed batch stopped.
    """


class SweepInterrupted(ReproError):
    """Raised when a dispatch run is stopped early on purpose.

    Carries ``completed`` (trial results applied before the stop, in index
    order) so callers can render a partial report.  This is the controlled
    counterpart of :class:`DispatchError`: the stop predicate handed to
    ``DispatchBackend.run`` asked to halt (e.g. the CLI's ``--stop-after``
    fault-injection flag), nothing failed.
    """

    def __init__(self, message: str, completed: tuple = ()) -> None:
        super().__init__(message)
        self.completed = tuple(completed)


class ServiceError(ReproError):
    """A typed failure from the key-service layer (:mod:`repro.serve`).

    Carries a machine-readable ``code`` (``busy``, ``unknown-session``,
    ``not-a-member``, ``bad-request``, ...; the catalog lives in
    :mod:`repro.serve.protocol`) so daemon failure frames round-trip the
    wire as data, never as raw exceptions: the daemon maps every
    service-layer refusal to exactly one ``fail`` frame, and
    :class:`~repro.serve.client.ServiceClient` re-raises it as this type
    with the code intact.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.detail = message


class ScenarioError(ConfigurationError):
    """Raised for attack-scenario registry misuse (:mod:`repro.scenarios`).

    Examples: looking up a scenario name that was never registered,
    registering two scenarios under one name, or declaring a scenario
    without a typed expected outcome.  A :class:`ConfigurationError`
    subtype so sweep/CLI surfaces that already map configuration
    problems to exit code 2 keep doing so for scenario workloads.
    """


class CryptoError(ReproError):
    """Raised for failures in the from-scratch crypto substrate.

    Examples: ciphertext authentication failure, invalid Diffie-Hellman
    public value (out of range or degenerate), or malformed key material.
    """
