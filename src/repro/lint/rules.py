"""The :mod:`repro.lint` rule catalog.

Each rule is a small AST check with a stable id, grouped in three families
(see ``docs/LINT.md`` for the full rationale of every id):

* ``DET0xx`` — determinism: the repository's central invariant is that
  every run is replayable bit-for-bit from one integer seed (serial ==
  parallel == socket reports, block draws == sequential draws, trial seeds
  a pure function of the trial index).  These rules ban the constructs
  that quietly break it: ad-hoc ``random`` access, unordered-set
  iteration, wall-clock/environment reads, ``PYTHONHASHSEED``-perturbed
  ``hash()``.
* ``WIRE0xx`` — wire safety: frames that cross a process boundary must go
  through the restricted unpickler (:mod:`repro.dispatch.wire`) and carry
  honest payload metering.
* ``API0xx`` — API discipline: the picklable dataclasses that ride the
  wire must stay picklable and hashable, and seeds must be derived through
  :class:`repro.rng.RngRegistry`, never ad-hoc arithmetic.
* ``SCN0xx`` — scenario-registry discipline: every
  :mod:`repro.scenarios` registration must declare the typed outcome it
  asserts, or the byzantine gauntlet degrades into a smoke test.

Rules are *syntactic*: they resolve imported names (``import random as r``
still flags ``r.Random()``) but do no data-flow analysis — a set bound to
a variable and iterated later, or a string reaching ``hash()`` through a
name, is not caught.  The fixture tests in ``tests/test_lint.py`` pin each
rule's positive, negative, pragma, and allowlist behaviour.

Module allowlist
----------------
Some modules legitimately own a banned construct; they are exempted here,
centrally and with a recorded reason, instead of scattering pragmas over
code that is *supposed* to use the primitive.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

if TYPE_CHECKING:  # engine imports rules at runtime; annotate only
    from .engine import FileContext

# (line, col, message) triples; the engine stamps path and rule id.
RawFinding = tuple[int, int, str]


class Rule:
    """One lint check.  Subclasses set the class attributes and ``check``.

    ``protocol_only`` scopes a rule to ``repro.*`` modules (``src/``);
    tests and benchmarks legitimately time things and build seeded streams
    by hand, so only the rules whose property must hold *everywhere* (set
    iteration order, wire safety, pragma hygiene) run over them.
    """

    id: str = ""
    title: str = ""
    rationale: str = ""
    protocol_only: bool = False

    def check(self, ctx: "FileContext") -> Iterable[RawFinding]:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Shared AST helpers
# ----------------------------------------------------------------------

_ORDER_FREE_CONSUMERS = frozenset(
    ("sorted", "min", "max", "sum", "any", "all", "set", "frozenset", "len")
)

_SET_METHODS = frozenset(
    ("union", "intersection", "difference", "symmetric_difference")
)

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _is_set_expression(node: ast.expr) -> bool:
    """True when ``node`` is *syntactically* guaranteed to be a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
            return True  # x.union(y) etc. — set algebra as a method call
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return _is_set_expression(node.left) or _is_set_expression(node.right)
    return False


def _contains_seed_name(node: ast.expr) -> bool:
    """True when the expression mentions a ``*seed*``-named identifier."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name) and "seed" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "seed" in sub.attr.lower():
            return True
    return False


def _call_argument(
    node: ast.Call, position: int, keyword: str
) -> ast.expr | None:
    """The argument at ``position`` or passed as ``keyword=``, if any."""
    if len(node.args) > position:
        return node.args[position]
    for kw in node.keywords:
        if kw.arg == keyword:
            return kw.value
    return None


# ----------------------------------------------------------------------
# Determinism family
# ----------------------------------------------------------------------


class Det001RawRandom(Rule):
    id = "DET001"
    title = "raw random access outside the RNG registry"
    rationale = (
        "All protocol randomness must flow through RngRegistry named "
        "streams so an experiment replays bit-for-bit from one seed. "
        "Module-level random.* calls use the unseeded global generator "
        "(never reproducible); Random() without a seed is equally "
        "unreproducible; and even a seeded Random() in protocol code "
        "bypasses the registry's stream separation."
    )

    # Module-level functions of the global generator.  Calling any of
    # these consumes unseeded process-global state.
    _GLOBAL_FNS = frozenset(
        (
            "betavariate", "choice", "choices", "expovariate", "gauss",
            "getrandbits", "paretovariate", "randbytes", "randint",
            "random", "randrange", "sample", "seed", "shuffle",
            "triangular", "uniform", "vonmisesvariate",
        )
    )

    def check(self, ctx: "FileContext") -> Iterator[RawFinding]:
        for node in ctx.walk(ast.Call):
            resolved = ctx.resolve(node.func)
            if resolved is None or not resolved.startswith("random."):
                continue
            attr = resolved[len("random."):]
            if attr in self._GLOBAL_FNS:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"module-level random.{attr}() uses the unseeded "
                    "process-global generator; draw from an "
                    "RngRegistry stream instead",
                )
            elif attr == "Random":
                if not node.args and not node.keywords:
                    yield (
                        node.lineno,
                        node.col_offset,
                        "unseeded random.Random() is never replayable; "
                        "seed it from an RngRegistry-derived value",
                    )
                elif ctx.is_protocol:
                    yield (
                        node.lineno,
                        node.col_offset,
                        "protocol code must obtain streams from "
                        "RngRegistry (stream/fresh/spawn), not construct "
                        "random.Random directly",
                    )


class Det002SetIteration(Rule):
    id = "DET002"
    title = "iteration over an unordered set expression"
    rationale = (
        "Set iteration order depends on insertion history and (for str "
        "keys) PYTHONHASHSEED, so any draw sequence, wire frame, or "
        "fingerprint built from it differs across processes. Wrap the "
        "set in sorted(...) before iterating."
    )

    _MATERIALIZERS = frozenset(("list", "tuple"))

    def check(self, ctx: "FileContext") -> Iterator[RawFinding]:
        message = (
            "iterating a set yields an unstable order (insertion- and "
            "PYTHONHASHSEED-dependent); iterate sorted(...) instead"
        )
        for node in ctx.walk((ast.For, ast.AsyncFor)):
            if _is_set_expression(node.iter):
                yield (node.iter.lineno, node.iter.col_offset, message)
        for node in ctx.walk(
            (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ):
            # A comprehension consumed whole by an order-insensitive
            # callable (sorted, min, sum, set, ...) neutralizes the
            # ordering, so sorted(f(x) for x in some_set) passes.  (A
            # side-effecting element expression could still observe the
            # order — data flow is out of scope; see docs/LINT.md.)
            parent = ctx.parent(node)
            if (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in _ORDER_FREE_CONSUMERS
                and node in parent.args
            ):
                continue
            for generator in node.generators:
                if _is_set_expression(generator.iter):
                    yield (
                        generator.iter.lineno,
                        generator.iter.col_offset,
                        message,
                    )
        for node in ctx.walk(ast.Call):
            # list(set(x)) / tuple(set(x)) materialize the unstable order.
            if not (
                isinstance(node.func, ast.Name)
                and node.func.id in self._MATERIALIZERS
                and len(node.args) == 1
                and _is_set_expression(node.args[0])
            ):
                continue
            parent = ctx.parent(node)
            if (
                isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in _ORDER_FREE_CONSUMERS
            ):
                continue
            yield (
                node.lineno,
                node.col_offset,
                f"{node.func.id}(set(...)) materializes an unstable "
                "order; use sorted(...) instead",
            )


class Det003WallClock(Rule):
    id = "DET003"
    title = "wall-clock/environment read in protocol code"
    rationale = (
        "time.*, datetime.now, os.urandom, uuid.*, secrets.*, and "
        "os.environ make a run depend on when/where it executes. "
        "Protocol and simulation modules must be pure functions of the "
        "seed; only the dispatch control plane (timeouts, batch-cost "
        "EWMAs, worker spawning) may touch the host clock/environment, "
        "and it is allowlisted for exactly that."
    )
    protocol_only = True

    _DATETIME_NOW = frozenset(("now", "utcnow", "today", "fromtimestamp"))

    def check(self, ctx: "FileContext") -> Iterator[RawFinding]:
        for node in ctx.walk(ast.Call):
            resolved = ctx.resolve(node.func)
            if resolved is None:
                continue
            if resolved.startswith("time."):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"{resolved}() reads the host clock; protocol state "
                    "must be a function of the seed only",
                )
            elif resolved.startswith("datetime.") and (
                resolved.rpartition(".")[2] in self._DATETIME_NOW
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"{resolved}() reads the wall clock; protocol state "
                    "must be a function of the seed only",
                )
            elif resolved == "os.urandom":
                yield (
                    node.lineno,
                    node.col_offset,
                    "os.urandom() is OS entropy, never replayable; draw "
                    "from an RngRegistry stream",
                )
            elif resolved.startswith("uuid."):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"{resolved}() derives from host entropy/clock/MAC; "
                    "derive identifiers from the seed instead",
                )
            elif resolved.startswith("secrets."):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"{resolved}() is OS entropy, never replayable; draw "
                    "from an RngRegistry stream",
                )
        for node in ctx.walk(ast.Attribute):
            if ctx.resolve(node) == "os.environ":
                yield (
                    node.lineno,
                    node.col_offset,
                    "os.environ makes behaviour depend on the host "
                    "environment; thread configuration through "
                    "parameters instead",
                )


class Det004StrHash(Rule):
    id = "DET004"
    title = "hash() over str/bytes content"
    rationale = (
        "Builtin hash() of str/bytes is perturbed per-process by "
        "PYTHONHASHSEED, so any such value that is persisted, sent over "
        "the wire, or compared across processes (fingerprints!) silently "
        "diverges. Use hashlib (repro.crypto.hashes / repro.rng."
        "derive_seed) for cross-process identity; hash() of int tuples "
        "(repro.game.graph fingerprints) is stable and untouched."
    )

    _STRINGISH_CALLS = frozenset(("str", "repr", "format", "ascii", "bytes"))
    _STRINGISH_METHODS = frozenset(("encode", "decode", "format", "hex", "join"))

    def check(self, ctx: "FileContext") -> Iterator[RawFinding]:
        for node in ctx.walk(ast.Call):
            if not (
                isinstance(node.func, ast.Name)
                and node.func.id == "hash"
                and len(node.args) == 1
            ):
                continue
            if self._contains_text(node.args[0]):
                yield (
                    node.lineno,
                    node.col_offset,
                    "hash() of str/bytes content is PYTHONHASHSEED-"
                    "perturbed and differs across processes; use "
                    "hashlib (e.g. repro.rng.derive_seed) instead",
                )

    @classmethod
    def _contains_text(cls, node: ast.expr) -> bool:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Constant) and isinstance(
                sub.value, (str, bytes)
            ):
                return True
            if isinstance(sub, ast.JoinedStr):
                return True
            if isinstance(sub, ast.Call):
                func = sub.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in cls._STRINGISH_CALLS
                ):
                    return True
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in cls._STRINGISH_METHODS
                ):
                    return True
        return False


# ----------------------------------------------------------------------
# Wire-safety family
# ----------------------------------------------------------------------


class Wire001BarePickle(Rule):
    id = "WIRE001"
    title = "bare pickle deserialization of untrusted bytes"
    rationale = (
        "pickle.loads on socket or journal input executes arbitrary "
        "constructors chosen by whoever wrote the bytes. Untrusted "
        "frames must go through repro.dispatch.wire.loads_restricted, "
        "whose find_class allowlist admits only the repro dataclasses "
        "that legitimately ride frames. The self-evidently-trusted "
        "round-trip idiom pickle.loads(pickle.dumps(x)) is exempt."
    )

    _ENTRY_POINTS = frozenset(
        ("pickle.loads", "pickle.load", "pickle.Unpickler")
    )

    def check(self, ctx: "FileContext") -> Iterator[RawFinding]:
        for node in ctx.walk(ast.Call):
            resolved = ctx.resolve(node.func)
            if resolved not in self._ENTRY_POINTS:
                continue
            if (
                resolved == "pickle.loads"
                and node.args
                and isinstance(node.args[0], ast.Call)
                and ctx.resolve(node.args[0].func) == "pickle.dumps"
            ):
                continue  # pickle.loads(pickle.dumps(x)): trusted by construction
            yield (
                node.lineno,
                node.col_offset,
                f"{resolved} on externally-supplied bytes executes "
                "attacker-chosen constructors; use "
                "repro.dispatch.wire.loads_restricted",
            )


class Wire002FrameMetering(Rule):
    # (The class name must not itself end in "Frame" — the self-run
    # flagged the first draft of this very rule.)
    id = "WIRE002"
    title = "frame class without wire_size() metering"
    rationale = (
        "payload_units accounting is only honest if every frame type "
        "reports its own compressed size: a *Frame class without "
        "wire_size() is metered by the generic container fallback, "
        "which over- or under-counts encodings like the digest/delta "
        "frames and silently corrupts the bytes-on-air benchmarks."
    )
    protocol_only = True

    def check(self, ctx: "FileContext") -> Iterator[RawFinding]:
        for node in ctx.walk(ast.ClassDef):
            if not node.name.endswith("Frame"):
                continue
            if any(
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name == "wire_size"
                for item in node.body
            ):
                continue
            if any(self._framelike_base(base) for base in node.bases):
                continue  # inherits metering from a frame/message base
            yield (
                node.lineno,
                node.col_offset,
                f"frame class {node.name} defines no wire_size(); "
                "payload_units metering falls back to guessing "
                "(see repro.radio.metrics.payload_size)",
            )

    @staticmethod
    def _framelike_base(base: ast.expr) -> bool:
        name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else ""
        )
        return name.endswith(("Frame", "Message"))


# ----------------------------------------------------------------------
# API-discipline family
# ----------------------------------------------------------------------

#: Dataclasses that cross process boundaries (socket frames, journal
#: records, multiprocessing args) and must stay picklable + hashable.
WIRE_DATACLASS_NAMES = frozenset(
    ("TrialSpec", "TrialResult", "Message", "DeltaFrame", "Jam",
     "Transmission")
)

#: Modules whose *every* dataclass is wire-crossing.
WIRE_DATACLASS_MODULES = frozenset(
    ("repro.experiments.trial", "repro.radio.messages",
     "repro.serve.protocol")
)


class Api001WireDataclassFields(Rule):
    id = "API001"
    title = "wire dataclass field is default-mutable or non-picklable"
    rationale = (
        "TrialSpec/TrialResult/frame dataclasses ship through pickle to "
        "workers, sockets, and the journal, and the frozen ones are "
        "dict keys. A shared mutable default aliases state across "
        "instances; a callable/handle-typed field breaks pickling the "
        "moment it is populated. Use immutable defaults (or "
        "field(default_factory=...)) and plain-data field types."
    )
    protocol_only = True

    _MUTABLE_CALLS = frozenset(("list", "dict", "set", "bytearray"))
    _UNPICKLABLE_TYPES = frozenset(
        ("Callable", "Generator", "Iterator", "IO", "TextIO", "BinaryIO",
         "Random", "socket", "Thread", "Lock")
    )

    def check(self, ctx: "FileContext") -> Iterator[RawFinding]:
        for node in ctx.walk(ast.ClassDef):
            if not self._is_wire_dataclass(ctx, node):
                continue
            for item in node.body:
                if not isinstance(item, ast.AnnAssign):
                    continue
                yield from self._check_field(node.name, item)

    def _is_wire_dataclass(
        self, ctx: "FileContext", node: ast.ClassDef
    ) -> bool:
        if not any(self._is_dataclass_decorator(d) for d in node.decorator_list):
            return False
        return (
            node.name in WIRE_DATACLASS_NAMES
            or ctx.module in WIRE_DATACLASS_MODULES
        )

    @staticmethod
    def _is_dataclass_decorator(node: ast.expr) -> bool:
        target = node.func if isinstance(node, ast.Call) else node
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else ""
        )
        return name == "dataclass"

    def _check_field(
        self, class_name: str, item: ast.AnnAssign
    ) -> Iterator[RawFinding]:
        field_name = (
            item.target.id if isinstance(item.target, ast.Name) else "?"
        )
        default = item.value
        if default is not None:
            if isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp,
                 ast.SetComp),
            ) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in self._MUTABLE_CALLS
            ):
                yield (
                    default.lineno,
                    default.col_offset,
                    f"wire dataclass {class_name}.{field_name} has a "
                    "mutable default (shared across instances); use "
                    "field(default_factory=...) or an immutable value",
                )
            elif isinstance(default, ast.Lambda):
                yield (
                    default.lineno,
                    default.col_offset,
                    f"wire dataclass {class_name}.{field_name} defaults "
                    "to a lambda, which cannot be pickled",
                )
        for sub in ast.walk(item.annotation):
            name = sub.attr if isinstance(sub, ast.Attribute) else (
                sub.id if isinstance(sub, ast.Name) else None
            )
            if name in self._UNPICKLABLE_TYPES:
                yield (
                    item.annotation.lineno,
                    item.annotation.col_offset,
                    f"wire dataclass {class_name}.{field_name} is typed "
                    f"{name}, which does not survive pickling to "
                    "workers/journal",
                )


class Api002AdHocSeed(Rule):
    id = "API002"
    title = "ad-hoc seed arithmetic"
    rationale = (
        "Seeds spliced by hand (seed ^ 0xA5A5, seed + i, ...) collide "
        "silently and make stream identity depend on call-site "
        "spelling. Every derived seed must come from RngRegistry."
        "spawn*/derive_seed, whose SHA-256 name-hashing is injective in "
        "practice and order-independent by construction. Protocol-only: "
        "a test offsetting a literal seed (seed + 100) is deterministic "
        "and replayable — the hazard is library code inventing seed-"
        "splicing conventions, not fixtures picking distinct seeds."
    )
    protocol_only = True

    def check(self, ctx: "FileContext") -> Iterator[RawFinding]:
        for node in ctx.walk(ast.Call):
            resolved = ctx.resolve(node.func)
            if resolved is None:
                continue
            if resolved != "random.Random" and not resolved.endswith(
                ".RngRegistry"
            ):
                continue
            argument = _call_argument(node, 0, "seed")
            if argument is None:
                continue
            if isinstance(
                argument, (ast.BinOp, ast.UnaryOp)
            ) and _contains_seed_name(argument):
                yield (
                    argument.lineno,
                    argument.col_offset,
                    "ad-hoc seed arithmetic; derive substream seeds via "
                    "RngRegistry.spawn*/derive_seed so they stay "
                    "collision-free and name-addressed",
                )


# ----------------------------------------------------------------------
# Scenario-registry family
# ----------------------------------------------------------------------


class Scn001ScenarioExpectedOutcome(Rule):
    id = "SCN001"
    title = "scenario registered without a typed expected outcome"
    rationale = (
        "A repro.scenarios entry is an executable claim: attack X "
        "against target Y ends in exactly outcome Z. A registration "
        "whose expected= is missing or a bare constant asserts nothing "
        "— the gauntlet would trivially pass whatever happens. Every "
        "@scenario(...) call must construct one of the typed outcomes "
        "(AttackRejected, KeyMismatchDetected, SessionAborted, "
        "WhpBoundHolds, SafetyViolated, LivenessLost); the registry "
        "re-validates at import time, but only for code that runs — "
        "this rule covers registrations CI never imports."
    )
    protocol_only = True

    _DECORATORS = frozenset(
        ("repro.scenarios.scenario", "repro.scenarios.registry.scenario")
    )

    def check(self, ctx: "FileContext") -> Iterator[RawFinding]:
        for node in ctx.walk(ast.Call):
            if ctx.resolve(node.func) not in self._DECORATORS:
                continue
            expected = next(
                (kw.value for kw in node.keywords if kw.arg == "expected"),
                None,
            )
            if expected is None:
                yield (
                    node.lineno,
                    node.col_offset,
                    "scenario registered without expected=...; declare "
                    "the typed outcome the run must produce "
                    "(repro.scenarios.outcomes)",
                )
            elif isinstance(expected, ast.Constant):
                yield (
                    expected.lineno,
                    expected.col_offset,
                    f"expected={expected.value!r} is not a typed "
                    "outcome; construct one of the "
                    "repro.scenarios.outcomes dataclasses",
                )


# ----------------------------------------------------------------------
# Registry and module allowlist
# ----------------------------------------------------------------------

RULES: dict[str, Rule] = {
    rule.id: rule
    for rule in (
        Det001RawRandom(),
        Det002SetIteration(),
        Det003WallClock(),
        Det004StrHash(),
        Wire001BarePickle(),
        Wire002FrameMetering(),
        Api001WireDataclassFields(),
        Api002AdHocSeed(),
        Scn001ScenarioExpectedOutcome(),
    )
}
"""Every registered rule, keyed by id (sorted rendering is the catalog)."""


#: Per-rule module exemptions: ``{rule_id: {module: reason}}``.  A module
#: is exempt from a rule when it *is* the listed module (exact match) —
#: these are the modules that legitimately own the banned primitive.
MODULE_ALLOWLIST: dict[str, dict[str, str]] = {
    "DET001": {
        "repro.rng": (
            "the RNG registry itself: the one module allowed to "
            "construct random.Random, from SHA-256-derived seeds"
        ),
        "repro.radio.shapes": (
            "schedule-shape caching mirrors random.Random internals "
            "(stream tables, block draws) under the interpreter-"
            "mirroring invariant"
        ),
    },
    "DET003": {
        "repro.dispatch.socket_pool": (
            "dispatch control plane: socket timeouts, batch-cost EWMA, "
            "and worker spawning are wall-clock by nature and never "
            "enter reports (reports are byte-identical across backends)"
        ),
        "repro.serve.daemon": (
            "serve control plane: select timeouts and the idle watchdog "
            "pace the event loop only; the SessionHost it drives is "
            "clock-free, so daemon-served sessions stay byte-identical "
            "to synchronously driven ones"
        ),
        "repro.serve.client": (
            "serve control plane: connect retry/backoff against a daemon "
            "that has not bound yet; session traffic never sees a clock"
        ),
    },
    "WIRE001": {
        "repro.dispatch.wire": (
            "the restricted unpickler: the one module allowed to open "
            "pickle bytes, through its find_class allowlist"
        ),
    },
}


def is_allowlisted(rule_id: str, module: str) -> bool:
    """True when ``module`` is exempt from ``rule_id`` by central policy."""
    return module in MODULE_ALLOWLIST.get(rule_id, {})
