"""The ``python -m repro lint`` subcommand.

Exit codes (pinned by ``tests/test_cli.py``):

* ``0`` — clean: no unsuppressed findings, no stale baseline entries;
* ``1`` — findings (or stale baseline entries) remain;
* ``2`` — usage error: a lint path does not exist, or ``--baseline`` is
  missing/malformed.

``--json-out`` writes the full report (trailing newline) even when the
run fails — that file is the CI artifact a red lint job uploads.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from ..errors import ConfigurationError
from . import rules as rules_mod
from .engine import run_lint
from .report import load_baseline

#: What a bare ``python -m repro lint`` covers: the self-hosted scope.
DEFAULT_PATHS = ("src", "tests", "benchmarks")


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint options to the ``repro`` subparser."""
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help="files or directories to lint "
        f"(default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--json-out", type=Path, default=None,
        help="write the JSON report to this file (always written, even "
        "on findings — it is the CI artifact) and keep stdout human",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None,
        help="JSON baseline of grandfathered findings; the committed "
        "lint_baseline.json is empty (zero tolerance)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog (id, title, allowlisted modules) "
        "and exit 0",
    )


def cmd_lint(args: argparse.Namespace) -> int:
    """Handler wired into ``repro.__main__``; returns the exit code."""
    if args.list_rules:
        for rule_id in sorted(rules_mod.RULES):
            rule = rules_mod.RULES[rule_id]
            print(f"{rule_id}  {rule.title}")
            for module in sorted(rules_mod.MODULE_ALLOWLIST.get(rule_id, {})):
                print(f"        allowlisted: {module}")
        return 0
    try:
        baseline = (
            load_baseline(args.baseline) if args.baseline is not None else []
        )
        report = run_lint(args.paths, baseline=baseline)
    except ConfigurationError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.json_out is not None:
        args.json_out.write_text(
            json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
    for line in report.render_lines():
        print(line)
    return 0 if report.clean else 1
