"""``repro.lint`` — determinism & wire-safety static analysis.

Every PR since the engine refactors has staked its correctness on
machine-checkable invariants: byte-identical serial/parallel/socket
reports, interpreter-mirroring block draws, index-derived trial seeds,
metered wire frames.  This package makes those invariants *enforced*
rather than conventional: a stdlib-``ast`` rule engine
(:mod:`~repro.lint.rules`, ids ``DET001``–``API002``), per-line pragma
suppression with mandatory justifications, a central module allowlist,
and a JSON report with a committed zero-tolerance baseline
(``lint_baseline.json``).  CI self-hosts it over ``src/``, ``tests/``,
and ``benchmarks/`` — including this package itself.

Entry points: ``python -m repro lint`` (CLI), :func:`run_lint`
(programmatic), :func:`lint_source` (single-source, used by the fixture
tests).  The rule catalog with per-rule rationale lives in
``docs/LINT.md``.
"""

from .engine import FileContext, lint_source, run_lint
from .report import Finding, LintReport, load_baseline
from .rules import MODULE_ALLOWLIST, RULES

__all__ = [
    "FileContext",
    "Finding",
    "LintReport",
    "MODULE_ALLOWLIST",
    "RULES",
    "lint_source",
    "load_baseline",
    "run_lint",
]
