"""Findings, reports, and baselines for :mod:`repro.lint`.

A :class:`Finding` is one rule violation anchored to a file/line/column; a
:class:`LintReport` is the deterministic aggregate of a run — findings
sorted by ``(path, line, col, rule)``, plus the counts a CI job wants to
render.  Everything is JSON-able via :meth:`LintReport.as_dict` so the CI
lint job can upload the report as an artifact.

Baselines
---------
A baseline file grandfathers known findings so the analyzer can be adopted
with a red-free first run.  This repository commits a **zero-tolerance**
baseline (``lint_baseline.json`` with an empty findings list): every
violation is either fixed or pragma-justified in place, and the baseline
exists only as the mechanism that would let an emergency land and be paid
down.  Stale baseline entries (entries matching nothing) fail the run like
findings do — a baseline may only ever shrink silently, never rot.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from ..errors import ConfigurationError

REPORT_VERSION = 1
"""Schema version of the JSON report and baseline formats."""


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    The field order is the sort order: reports list findings by path, then
    line, then column, then rule id — a pure function of the tree being
    linted, so two runs over the same tree render byte-identical reports.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        """The one-line human form: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def as_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }

    def baseline_key(self) -> tuple[str, str, int]:
        """The identity a baseline entry must match: ``(path, rule, line)``."""
        return (self.path, self.rule, self.line)


@dataclass(frozen=True)
class LintReport:
    """The deterministic outcome of one lint run.

    Attributes
    ----------
    findings:
        Unsuppressed, non-baselined findings, sorted.
    files_scanned:
        Number of ``*.py`` files analyzed.
    suppressed:
        Findings silenced by a ``repro-lint: disable`` pragma.
    allowlisted:
        Findings silenced by a rule's module allowlist.
    baselined:
        Findings matched (and swallowed) by the baseline file.
    stale_baseline:
        Baseline entries that matched nothing — failures, like findings.
    """

    findings: tuple[Finding, ...]
    files_scanned: int
    suppressed: int
    allowlisted: int
    baselined: int
    stale_baseline: tuple[tuple[str, str, int], ...] = ()

    @property
    def clean(self) -> bool:
        """True when the run should exit 0."""
        return not self.findings and not self.stale_baseline

    def as_dict(self) -> dict:
        """JSON-able report (the ``--json-out`` artifact)."""
        return {
            "version": REPORT_VERSION,
            "clean": self.clean,
            "files_scanned": self.files_scanned,
            "counts": {
                "findings": len(self.findings),
                "suppressed": self.suppressed,
                "allowlisted": self.allowlisted,
                "baselined": self.baselined,
                "stale_baseline": len(self.stale_baseline),
            },
            "findings": [f.as_dict() for f in self.findings],
            "stale_baseline": [
                {"path": path, "rule": rule, "line": line}
                for path, rule, line in self.stale_baseline
            ],
        }

    def render_lines(self) -> list[str]:
        """Human-readable output lines, one per finding plus a summary."""
        lines = [finding.render() for finding in self.findings]
        for path, rule, line in self.stale_baseline:
            lines.append(
                f"{path}:{line}: stale baseline entry for {rule} "
                "(matches nothing; remove it)"
            )
        noun = "file" if self.files_scanned == 1 else "files"
        lines.append(
            f"repro lint: {len(self.findings)} finding(s) in "
            f"{self.files_scanned} {noun} "
            f"({self.suppressed} suppressed, {self.allowlisted} allowlisted, "
            f"{self.baselined} baselined)"
        )
        return lines


def load_baseline(path: str | Path) -> list[tuple[str, str, int]]:
    """Load ``--baseline FILE``: a list of ``(path, rule, line)`` keys.

    Raises :class:`ConfigurationError` (CLI exit 2) on a missing file or a
    malformed document — a lint run must never silently drop its baseline.
    """
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        raise ConfigurationError(f"baseline {path} does not exist") from None
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"baseline {path} is not valid JSON: {exc}"
        ) from None
    if (
        not isinstance(document, dict)
        or document.get("version") != REPORT_VERSION
        or not isinstance(document.get("findings"), list)
    ):
        raise ConfigurationError(
            f"baseline {path} must be "
            f'{{"version": {REPORT_VERSION}, "findings": [...]}}'
        )
    entries: list[tuple[str, str, int]] = []
    for entry in document["findings"]:
        try:
            entries.append(
                (str(entry["path"]), str(entry["rule"]), int(entry["line"]))
            )
        except (TypeError, KeyError, ValueError):
            raise ConfigurationError(
                f"baseline {path} entry {entry!r} needs path/rule/line"
            ) from None
    return entries


def apply_baseline(
    findings: Iterable[Finding], baseline: list[tuple[str, str, int]]
) -> tuple[list[Finding], int, list[tuple[str, str, int]]]:
    """Split findings against a baseline.

    Returns ``(kept, baselined_count, stale_entries)``.  Matching is exact
    on ``(path, rule, line)`` — a zero-tolerance baseline never matches, and
    a grandfathered entry stops matching (goes stale, fails the run) the
    moment its finding moves or disappears, forcing the baseline shrink to
    be committed alongside the fix.
    """
    keys = set(baseline)
    kept: list[Finding] = []
    matched: set[tuple[str, str, int]] = set()
    baselined = 0
    for finding in findings:
        key = finding.baseline_key()
        if key in keys:
            matched.add(key)
            baselined += 1
        else:
            kept.append(finding)
    return kept, baselined, sorted(keys - matched)
