"""The :mod:`repro.lint` analysis engine.

Per file: parse the source with :mod:`ast`, build a :class:`FileContext`
(module name, resolved import aliases, parent links), run every
applicable rule from :data:`repro.lint.rules.RULES`, then filter the raw
findings through the central module allowlist and the file's
``repro-lint`` pragmas.  The engine is itself linted by the rules it
enforces (the self-run in CI covers ``src/``, which includes this
package), so it iterates everything in sorted order and touches neither
the clock nor ``random``.

Pragmas
-------
Suppression is per-line and must carry a justification::

    frobnicate(x)  # repro-lint: disable=DET001 -- reason why this is safe

A comment-only pragma line suppresses the next code line instead.
``disable-file=RULE`` (anywhere in the file) suppresses a rule for the
whole file — for test modules whose *subject* is the banned construct.
Pragma hygiene is enforced by meta-findings that cannot themselves be
suppressed:

* ``LINT001`` — pragma without a ``--``-separated justification;
* ``LINT002`` — pragma naming an unknown (or meta) rule id;
* ``LINT003`` — pragma that suppressed nothing (stale: the violation
  moved or was fixed — delete the pragma);
* ``LINT004`` — file does not parse.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Sequence

from ..errors import ConfigurationError
from . import rules as rules_mod
from .report import Finding, LintReport, apply_baseline

#: Meta rule ids (pragma hygiene + parse errors); not suppressible, so a
#: pragma can never be used to hide pragma abuse.
META_RULES = {
    "LINT001": "pragma without justification",
    "LINT002": "pragma names an unknown rule id",
    "LINT003": "pragma suppresses nothing (stale)",
    "LINT004": "file does not parse",
}

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-file)?)\s*=\s*"
    r"([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
    r"\s*(?:--\s*(.*\S))?\s*$"
)

#: Minimum justification length: long enough to force an actual reason,
#: short enough not to punish a terse true one.
_MIN_JUSTIFICATION = 10


@dataclass
class Pragma:
    """One parsed ``repro-lint`` comment."""

    line: int                      # line the comment sits on
    target_line: int | None        # code line it suppresses (None = file)
    rule_ids: tuple[str, ...]
    justification: str | None
    file_level: bool
    used: set = field(default_factory=set)  # rule ids that suppressed


class FileContext:
    """Everything a rule may ask about one source file."""

    def __init__(
        self, source: str, path: str, module: str, tree: ast.Module
    ) -> None:
        self.source = source
        self.path = path
        self.module = module
        self.tree = tree
        #: Rules scoped ``protocol_only`` run only over ``repro.*``.
        self.is_protocol = module == "repro" or module.startswith("repro.")
        self._aliases = self._collect_imports(tree, module)
        self._parents: dict[int, ast.AST] = {}
        self._nodes_by_type: dict[type, list[ast.AST]] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[id(child)] = parent
            self._nodes_by_type.setdefault(type(parent), []).append(parent)

    # -- AST access -----------------------------------------------------

    def walk(
        self, node_types: type | tuple[type, ...]
    ) -> Iterator[ast.AST]:
        """All nodes of the given type(s), in source order."""
        if not isinstance(node_types, tuple):
            node_types = (node_types,)
        for node_type in node_types:
            yield from self._nodes_by_type.get(node_type, ())

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (None for the module)."""
        return self._parents.get(id(node))

    # -- import/name resolution -----------------------------------------

    def resolve(self, node: ast.expr) -> str | None:
        """Resolve a Name/Attribute chain to its imported dotted origin.

        ``import random as r`` makes ``r.Random`` resolve to
        ``"random.Random"``; ``from pickle import loads as l`` makes
        ``l`` resolve to ``"pickle.loads"``; relative imports resolve
        against the file's own module.  Returns ``None`` for names with
        no recorded import (locals, builtins, module-level defs).
        """
        attrs: list[str] = []
        while isinstance(node, ast.Attribute):
            attrs.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        origin = self._aliases.get(node.id)
        if origin is None:
            return None
        return ".".join([origin] + attrs[::-1])

    @staticmethod
    def _collect_imports(tree: ast.Module, module: str) -> dict[str, str]:
        """Flat alias table over the whole file (scoping ignored: a lint
        cares where a name *can* come from, not shadowing subtleties).
        Function-level lazy imports are therefore seen too."""
        aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for name in node.names:
                    if name.asname is not None:
                        aliases[name.asname] = name.name
                    else:
                        # ``import os.path`` binds the top-level ``os``.
                        head = name.name.partition(".")[0]
                        aliases[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = FileContext._absolute_import(
                    module, node.level, node.module
                )
                for name in node.names:
                    if name.name == "*":
                        continue
                    bound = name.asname or name.name
                    origin = f"{base}.{name.name}" if base else name.name
                    aliases[bound] = origin
        return aliases

    @staticmethod
    def _absolute_import(
        module: str, level: int, target: str | None
    ) -> str:
        """Absolutize ``from ...target import x`` relative to ``module``.

        The current module is assumed to be a plain module (not a package
        ``__init__``) when it has a dot to strip; lint only needs the
        resolution to be right for the repository's own layout, where
        relative imports out of ``__init__`` files name their own package
        explicitly (``from .messages import ...``).
        """
        if level == 0:
            return target or ""
        parts = module.split(".")
        package = parts[:-1] if len(parts) > 1 else parts
        if level > 1:
            package = package[: max(0, len(package) - (level - 1))]
        if target:
            package = package + target.split(".")
        return ".".join(package)


# ----------------------------------------------------------------------
# Pragmas
# ----------------------------------------------------------------------


def _scan_pragmas(
    source: str,
) -> tuple[list[Pragma], list[tuple[int, int, str, str]]]:
    """Extract ``repro-lint`` pragmas from comment tokens.

    Returns ``(pragmas, meta)`` where ``meta`` holds LINT001/LINT002
    findings as ``(line, col, rule, message)``.  Tokenizing (rather than
    regexing raw lines) means string literals that merely *mention* the
    pragma syntax — this engine's own source, the docs' examples — are
    never misread as pragmas.
    """
    comments: list[tuple[int, int, str]] = []
    code_lines: set[int] = set()
    skip = {
        tokenize.COMMENT, tokenize.NL, tokenize.NEWLINE, tokenize.INDENT,
        tokenize.DEDENT, tokenize.ENCODING, tokenize.ENDMARKER,
    }
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.start[1], token.string))
            elif token.type not in skip:
                for line in range(token.start[0], token.end[0] + 1):
                    code_lines.add(line)
    except (tokenize.TokenError, IndentationError):
        return [], []  # the parse-error finding covers it

    pragmas: list[Pragma] = []
    meta: list[tuple[int, int, str, str]] = []
    for line, col, text in comments:
        match = _PRAGMA_RE.match(text)
        if match is None:
            if "repro-lint" in text:
                meta.append(
                    (line, col, "LINT001",
                     "malformed repro-lint pragma; expected "
                     "'# repro-lint: disable=RULE[,RULE] -- justification'")
                )
            continue
        kind, id_list, justification = match.groups()
        rule_ids = tuple(
            part.strip() for part in id_list.split(",") if part.strip()
        )
        for rule_id in rule_ids:
            if rule_id not in rules_mod.RULES:
                reason = (
                    "meta rules cannot be suppressed"
                    if rule_id in META_RULES
                    else "unknown rule id"
                )
                meta.append(
                    (line, col, "LINT002", f"{reason}: {rule_id!r}")
                )
        if justification is None or len(justification) < _MIN_JUSTIFICATION:
            meta.append(
                (line, col, "LINT001",
                 "pragma needs a justification: '-- why this exemption "
                 "is sound' (>= 10 chars)")
            )
        file_level = kind == "disable-file"
        target: int | None = None
        if not file_level:
            if line in code_lines:
                target = line
            else:
                later = [code for code in code_lines if code > line]
                target = min(later) if later else None
        pragmas.append(
            Pragma(
                line=line,
                target_line=target,
                rule_ids=rule_ids,
                justification=justification,
                file_level=file_level,
            )
        )
    return pragmas, meta


# ----------------------------------------------------------------------
# Per-file and per-tree drivers
# ----------------------------------------------------------------------


@dataclass
class FileResult:
    """Raw per-file outcome, before baselining."""

    findings: list[Finding]
    suppressed: int
    allowlisted: int


def lint_source(source: str, path: str, module: str) -> FileResult:
    """Lint one file's source text (the unit tests' entry point)."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return FileResult(
            [
                Finding(
                    path=path,
                    line=exc.lineno or 1,
                    col=(exc.offset or 1) - 1,
                    rule="LINT004",
                    message=f"file does not parse: {exc.msg}",
                )
            ],
            suppressed=0,
            allowlisted=0,
        )
    ctx = FileContext(source, path, module, tree)
    pragmas, meta = _scan_pragmas(source)

    by_line: dict[int, list[Pragma]] = {}
    file_level: list[Pragma] = []
    for pragma in pragmas:
        if pragma.file_level:
            file_level.append(pragma)
        elif pragma.target_line is not None:
            by_line.setdefault(pragma.target_line, []).append(pragma)

    findings: list[Finding] = []
    suppressed = 0
    allowlisted = 0
    for rule_id in sorted(rules_mod.RULES):
        rule = rules_mod.RULES[rule_id]
        if rule.protocol_only and not ctx.is_protocol:
            continue
        if rules_mod.is_allowlisted(rule_id, module):
            allowlisted += sum(1 for _ in rule.check(ctx))
            continue
        for line, col, message in rule.check(ctx):
            covering = [
                pragma
                for pragma in file_level + by_line.get(line, [])
                if rule_id in pragma.rule_ids
            ]
            if covering:
                for pragma in covering:
                    pragma.used.add(rule_id)
                suppressed += 1
            else:
                findings.append(
                    Finding(
                        path=path, line=line, col=col, rule=rule_id,
                        message=message,
                    )
                )

    for line, col, rule_id, message in meta:
        findings.append(
            Finding(path=path, line=line, col=col, rule=rule_id,
                    message=message)
        )
    for pragma in pragmas:
        for rule_id in pragma.rule_ids:
            if rule_id in rules_mod.RULES and rule_id not in pragma.used:
                findings.append(
                    Finding(
                        path=path,
                        line=pragma.line,
                        col=0,
                        rule="LINT003",
                        message=(
                            f"pragma suppresses nothing: no {rule_id} "
                            "finding on its target; delete or move it"
                        ),
                    )
                )
    findings.sort()
    return FileResult(findings, suppressed, allowlisted)


def module_name_for(file_path: Path, root: Path) -> str:
    """Dotted module name for a file, relative to the lint root.

    Files under a ``src/`` directory drop that prefix (``src/repro/rng.py``
    → ``repro.rng``); everything else is named from the root
    (``tests/test_rng.py`` → ``tests.test_rng``).  Package ``__init__``
    files name the package itself.  Files outside the root fall back to
    their stem, so ad-hoc paths still lint.
    """
    try:
        relative = file_path.resolve().relative_to(root.resolve())
    except ValueError:
        return file_path.stem
    parts = list(relative.parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    if not parts:
        return file_path.stem
    parts[-1] = parts[-1][: -len(".py")] if parts[-1].endswith(".py") else parts[-1]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) or file_path.stem


def discover_files(paths: Sequence[str | Path], root: Path) -> list[Path]:
    """Expand CLI path arguments into a sorted list of ``*.py`` files.

    Raises :class:`ConfigurationError` (CLI exit 2) for a path that does
    not exist — a typo'd path silently linting nothing would defeat the
    zero-tolerance contract.
    """
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if not path.is_absolute():
            path = root / path
        if path.is_file():
            files.add(path)
        elif path.is_dir():
            files.update(path.rglob("*.py"))
        else:
            raise ConfigurationError(f"lint path {raw} does not exist")
    return sorted(files)


def run_lint(
    paths: Sequence[str | Path],
    *,
    root: Path | None = None,
    baseline: list[tuple[str, str, int]] | None = None,
) -> LintReport:
    """Lint ``paths`` (files or directories) and aggregate the report."""
    root = (root or Path.cwd()).resolve()
    files = discover_files(paths, root)
    findings: list[Finding] = []
    suppressed = 0
    allowlisted = 0
    for file_path in files:
        try:
            display = file_path.resolve().relative_to(root).as_posix()
        except ValueError:
            display = file_path.as_posix()
        result = lint_source(
            file_path.read_text(encoding="utf-8"),
            display,
            module_name_for(file_path, root),
        )
        findings.extend(result.findings)
        suppressed += result.suppressed
        allowlisted += result.allowlisted
    findings.sort()
    kept, baselined, stale = apply_baseline(findings, baseline or [])
    return LintReport(
        findings=tuple(kept),
        files_scanned=len(files),
        suppressed=suppressed,
        allowlisted=allowlisted,
        baselined=baselined,
        stale_baseline=tuple(stale),
    )
