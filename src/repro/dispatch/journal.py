"""Durable JSONL journal for sweep runs: append-only, replayable.

One line per completed trial, flushed and fsynced before the dispatcher
moves on, so a killed sweep loses at most the trials in flight.  This
per-trial durability is also what makes the socket pool's *batched*
redelivery safe: a batch whose worker died after some results were
applied is requeued with the journalled/applied indices filtered out,
and even a full redelivery only produces duplicates that replay's
first-record-wins rule (and the assembler's at-most-once rule) drop.
The first line is a header carrying the sweep's configuration
fingerprint;
``--resume`` replays the journal, refuses a fingerprint mismatch (a
journal from a *different* sweep must never be merged in), skips every
completed index, and — because the records reconstruct the exact
:class:`~repro.experiments.trial.TrialResult`s — the resumed run's report
is byte-identical to an uninterrupted one.

Record formats (JSON, one object per line):

* ``{"kind": "header", "journal_version": 1, "fingerprint": ...}``
* ``{"kind": "trial", "index": ..., "seed": ..., "success": ...,
  "cover": ..., "result": <base64 pickle>}``

The human-auditable fields (index/seed/success/cover) are convenience
duplicates; the pickle field is authoritative — it round-trips tuple
types and metrics subclasses that plain JSON would flatten.  It is
decoded through :func:`~repro.dispatch.wire.loads_restricted`, so an
edited journal can at worst fail replay (:class:`~repro.dispatch.wire.
FrameRejected` is fatal at any line — tampering, unlike truncation, is
never forgiven), not execute code.  A truncated
final line (the crash happened mid-write) is skipped on replay; a corrupt
*interior* line is an error, since records after it prove the file was
not merely cut short.
"""

from __future__ import annotations

import base64
import json
import os
import pickle
from pathlib import Path
from typing import IO

from ..errors import ConfigurationError, DispatchError
from ..experiments.trial import TrialResult
from .wire import FrameRejected, loads_restricted

JOURNAL_VERSION = 1


def encode_record(result: TrialResult) -> str:
    """One JSONL trial record (no trailing newline)."""
    blob = base64.b64encode(
        pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
    ).decode("ascii")
    return json.dumps(
        {
            "kind": "trial",
            "index": result.index,
            "seed": result.seed,
            "success": result.success,
            "cover": result.cover,
            "result": blob,
        },
        sort_keys=True,
    )


def decode_record(record: dict) -> TrialResult:
    """Reconstruct the exact :class:`TrialResult` a record was made from."""
    result = loads_restricted(base64.b64decode(record["result"]))
    if result.index != record["index"]:
        raise DispatchError(
            f"journal record index {record['index']} does not match its "
            f"payload ({result.index})"
        )
    return result


class SweepJournal:
    """Append-only JSONL journal bound to one sweep fingerprint.

    Use :meth:`attach` — it owns the create-vs-resume decision and returns
    the already-completed results alongside the open journal.
    """

    def __init__(self, path: Path, handle: IO[str]) -> None:
        self.path = path
        self._handle = handle

    # ------------------------------------------------------------------

    @classmethod
    def attach(
        cls, path: str | Path, fingerprint: str, *, resume: bool
    ) -> tuple["SweepJournal", dict[int, TrialResult]]:
        """Open ``path`` for appending; return ``(journal, completed)``.

        A fresh path is created with a header line.  An existing path
        requires ``resume=True`` (guarding against accidentally mixing
        two sweeps' records) and a matching ``fingerprint``; its trial
        records are replayed into ``completed`` (first occurrence of an
        index wins — the at-most-once rule applied retroactively).
        """
        path = Path(path)
        if not path.exists():
            path.parent.mkdir(parents=True, exist_ok=True)
            handle = path.open("a", encoding="utf-8")
            journal = cls(path, handle)
            journal._append_line(
                json.dumps(
                    {
                        "kind": "header",
                        "journal_version": JOURNAL_VERSION,
                        "fingerprint": fingerprint,
                    },
                    sort_keys=True,
                )
            )
            return journal, {}
        if not resume:
            raise ConfigurationError(
                f"journal {path} already exists; pass --resume to continue "
                "it or choose a fresh path"
            )
        completed = cls._replay(path, fingerprint)
        return cls(path, path.open("a", encoding="utf-8")), completed

    @staticmethod
    def _replay(path: Path, fingerprint: str) -> dict[int, TrialResult]:
        lines = path.read_text(encoding="utf-8").splitlines()
        if not lines:
            raise DispatchError(f"journal {path} is empty (no header)")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            raise DispatchError(
                f"journal {path} has a corrupt header line"
            ) from None
        if header.get("kind") != "header":
            raise DispatchError(f"journal {path} does not start with a header")
        if header.get("journal_version") != JOURNAL_VERSION:
            raise DispatchError(
                f"journal {path} is version "
                f"{header.get('journal_version')!r}, expected "
                f"{JOURNAL_VERSION}"
            )
        if header.get("fingerprint") != fingerprint:
            raise ConfigurationError(
                f"journal {path} belongs to a different sweep "
                f"(fingerprint {header.get('fingerprint')!r}); refusing to "
                "resume into it"
            )
        completed: dict[int, TrialResult] = {}
        for lineno, line in enumerate(lines[1:], start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                result = decode_record(record)
            except FrameRejected as exc:
                # Tampering, not truncation: a crash mid-append can cut a
                # record short (JSON/base64/pickle decode errors below),
                # but it cannot write a *complete* pickle referencing a
                # disallowed global.  Fatal even on the final line.
                raise DispatchError(
                    f"journal {path} line {lineno} rejected: {exc}"
                ) from None
            except (json.JSONDecodeError, KeyError, ValueError,
                    pickle.UnpicklingError, EOFError):
                if lineno == len(lines):
                    # Crash mid-append: the cut-short final record is the
                    # one trial the journal is allowed to lose.
                    break
                raise DispatchError(
                    f"journal {path} line {lineno} is corrupt but not final"
                ) from None
            completed.setdefault(result.index, result)
        return completed

    # ------------------------------------------------------------------

    def _append_line(self, line: str) -> None:
        self._handle.write(line + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def append(self, result: TrialResult) -> None:
        """Durably record one completed trial."""
        self._append_line(encode_record(result))

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
