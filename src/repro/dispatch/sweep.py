"""Parameter-grid sweeps over the Monte Carlo trial harness.

A :class:`SweepSpec` expands a grid — workload × n × channels × t ×
adversary — into per-point trial batches with deterministically derived
seeds: trial ``j`` of point ``i`` runs from
``RngRegistry(seed).spawn("sweep", i, j)``, a pure function of the sweep
seed and the point's *expansion index*.  Growing ``trials`` therefore
never changes the seeds of trials that already exist (their
``(point_index, trial_index)`` coordinates are unchanged), which is what
makes journals resumable across a deepened sweep.  Extending a grid
*axis* is different: point indices follow the cartesian-product order,
so appending values anywhere but the leftmost axis renumbers later
points and reseeds their trials — an extended grid is a *new* sweep
(new fingerprint, fresh journal), not a superset of the old one.

:class:`SweepRunner` drives the expansion through any
:class:`~repro.dispatch.backend.DispatchBackend` as **one spec stream**:
every point's trials go to the backend in a single
:meth:`~repro.dispatch.backend.DispatchBackend.run` call, so a pooled
backend keeps its workers warm across sweep points instead of paying
startup per point, and per-point aggregation in :class:`SweepState` is
completion-order-oblivious — a point's report renders the moment its
last trial lands, whichever points' trials interleaved around it.
Trials are optionally journalled (:mod:`repro.dispatch.journal`) and
:meth:`SweepState.partial_report` renders whatever has completed
mid-sweep.  The final :class:`SweepReport` contains nothing
backend-dependent, so a socket-pool sweep (killed, resumed, requeued,
re-batched — whatever happened on the way) serialises byte-identically
to a serial uninterrupted run of the same spec and seed.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from ..errors import ConfigurationError, DispatchError
from ..experiments.runner import MonteCarloRunner
from ..experiments.trial import TrialResult, TrialSpec
from ..experiments.workloads import (
    ADVERSARY_FACTORIES,
    WORKLOAD_USES_ADVERSARY,
    make_workload,
)
from ..rng import derive_seed, derive_seeds
from .backend import DispatchBackend, SerialBackend
from .journal import SweepJournal


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: a full model configuration plus its stable index."""

    point_index: int
    workload: str
    n: int
    channels: int
    t: int
    adversary: str

    def label(self) -> str:
        """Compact human-readable coordinates for progress lines."""
        return (
            f"{self.workload} n={self.n} C={self.channels} t={self.t} "
            f"adv={self.adversary}"
        )


@dataclass(frozen=True)
class SweepSpec:
    """A parameter grid plus everything needed to derive every trial.

    Axes are tuples; the expansion order is the cartesian product
    ``workloads × ns × channels × ts × adversaries`` with the rightmost
    axis varying fastest (``itertools.product`` order), so point indices
    are a stable, documented function of the spec.  Duplicate values
    within an axis are rejected — they would silently double-run points.
    """

    workloads: tuple[str, ...] = ("fame",)
    ns: tuple[int, ...] = (20,)
    channels: tuple[int, ...] = (2,)
    ts: tuple[int, ...] = (1,)
    adversaries: tuple[str, ...] = ("schedule",)
    trials: int = 20
    seed: int = 0
    pairs: int = 5
    options: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        for name, axis in (
            ("workloads", self.workloads),
            ("ns", self.ns),
            ("channels", self.channels),
            ("ts", self.ts),
            ("adversaries", self.adversaries),
        ):
            object.__setattr__(self, name, tuple(axis))
            axis = getattr(self, name)
            if not axis:
                raise ConfigurationError(f"sweep axis {name!r} is empty")
            if len(set(axis)) != len(axis):
                raise ConfigurationError(
                    f"sweep axis {name!r} contains duplicates: {axis}"
                )
        for w in self.workloads:
            # Resolves gallery workloads and lazily registers
            # ``scenario:NAME`` ones (populating the adversary-blind
            # map consulted below); unknown names raise typed here.
            make_workload(w)
        unknown = [a for a in self.adversaries if a not in ADVERSARY_FACTORIES]
        if unknown:
            raise ConfigurationError(
                f"unknown adversaries {unknown}; pick from "
                f"{sorted(ADVERSARY_FACTORIES)}"
            )
        if self.trials < 1:
            raise ConfigurationError("trials per point must be >= 1")
        if len(self.adversaries) > 1:
            blind = [
                w for w in self.workloads
                if not WORKLOAD_USES_ADVERSARY.get(w, True)
            ]
            if blind:
                raise ConfigurationError(
                    f"workloads {blind} ignore the adversary axis (they run "
                    f"the whole gallery internally), so sweeping "
                    f"{len(self.adversaries)} adversaries would silently "
                    "duplicate identical configurations; sweep them in a "
                    "separate single-adversary grid"
                )
        object.__setattr__(self, "options", tuple(self.options))

    # ------------------------------------------------------------------

    def points(self) -> tuple[SweepPoint, ...]:
        """The grid in its stable expansion order."""
        return tuple(
            SweepPoint(i, workload, n, c, t, adversary)
            for i, (workload, n, c, t, adversary) in enumerate(
                itertools.product(
                    self.workloads, self.ns, self.channels, self.ts,
                    self.adversaries,
                )
            )
        )

    @property
    def total_trials(self) -> int:
        """Trials across the whole grid."""
        return len(self.points()) * self.trials

    def point_for_index(self, global_index: int) -> int:
        """The point index a global trial index belongs to."""
        return global_index // self.trials

    def trial_spec(self, point: SweepPoint, trial_index: int) -> TrialSpec:
        """Trial ``trial_index`` of ``point`` — seed from the coordinates."""
        return self._trial_spec(
            point,
            trial_index,
            derive_seed(self.seed, "spawn", "sweep", point.point_index, trial_index),
        )

    def _trial_spec(
        self, point: SweepPoint, trial_index: int, seed: int
    ) -> TrialSpec:
        return TrialSpec(
            workload=point.workload,
            index=point.point_index * self.trials + trial_index,
            seed=seed,
            n=point.n,
            channels=point.channels,
            t=point.t,
            pairs=self.pairs,
            adversary=point.adversary,
            options=self.options,
        )

    def specs(self) -> list[TrialSpec]:
        """Every trial of every point, global-index order.

        Seeds come from the bulk :func:`repro.rng.derive_seeds` helper —
        one hashlib loop per grid point, no per-trial registries —
        identical to the per-call :meth:`trial_spec` path.
        """
        return [
            self._trial_spec(point, j, seed)
            for point in self.points()
            for j, seed in enumerate(
                derive_seeds(
                    self.seed, "sweep", point.point_index, count=self.trials
                )
            )
        ]

    # ------------------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """Canonical JSON-ready description (the fingerprint's preimage)."""
        return {
            "workloads": list(self.workloads),
            "ns": list(self.ns),
            "channels": list(self.channels),
            "ts": list(self.ts),
            "adversaries": list(self.adversaries),
            "trials": self.trials,
            "seed": self.seed,
            "pairs": self.pairs,
            "options": [list(kv) for kv in self.options],
        }

    def fingerprint(self) -> str:
        """Hex digest identifying this exact sweep (journal header key)."""
        material = json.dumps(self.as_dict(), sort_keys=True)
        return hashlib.sha256(material.encode("utf-8")).hexdigest()


def _point_report(
    spec: SweepSpec, point: SweepPoint, results: Sequence[TrialResult]
) -> dict[str, Any]:
    """Aggregate one point's results via the Monte Carlo aggregator.

    Execution-shape fields (workers/chunksize) are stripped: a sweep
    report must serialise identically whatever backend produced it.
    """
    runner = MonteCarloRunner(
        point.workload,
        spec.trials,
        seed=spec.seed,
        workers=1,
        n=point.n,
        channels=point.channels,
        t=point.t,
        pairs=spec.pairs,
        adversary=point.adversary,
        options=spec.options,
    )
    rendered = runner.aggregate(results).as_dict()
    rendered.pop("workers", None)
    rendered.pop("chunksize", None)
    rendered["point_index"] = point.point_index
    return rendered


class SweepState:
    """Streaming sweep aggregation: add results, render reports anytime."""

    def __init__(self, spec: SweepSpec) -> None:
        self.spec = spec
        self._points = spec.points()
        self._by_point: dict[int, dict[int, TrialResult]] = {
            p.point_index: {} for p in self._points
        }

    def add(self, result: TrialResult) -> bool:
        """Record one result; True when it completed its point."""
        point_index = self.spec.point_for_index(result.index)
        if point_index not in self._by_point:
            raise DispatchError(
                f"trial index {result.index} is outside the sweep grid"
            )
        bucket = self._by_point[point_index]
        bucket.setdefault(result.index, result)
        return len(bucket) == self.spec.trials

    @property
    def completed_trials(self) -> int:
        return sum(len(b) for b in self._by_point.values())

    @property
    def complete(self) -> bool:
        return self.completed_trials == self.spec.total_trials

    def ordered(self) -> list[TrialResult]:
        """All recorded results in global-index order."""
        merged: dict[int, TrialResult] = {}
        for bucket in self._by_point.values():
            merged.update(bucket)
        return [merged[i] for i in sorted(merged)]

    def point_results(self, point_index: int) -> list[TrialResult]:
        """One point's recorded results in global-index order."""
        bucket = self._by_point[point_index]
        return [bucket[i] for i in sorted(bucket)]

    def point_report(self, point: SweepPoint) -> dict[str, Any]:
        """The finished per-point section (requires >= 1 result)."""
        return _point_report(
            self.spec, point, self.point_results(point.point_index)
        )

    def partial_report(self) -> dict[str, Any]:
        """Render whatever has completed so far (mid-sweep snapshot).

        Points with at least one result get a full per-point section
        (annotated with ``completed_trials``/``expected_trials``); empty
        points are listed under ``pending_points``.
        """
        rendered = []
        pending = []
        for point in self._points:
            done = len(self._by_point[point.point_index])
            if done == 0:
                pending.append(
                    {"point_index": point.point_index, "label": point.label()}
                )
                continue
            section = self.point_report(point)
            section["completed_trials"] = done
            section["expected_trials"] = self.spec.trials
            rendered.append(section)
        return {
            "sweep": self.spec.as_dict(),
            "fingerprint": self.spec.fingerprint(),
            "completed_trials": self.completed_trials,
            "total_trials": self.spec.total_trials,
            "points": rendered,
            "pending_points": pending,
        }


@dataclass(frozen=True)
class SweepReport:
    """A finished sweep: every point aggregated, nothing backend-shaped."""

    spec: SweepSpec
    results: tuple[TrialResult, ...]
    point_sections: tuple[dict[str, Any], ...] = field(repr=False)

    @classmethod
    def build(
        cls, spec: SweepSpec, results: Sequence[TrialResult]
    ) -> "SweepReport":
        ordered = sorted(results, key=lambda r: r.index)
        if len(ordered) != spec.total_trials:
            raise DispatchError(
                f"sweep incomplete: {len(ordered)} of {spec.total_trials} "
                "trials present"
            )
        by_point: dict[int, list[TrialResult]] = {}
        for result in ordered:
            by_point.setdefault(
                spec.point_for_index(result.index), []
            ).append(result)
        sections = tuple(
            _point_report(spec, point, by_point[point.point_index])
            for point in spec.points()
        )
        return cls(spec, tuple(ordered), sections)

    @property
    def trials(self) -> int:
        return len(self.results)

    @property
    def successes(self) -> int:
        return sum(1 for r in self.results if r.success)

    def whp_failures(self) -> list[int]:
        """Point indices whose 1/n claim was checkable and failed."""
        return [
            s["point_index"]
            for s in self.point_sections
            if s["whp"]["claim_holds"] is False
        ]

    def as_dict(self) -> dict[str, Any]:
        """JSON-ready report, deterministic given the spec and seed."""
        worst = max(
            (s["disruptability"]["max"] for s in self.point_sections),
            default=0,
        )
        return {
            "sweep": self.spec.as_dict(),
            "fingerprint": self.spec.fingerprint(),
            "points": list(self.point_sections),
            "totals": {
                "points": len(self.point_sections),
                "trials": self.trials,
                "successes": self.successes,
                "success_rate": (
                    self.successes / self.trials if self.trials else 0.0
                ),
                "worst_disruptability": worst,
                "whp_failed_points": self.whp_failures(),
            },
        }

    def summary_line(self) -> str:
        """The one-line stdout summary used with ``--json-out``."""
        failed = self.whp_failures()
        whp = "ok" if not failed else f"FAILED at points {failed}"
        return (
            f"sweep: {len(self.point_sections)} points x "
            f"{self.spec.trials} trials, success "
            f"{self.successes}/{self.trials}, whp {whp}"
        )


ProgressCallback = Callable[[SweepPoint, dict[str, Any]], None]


class SweepRunner:
    """Drive a :class:`SweepSpec` through a backend, durably if asked.

    Parameters
    ----------
    spec:
        The grid to run.
    backend:
        Any :class:`~repro.dispatch.backend.DispatchBackend`; defaults to
        :class:`~repro.dispatch.backend.SerialBackend` (the degenerate
        case of the design).
    journal_path:
        When given, every completed trial is appended (flushed + fsynced)
        to this JSONL journal before the sweep proceeds.
    resume:
        Replay an existing journal first: completed indices are skipped
        and their recorded results merged into the report, which ends up
        byte-identical to an uninterrupted run.  (With no existing
        journal, ``resume`` is a no-op and the run starts fresh.)
    on_point_complete:
        Streaming hook: called with ``(point, point_report_dict)`` the
        moment a grid point's last trial lands — this is what renders
        partial output mid-sweep.
    stop_after:
        Fault-injection/testing knob: stop (``SweepInterrupted``) after
        this many *newly executed* trials have been applied and
        journalled; resumed-from-journal results don't count.
    """

    def __init__(
        self,
        spec: SweepSpec,
        *,
        backend: DispatchBackend | None = None,
        journal_path: str | None = None,
        resume: bool = False,
        on_point_complete: ProgressCallback | None = None,
        stop_after: int | None = None,
    ) -> None:
        if stop_after is not None and stop_after < 1:
            raise ConfigurationError("stop_after must be >= 1 when given")
        self.spec = spec
        self.backend = backend if backend is not None else SerialBackend()
        self.journal_path = journal_path
        self.resume = resume
        self.on_point_complete = on_point_complete
        self.stop_after = stop_after
        self.state = SweepState(spec)

    def run(self) -> SweepReport:
        """Execute (or finish) the sweep; raises ``SweepInterrupted`` on
        an early stop, with everything so far already journalled."""
        spec = self.spec
        points = {p.point_index: p for p in spec.points()}
        journal: SweepJournal | None = None
        if self.journal_path is not None:
            journal, completed = SweepJournal.attach(
                self.journal_path, spec.fingerprint(), resume=self.resume
            )
            for result in completed.values():
                if self.state.add(result) and self.on_point_complete:
                    point = points[spec.point_for_index(result.index)]
                    self.on_point_complete(
                        point, self.state.point_report(point)
                    )
        already_done = {r.index for r in self.state.ordered()}
        remaining = [
            s for s in spec.specs() if s.index not in already_done
        ]
        newly_done = 0

        def on_result(result: TrialResult) -> None:
            nonlocal newly_done
            if journal is not None:
                journal.append(result)
            finished_point = self.state.add(result)
            newly_done += 1
            if finished_point and self.on_point_complete:
                point = points[spec.point_for_index(result.index)]
                self.on_point_complete(point, self.state.point_report(point))

        def should_stop() -> bool:
            return (
                self.stop_after is not None and newly_done >= self.stop_after
            )

        try:
            if remaining:
                self.backend.run(
                    remaining, on_result=on_result, should_stop=should_stop
                )
        finally:
            if journal is not None:
                journal.close()
        return SweepReport.build(spec, self.state.ordered())
