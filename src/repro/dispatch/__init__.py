"""Cluster-scale trial dispatch: pluggable backends, journal, sweeps.

ROADMAP's remote fan-out item observed that :class:`~repro.experiments.
trial.TrialSpec` is a plain picklable unit of work whose seed depends
only on its index — so the serial loop, the ``multiprocessing`` pool,
and a task queue spanning machines are the *same* computation dispatched
differently.  This package makes that literal:

* :mod:`~repro.dispatch.backend` — the :class:`~repro.dispatch.backend.
  DispatchBackend` contract (at-most-once result application keyed by
  trial index, streaming ``on_result``, interruptible) plus
  :class:`~repro.dispatch.backend.SerialBackend` and
  :class:`~repro.dispatch.backend.MultiprocessBackend`;
  :class:`~repro.dispatch.backend.ResultAssembler` is the shared
  order/duplicate-oblivious merge.
* :mod:`~repro.dispatch.socket_pool` — :class:`~repro.dispatch.
  socket_pool.SocketBackend`: a stdlib ``socket``/``selectors``/pickle
  coordinator serving ``python -m repro worker`` processes (local or on
  other machines), with length-prefixed framing, a versioned handshake,
  per-run spec-context tables (shared ``TrialSpec`` fields pickled once
  per worker, not once per trial), batched spec frames sized adaptively
  from observed per-trial cost (``--batch-size`` pins them), a pipelined
  in-flight window of batches per worker, optional warm pools reused
  across runs (``keep_alive=True`` / ``warm_up()`` / ``close()``), and
  lost-worker detection that requeues in-flight batches with
  already-applied indices filtered out.
* :mod:`~repro.dispatch.wire` — :func:`~repro.dispatch.wire.
  loads_restricted`, the allowlist unpickler both the socket frames and
  the journal's pickled records decode through (hostile payloads raise
  :class:`~repro.dispatch.wire.FrameRejected` instead of executing).
* :mod:`~repro.dispatch.journal` — the durable JSONL
  :class:`~repro.dispatch.journal.SweepJournal` (one fsynced record per
  completed trial; ``--resume`` replays it and skips completed indices).
* :mod:`~repro.dispatch.sweep` — :class:`~repro.dispatch.sweep.
  SweepSpec` grid expansion (seeds via ``RngRegistry.spawn("sweep",
  point_index, trial_index)``), :class:`~repro.dispatch.sweep.
  SweepRunner` with streaming per-point aggregation, and the
  backend-independent :class:`~repro.dispatch.sweep.SweepReport`.

``python -m repro sweep`` / ``python -m repro worker`` are the CLI
front-ends; ``MonteCarloRunner.run`` now delegates here, making its old
serial fallback one more backend.
"""

from .backend import (
    BACKEND_NAMES,
    DispatchBackend,
    MultiprocessBackend,
    ResultAssembler,
    SerialBackend,
    default_backend,
    make_backend,
)
from .journal import SweepJournal
from .socket_pool import SocketBackend, worker_main
from .sweep import (
    SweepPoint,
    SweepReport,
    SweepRunner,
    SweepSpec,
    SweepState,
)
from .wire import FrameRejected, RestrictedUnpickler, loads_restricted

__all__ = [
    "BACKEND_NAMES",
    "DispatchBackend",
    "FrameRejected",
    "MultiprocessBackend",
    "RestrictedUnpickler",
    "ResultAssembler",
    "SerialBackend",
    "SocketBackend",
    "SweepJournal",
    "SweepPoint",
    "SweepReport",
    "SweepRunner",
    "SweepSpec",
    "SweepState",
    "default_backend",
    "loads_restricted",
    "make_backend",
    "worker_main",
]
