"""Restricted unpickling for the two untrusted pickle surfaces.

The socket pool's frames and the journal's ``result`` records are
pickles, and until PR 8 both were decoded with a bare ``pickle.loads``
— meaning anyone who could write to the coordinator's port or edit a
journal file could execute arbitrary code at decode time (pickle's
``GLOBAL``/``STACK_GLOBAL`` opcodes import and call any dotted name,
which is how ``__reduce__`` payloads like ``os.system(...)`` work).

:func:`loads_restricted` closes that hole with the standard defence
from the ``pickle`` docs: a :class:`pickle.Unpickler` subclass whose
``find_class`` only resolves an explicit ``(module, name)`` allowlist.
Containers and scalars (dict/list/tuple/str/int/float/bool/bytes/None)
are encoded by dedicated opcodes that never touch ``find_class``, so
the allowlist below is exactly the set of *classes* our wire protocol
and journal records may carry:

* :class:`~repro.experiments.trial.TrialSpec` — requeue paths ship
  whole specs; ``contexts`` frames ship their field tuples;
* :class:`~repro.experiments.trial.TrialResult` — ``results`` frames
  and every journal ``trial`` record;
* :class:`~repro.radio.metrics.NetworkMetrics` — embedded in each
  result (``rounds_by_phase`` is a plain dict, no extra classes).

Anything else — ``os.system``, ``builtins.eval``, an unexpected repro
class — raises :class:`FrameRejected`, a :class:`~repro.errors.
DispatchError` subtype, so the journal replayer can treat a hostile or
foreign record as corruption without also swallowing the index-mismatch
``DispatchError`` that must stay fatal.

This module is the WIRE001 allowlist owner: ``repro.lint`` permits raw
``pickle`` here and flags it everywhere else.
"""

from __future__ import annotations

import io
import pickle

from ..errors import DispatchError


class FrameRejected(DispatchError):
    """An untrusted pickle referenced a name outside the allowlist."""


#: Exactly the classes legitimate frames and journal records contain.
#: Extend deliberately: every entry is attacker-reachable code.
UNPICKLE_ALLOWLIST: frozenset[tuple[str, str]] = frozenset(
    {
        ("repro.experiments.trial", "TrialSpec"),
        ("repro.experiments.trial", "TrialResult"),
        ("repro.radio.metrics", "NetworkMetrics"),
    }
)


class RestrictedUnpickler(pickle.Unpickler):
    """``find_class`` limited to :data:`UNPICKLE_ALLOWLIST`."""

    def find_class(self, module: str, name: str):  # noqa: D102
        if (module, name) in UNPICKLE_ALLOWLIST:
            return super().find_class(module, name)
        raise FrameRejected(
            f"frame references disallowed global {module}.{name}; "
            "allowed: "
            + ", ".join(sorted(f"{m}.{n}" for m, n in UNPICKLE_ALLOWLIST))
        )


def loads_restricted(data: bytes | bytearray | memoryview) -> object:
    """Decode one untrusted frame/record payload.

    Raises :class:`FrameRejected` for out-of-allowlist globals and
    normalises pickle's own decode failures (truncation, garbage) to
    ``pickle.UnpicklingError``/``EOFError`` exactly as ``pickle.loads``
    would, so existing corruption handling keeps working.
    """
    return RestrictedUnpickler(io.BytesIO(data)).load()
