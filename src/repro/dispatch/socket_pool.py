"""Stdlib-only socket worker pool: coordinator + ``python -m repro worker``.

The one backend that leaves the machine: a coordinator binds a TCP port,
workers (local subprocesses it spawns itself, or ``python -m repro worker
--connect HOST:PORT`` processes started anywhere that can reach the port)
connect, handshake, and pull *batches* of :class:`~repro.experiments.
trial.TrialSpec` coordinates.  ``socket`` + ``selectors`` + ``pickle``
only — no third-party queue.

Throughput model
----------------
Version 1 of this protocol shipped one fully-pickled spec per frame and
waited for its result before sending the next — per-trial round-trip
latency serialised with worker compute, and the shared spec fields
(workload, n, channels, …) were re-pickled for every trial.  Version 2
amortises all three costs, the classic message-complexity move of paying
per *batch* instead of per unit of work:

* **context table once per run** — the distinct ``(workload, n,
  channels, t, pairs, adversary, options)`` combinations are sent to
  each worker in a single ``contexts`` frame; batches then carry only
  ``(ctx_id, index, seed)`` triples per trial;
* **batched assignment** — a ``batch`` frame carries K trials; the
  worker runs them all and replies with one merged ``results`` frame.
  K adapts to the observed per-trial cost (workers report their batch
  compute time) targeting :data:`TARGET_BATCH_SECONDS` per batch, capped
  by a fair share of the remaining work so the tail stays balanced;
  ``batch_size=`` (CLI ``--batch-size``) pins K instead;
* **pipelined in-flight window** — each worker holds up to ``window``
  (default :data:`DEFAULT_WINDOW`) outstanding batches, so coordinator
  send latency hides behind worker compute instead of alternating with
  it;
* **warm pool** — the pool can outlive a single :meth:`SocketBackend.
  run` call (``keep_alive=True``): workers stay connected and the next
  batch of specs reuses them, paying spawn + import + handshake once.
  A whole sweep is already *one* ``run`` call (every point's trials in
  one interleaved stream); ``keep_alive`` extends that to sequences of
  sweeps.  :meth:`SocketBackend.warm_up` pre-spawns and handshakes the
  pool so timed runs measure dispatch, not process startup.

Wire protocol (version :data:`PROTOCOL_VERSION`)
------------------------------------------------
Every frame is a 4-byte big-endian length prefix followed by a pickled
dict (``pickle.HIGHEST_PROTOCOL``, capped at :data:`MAX_FRAME_BYTES`
against malformed prefixes):

* worker → ``{"kind": "hello", "protocol": 2, "repro": ..., "pid": ...}``
* coordinator → ``{"kind": "welcome"}`` or ``{"kind": "reject",
  "reason": ...}`` (protocol mismatch: the stray worker is turned away
  and the sweep continues with the rest);
* coordinator → ``{"kind": "contexts", "contexts": [ctx, ...]}`` — the
  run's distinct spec contexts, sent once per run per worker (replacing
  any previous table on a warm pool);
* coordinator → ``{"kind": "batch", "trials": [(ctx_id, index, seed),
  ...]}``; worker → ``{"kind": "results", "results": [TrialResult, ...],
  "elapsed": seconds}`` (one merged frame per batch; ``elapsed`` is the
  worker-side compute time feeding the adaptive batch size) or
  ``{"kind": "error", ...}`` if a trial itself raised — deterministic
  trials fail the same way everywhere, so that aborts the run instead of
  requeue-looping;
* coordinator → ``{"kind": "shutdown"}`` once the pool is released.

Fault model
-----------
A worker that vanishes (killed, OOM, network cut) surfaces as EOF or a
send failure; requeue works at **batch granularity**: every spec of its
in-flight batches that is still unapplied is handed to the next idle
worker (:func:`unapplied_specs` filters out indices whose results
already arrived — the :class:`~repro.dispatch.backend.ResultAssembler`'s
at-most-once-per-index rule makes redelivery of partially-applied
batches harmless either way).  Because per-trial seeds are a pure
function of the trial index, a requeued trial re-runs bit-for-bit
identically on any worker, so the merged report stays byte-identical to
serial regardless of batch sizes, completion order, retries, or worker
count.

Trust model: frames are pickles, but both directions decode through
:func:`~repro.dispatch.wire.loads_restricted`, whose ``find_class``
allowlist is exactly {``TrialSpec``, ``TrialResult``,
``NetworkMetrics``} — an attacker who reaches the port can disrupt a
sweep (:class:`~repro.dispatch.wire.FrameRejected` kills the
connection) but cannot make the pickle layer import or call anything
else.  Still bind to localhost or a private network you control:
frames are neither authenticated nor encrypted.
"""

from __future__ import annotations

import os
import pickle
import selectors
import socket
import subprocess
import sys
import time
from collections import deque
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..errors import ConfigurationError, DispatchError
from ..experiments.trial import TrialSpec
from ..experiments.workloads import run_trial
from .backend import DispatchBackend, ResultAssembler
from .wire import loads_restricted

PROTOCOL_VERSION = 2
"""Coordinator/worker wire-protocol version, checked in the handshake."""

MAX_FRAME_BYTES = 1 << 28
"""Upper bound on a single frame; larger prefixes abort the connection."""

_RECV_CHUNK = 1 << 16

DEFAULT_WINDOW = 2
"""Outstanding batches per worker: enough to hide coordinator latency
behind worker compute without hoarding work on one connection."""

INITIAL_BATCH = 2
"""Batch size before any latency observation exists: small, so the first
``results`` frame (and its ``elapsed`` measurement) arrives quickly."""

MAX_BATCH = 256
"""Adaptive batch-size ceiling; frames stay far below the size cap."""

TARGET_BATCH_SECONDS = 0.25
"""Adaptive target for one batch's worker compute time: long enough to
amortise a round trip, short enough for balanced tails and prompt
journal flushes."""


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


def _check_frame_length(length: int) -> None:
    """The single :data:`MAX_FRAME_BYTES` guard, shared by both
    directions and both decoder styles."""
    if length > MAX_FRAME_BYTES:
        raise DispatchError(
            f"refusing a {length}-byte frame (cap {MAX_FRAME_BYTES})"
        )


def send_frame(sock: socket.socket, obj: Any) -> None:
    """Pickle ``obj`` (``HIGHEST_PROTOCOL``) and send it length-prefixed."""
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    _check_frame_length(len(data))
    sock.sendall(len(data).to_bytes(4, "big") + data)


def _recv_exact(sock: socket.socket, nbytes: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < nbytes:
        chunk = sock.recv(nbytes - len(chunks))
        if not chunk:
            raise EOFError("connection closed mid-frame")
        chunks.extend(chunk)
    return bytes(chunks)


def recv_frame(sock: socket.socket) -> Any:
    """Blocking read of one length-prefixed frame (the worker side)."""
    length = int.from_bytes(_recv_exact(sock, 4), "big")
    _check_frame_length(length)
    return loads_restricted(_recv_exact(sock, length))


class FrameDecoder:
    """Incremental decoder for the coordinator's non-blocking reads.

    One ``bytearray`` feed buffer; completed frames are unpickled through
    a ``memoryview`` so the payload is never copied out first.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[Any]:
        """Buffer ``data``; return every frame completed by it."""
        self._buffer.extend(data)
        frames: list[Any] = []
        while len(self._buffer) >= 4:
            length = int.from_bytes(self._buffer[:4], "big")
            _check_frame_length(length)
            if len(self._buffer) < 4 + length:
                break
            # Both views must be released before the del resizes the
            # buffer (a live export would raise BufferError).
            with memoryview(self._buffer) as view, \
                    view[4 : 4 + length] as payload:
                frames.append(loads_restricted(payload))
            del self._buffer[: 4 + length]
        return frames


# ----------------------------------------------------------------------
# Spec contexts: the shared fields, pickled once per run per worker
# ----------------------------------------------------------------------


def spec_context(spec: TrialSpec) -> tuple:
    """The spec's shared fields — everything but ``(index, seed)``."""
    return (
        spec.workload, spec.n, spec.channels, spec.t, spec.pairs,
        spec.adversary, spec.options,
    )


def spec_from_context(ctx: tuple, index: int, seed: int) -> TrialSpec:
    """Rebuild the exact :class:`TrialSpec` a batch triple refers to."""
    workload, n, channels, t, pairs, adversary, options = ctx
    return TrialSpec(
        workload=workload, index=index, seed=seed, n=n, channels=channels,
        t=t, pairs=pairs, adversary=adversary, options=tuple(options),
    )


def unapplied_specs(
    in_flight: Mapping[int, TrialSpec], missing: Iterable[int]
) -> list[TrialSpec]:
    """A dead worker's requeue set: in-flight specs still unapplied.

    Redelivery at batch granularity is safe because the assembler drops
    duplicates by index — this filter merely avoids re-running trials
    whose results already arrived (e.g. the worker died *after* its
    results frame was processed, or a prior requeue completed elsewhere).
    """
    missing_set = set(missing)
    return [
        spec for index, spec in sorted(in_flight.items())
        if index in missing_set
    ]


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def parse_endpoint(text: str) -> tuple[str, int]:
    """Parse ``HOST:PORT`` (the ``--connect`` / ``--bind`` argument)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ConfigurationError(
            f"endpoint {text!r} is not of the form HOST:PORT"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ConfigurationError(
            f"endpoint {text!r} has a non-integer port"
        ) from None


def worker_main(
    host: str, port: int, *, retry_seconds: float = 10.0
) -> int:
    """The ``python -m repro worker`` loop; returns a process exit code.

    Connects (retrying up to ``retry_seconds`` so workers may be started
    before the coordinator binds), handshakes, stores each ``contexts``
    table as it arrives, then runs ``batch`` frames — every trial of a
    batch back to back, one merged ``results`` frame (with the batch's
    compute time) back — until the coordinator sends ``shutdown`` (exit
    0).  A rejected handshake exits 2; a coordinator that vanishes
    mid-run exits 1.
    """
    from .. import __version__

    deadline = time.monotonic() + retry_seconds
    sock: socket.socket | None = None
    while sock is None:
        try:
            sock = socket.create_connection((host, port), timeout=10.0)
        except OSError:
            if time.monotonic() >= deadline:
                print(
                    f"repro worker: cannot reach {host}:{port} "
                    f"after {retry_seconds}s",
                    file=sys.stderr,
                )
                return 1
            time.sleep(0.1)
    sock.settimeout(None)
    contexts: list[tuple] | None = None
    try:
        send_frame(
            sock,
            {
                "kind": "hello",
                "protocol": PROTOCOL_VERSION,
                "repro": __version__,
                "pid": os.getpid(),
            },
        )
        greeting = recv_frame(sock)
        if greeting.get("kind") != "welcome":
            print(
                f"repro worker: rejected by coordinator: "
                f"{greeting.get('reason', greeting)}",
                file=sys.stderr,
            )
            return 2
        while True:
            frame = recv_frame(sock)
            kind = frame.get("kind")
            if kind == "shutdown":
                return 0
            if kind == "contexts":
                contexts = frame["contexts"]
                continue
            if kind != "batch":
                print(
                    f"repro worker: unexpected frame {kind!r}",
                    file=sys.stderr,
                )
                return 1
            if contexts is None:
                print(
                    "repro worker: batch before contexts", file=sys.stderr
                )
                return 1
            results = []
            failed = False
            start = time.perf_counter()
            for ctx_id, index, seed in frame["trials"]:
                spec = spec_from_context(contexts[ctx_id], index, seed)
                try:
                    results.append(run_trial(spec))
                except Exception as exc:  # deterministic failure: report
                    send_frame(
                        sock,
                        {
                            "kind": "error",
                            "index": index,
                            "error": f"{type(exc).__name__}: {exc}",
                        },
                    )
                    failed = True
                    break
            if not failed:
                send_frame(
                    sock,
                    {
                        "kind": "results",
                        "results": results,
                        "elapsed": time.perf_counter() - start,
                    },
                )
    except (EOFError, OSError):
        print("repro worker: coordinator vanished", file=sys.stderr)
        return 1
    finally:
        sock.close()


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


class _Connection:
    """Coordinator-side state for one worker socket."""

    __slots__ = ("sock", "decoder", "ready", "in_flight", "outstanding",
                 "peer")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.decoder = FrameDecoder()
        self.ready = False  # handshake completed
        self.in_flight: dict[int, TrialSpec] = {}  # index -> spec
        self.outstanding = 0  # batches sent, results frame not yet seen
        self.peer: dict[str, Any] = {}


class SocketBackend(DispatchBackend):
    """Coordinator for the batched, pipelined socket worker pool.

    Parameters
    ----------
    workers:
        Local worker subprocesses to spawn (``spawn_workers=True``); also
        the pool's nominal size, used to split early batches fairly
        before every worker has connected.
    host, port:
        Bind address; ``port=0`` lets the OS pick (the spawned workers
        are told the real port).  Bind a routable host + fixed port with
        ``spawn_workers=False`` to serve workers on other machines.
    spawn_workers:
        Spawn ``workers`` local ``python -m repro worker`` subprocesses
        after binding.  When ``False`` the coordinator only listens and
        prints the bound endpoint to stderr; start workers yourself.
    batch_size:
        Trials per ``batch`` frame.  ``None`` (default) adapts: start at
        :data:`INITIAL_BATCH`, then target :data:`TARGET_BATCH_SECONDS`
        of worker compute per batch from the observed per-trial cost,
        always capped by a fair share of the remaining work.
    window:
        Outstanding batches per worker (pipelining depth).
    keep_alive:
        Keep the pool connected after :meth:`run` completes so the next
        ``run`` reuses the same warm workers; call :meth:`close` (or use
        the backend as a context manager) to release them.  ``False``
        restores the one-shot behaviour: the pool is torn down when the
        batch completes.
    accept_timeout:
        Seconds to wait for the first successful handshake.
    idle_timeout:
        Seconds of no frames/connections before the batch is declared
        stuck (workers are then torn down; journalled trials survive).
    """

    name = "socket"

    def __init__(
        self,
        workers: int = 2,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        spawn_workers: bool = True,
        batch_size: int | None = None,
        window: int = DEFAULT_WINDOW,
        keep_alive: bool = False,
        accept_timeout: float = 30.0,
        idle_timeout: float = 300.0,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("SocketBackend needs workers >= 1")
        if batch_size is not None and batch_size < 1:
            raise ConfigurationError("batch_size must be >= 1 when given")
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        self.workers = workers
        self.host = host
        self.port = port
        self.spawn_workers = spawn_workers
        self.batch_size = batch_size
        self.window = window
        self.keep_alive = keep_alive
        self.accept_timeout = accept_timeout
        self.idle_timeout = idle_timeout
        self.target_batch_seconds = TARGET_BATCH_SECONDS
        self.spawned: list[subprocess.Popen] = []
        self.address: tuple[str, int] | None = None
        self._sel: selectors.BaseSelector | None = None
        self._listener: socket.socket | None = None
        self._conns: dict[int, _Connection] = {}
        self._ever_connected = False
        self._trial_cost: float | None = None  # EWMA seconds per trial

    # -- worker process management ------------------------------------

    def _spawn(self, count: int) -> None:
        import repro

        src_root = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            src_root + os.pathsep + existing if existing else src_root
        )
        host, port = self.address  # type: ignore[misc]
        for _ in range(count):
            self.spawned.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro",
                        "worker",
                        "--connect",
                        f"{host}:{port}",
                    ],
                    env=env,
                )
            )

    def _reap_spawned(self, *, force: bool) -> None:
        for proc in self.spawned:
            if proc.poll() is None and force:
                proc.terminate()
        for proc in self.spawned:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10.0)

    # -- pool lifecycle -------------------------------------------------

    @property
    def pool_open(self) -> bool:
        """True while the listener (and any warm workers) are live."""
        return self._listener is not None

    def _open_pool(self) -> None:
        sel = selectors.DefaultSelector()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen()
        listener.setblocking(False)
        self.address = listener.getsockname()[:2]
        sel.register(listener, selectors.EVENT_READ, data=None)
        self._sel = sel
        self._listener = listener
        self._conns = {}
        self._ever_connected = False
        self.spawned = []
        if self.spawn_workers:
            self._spawn(self.workers)
        else:
            print(
                f"repro sweep: socket coordinator listening on "
                f"{self.address[0]}:{self.address[1]}",
                file=sys.stderr,
            )

    def _close_pool(self, *, force: bool) -> None:
        """Tear the pool down; graceful closes say goodbye first."""
        if self._sel is None:
            return
        for conn in list(self._conns.values()):
            if not force:
                try:
                    send_frame(conn.sock, {"kind": "shutdown"})
                except OSError:
                    pass
            try:
                self._sel.unregister(conn.sock)
            except (KeyError, ValueError):
                pass
            conn.sock.close()
        self._conns = {}
        if self._listener is not None:
            try:
                self._sel.unregister(self._listener)
            except (KeyError, ValueError):
                pass
            self._listener.close()
            self._listener = None
        self._sel.close()
        self._sel = None
        # Workers exit on shutdown/EOF; force only the stragglers.
        self._reap_spawned(force=force)

    def close(self) -> None:
        """Release a warm pool: shutdown frames, reap, close sockets."""
        self._close_pool(force=False)

    def warm_up(self, timeout: float | None = None) -> int:
        """Open the pool and wait for every spawned worker's handshake.

        Returns the number of ready workers.  With ``spawn_workers=False``
        it waits for at least one remote worker.  Spawn + import +
        handshake are one-time pool costs; warming separates them from
        dispatch throughput (and is what a long-lived cluster pool looks
        like in steady state).  The pool stays open afterwards regardless
        of ``keep_alive`` — pair with :meth:`close`.
        """
        if not self.pool_open:
            self._open_pool()
        deadline = time.monotonic() + (
            timeout if timeout is not None else self.accept_timeout
        )
        want = self.workers if self.spawn_workers else 1
        while self._ready_count() < want:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DispatchError(
                    f"only {self._ready_count()}/{want} workers completed "
                    f"the handshake while warming up"
                )
            for key, _events in self._sel.select(timeout=min(remaining, 0.25)):
                if key.data is None:
                    self._accept()
                    continue
                conn = key.data
                try:
                    chunk = conn.sock.recv(_RECV_CHUNK)
                except (BlockingIOError, InterruptedError):
                    continue
                except OSError:
                    self._forget(conn)
                    continue
                if not chunk:
                    self._forget(conn)
                    continue
                for frame in conn.decoder.feed(chunk):
                    self._handshake(frame, conn)
        return self._ready_count()

    def _ready_count(self) -> int:
        return sum(1 for c in self._conns.values() if c.ready)

    def _accept(self) -> _Connection | None:
        try:
            accepted, _addr = self._listener.accept()
        except (BlockingIOError, OSError):
            return None
        accepted.setblocking(False)
        conn = _Connection(accepted)
        self._conns[accepted.fileno()] = conn
        self._sel.register(accepted, selectors.EVENT_READ, data=conn)
        return conn

    def _forget(self, conn: _Connection) -> None:
        """Drop a connection without requeueing (no run in progress)."""
        try:
            self._sel.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        self._conns.pop(conn.sock.fileno(), None)
        conn.sock.close()

    def _handshake(self, frame: Any, conn: _Connection) -> bool:
        """Process a ``hello``; True if the worker was welcomed."""
        kind = frame.get("kind") if isinstance(frame, dict) else None
        if kind != "hello":
            raise DispatchError(f"unexpected frame from worker: {frame!r}")
        conn.peer = frame
        if frame.get("protocol") != PROTOCOL_VERSION:
            try:
                send_frame(
                    conn.sock,
                    {
                        "kind": "reject",
                        "reason": (
                            f"protocol {frame.get('protocol')!r} != "
                            f"coordinator protocol {PROTOCOL_VERSION}"
                        ),
                    },
                )
            except OSError:
                pass
            self._forget(conn)
            return False
        try:
            send_frame(conn.sock, {"kind": "welcome"})
        except OSError:
            self._forget(conn)
            return False
        conn.ready = True
        self._ever_connected = True
        return True

    # -- batch sizing ---------------------------------------------------

    def _observe_batch(self, elapsed: float | None, count: int) -> None:
        """Fold one results frame's compute time into the cost EWMA."""
        if not elapsed or count < 1:
            return
        per_trial = elapsed / count
        if self._trial_cost is None:
            self._trial_cost = per_trial
        else:
            self._trial_cost = 0.5 * self._trial_cost + 0.5 * per_trial

    def _next_batch_size(self, pending_count: int, live_workers: int) -> int:
        """Trials for the next ``batch`` frame.

        A pinned ``batch_size`` wins outright (bar the pending cap).
        Otherwise: before any observation, :data:`INITIAL_BATCH`; after,
        enough trials for ~``target_batch_seconds`` of worker compute —
        both capped by a fair share of the remaining work across the
        pool's window slots, so one early-connecting worker can never
        hoard the whole stream and the tail splits evenly.
        """
        if pending_count < 1:
            return 0
        if self.batch_size is not None:
            return min(self.batch_size, pending_count)
        if self._trial_cost is None:
            size = INITIAL_BATCH
        else:
            size = int(self.target_batch_seconds / max(self._trial_cost, 1e-9))
        slots = max(live_workers, self.workers, 1) * self.window
        fair = -(-pending_count // slots)  # ceil
        return max(1, min(size, MAX_BATCH, fair, pending_count))

    # -- the coordinator loop ------------------------------------------

    def _execute(self, specs, assembler, should_stop):
        pending: deque[TrialSpec] = deque(specs)
        # The run's context table: shared spec fields, pickled once per
        # worker instead of once per trial.
        contexts: list[tuple] = []
        ctx_ids: dict[tuple, int] = {}
        for spec in specs:
            ctx = spec_context(spec)
            if ctx not in ctx_ids:
                ctx_ids[ctx] = len(contexts)
                contexts.append(ctx)
        contexts_frame = {"kind": "contexts", "contexts": contexts}

        if not self.pool_open:
            self._open_pool()
        sel = self._sel
        started = last_activity = time.monotonic()

        def drop(conn: _Connection) -> None:
            """Forget a worker; requeue its unapplied in-flight specs."""
            self._forget(conn)
            requeue = unapplied_specs(conn.in_flight, assembler.missing())
            conn.in_flight = {}
            conn.outstanding = 0
            if requeue:
                pending.extendleft(reversed(requeue))
                assign_idle()

        def send_or_drop(conn: _Connection, frame: dict[str, Any]) -> bool:
            try:
                send_frame(conn.sock, frame)
                return True
            except OSError:
                drop(conn)
                return False

        def live_workers() -> int:
            return self._ready_count()

        def assign(conn: _Connection) -> None:
            """Fill the worker's window with batches off the stream."""
            while conn.ready and conn.outstanding < self.window and pending:
                size = self._next_batch_size(len(pending), live_workers())
                batch = [pending.popleft() for _ in range(size)]
                trials = [
                    (ctx_ids[spec_context(s)], s.index, s.seed)
                    for s in batch
                ]
                # Record in-flight before sending: a failed send drops
                # the connection, and drop() requeues from in_flight.
                for s in batch:
                    conn.in_flight[s.index] = s
                conn.outstanding += 1
                if not send_or_drop(conn, {"kind": "batch", "trials": trials}):
                    return

        def assign_idle() -> None:
            """Hand requeued work to ready workers with window room."""
            for conn in list(self._conns.values()):
                if not pending:
                    return
                if conn.ready and conn.outstanding < self.window:
                    assign(conn)

        def handle(frame: Any, conn: _Connection) -> None:
            kind = frame.get("kind") if isinstance(frame, dict) else None
            if kind == "hello":
                if self._handshake(frame, conn):
                    if send_or_drop(conn, contexts_frame):
                        assign(conn)
                return
            if kind == "results":
                results = frame["results"]
                # Guard against a misbehaving worker's extra frames.
                if conn.outstanding > 0:
                    conn.outstanding -= 1
                self._observe_batch(frame.get("elapsed"), len(results))
                for result in results:
                    conn.in_flight.pop(result.index, None)
                    assembler.apply(result)  # duplicates dropped by index
                    self._check_stop(assembler, should_stop)
                    if assembler.done:
                        break
                assign(conn)
                return
            if kind == "error":
                raise DispatchError(
                    f"trial {frame.get('index')} failed on worker "
                    f"pid={conn.peer.get('pid')}: {frame.get('error')}"
                )
            raise DispatchError(f"unexpected frame from worker: {frame!r}")

        try:
            # A warm pool's workers are mid-recv: ship the new run's
            # context table and start filling their windows immediately.
            for conn in list(self._conns.values()):
                if conn.ready and send_or_drop(conn, contexts_frame):
                    assign(conn)
            while not assembler.done:
                for key, _events in sel.select(timeout=0.25):
                    if key.data is None:
                        if self._accept() is not None:
                            last_activity = time.monotonic()
                        continue
                    conn = key.data
                    try:
                        chunk = conn.sock.recv(_RECV_CHUNK)
                    except (BlockingIOError, InterruptedError):
                        continue
                    except OSError:
                        drop(conn)
                        continue
                    if not chunk:
                        drop(conn)
                        continue
                    last_activity = time.monotonic()
                    for frame in conn.decoder.feed(chunk):
                        handle(frame, conn)
                        if assembler.done:
                            break
                now = time.monotonic()
                if not assembler.done:
                    self._check_liveness(assembler, started, last_activity, now)
        except BaseException:
            # Interrupts and dispatch errors always tear the pool down —
            # journalled trials survive; a fresh backend resumes them.
            self._close_pool(force=True)
            raise
        if not self.keep_alive:
            self._close_pool(force=False)

    def _check_liveness(self, assembler, started, last_activity, now) -> None:
        live = self._ready_count()
        if not self._ever_connected and now - started > self.accept_timeout:
            raise DispatchError(
                f"no worker completed the handshake within "
                f"{self.accept_timeout}s"
            )
        if self.spawn_workers and not live:
            if self.spawned and all(
                p.poll() is not None for p in self.spawned
            ):
                raise DispatchError(
                    f"all {len(self.spawned)} spawned workers exited with "
                    f"trials missing: {assembler.missing()[:10]}"
                )
        if now - last_activity > self.idle_timeout:
            raise DispatchError(
                f"no worker activity for {self.idle_timeout}s with "
                f"trials missing: {assembler.missing()[:10]}"
            )
