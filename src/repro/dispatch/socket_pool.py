"""Stdlib-only socket worker pool: coordinator + ``python -m repro worker``.

The one backend that leaves the machine: a coordinator binds a TCP port,
workers (local subprocesses it spawns itself, or ``python -m repro worker
--connect HOST:PORT`` processes started anywhere that can reach the port)
connect, handshake, and pull one :class:`~repro.experiments.trial.
TrialSpec` at a time.  ``socket`` + ``selectors`` + ``pickle`` only — no
third-party queue.

Wire protocol (version :data:`PROTOCOL_VERSION`)
------------------------------------------------
Every frame is a 4-byte big-endian length prefix followed by a pickled
dict (capped at :data:`MAX_FRAME_BYTES` against malformed prefixes):

* worker → ``{"kind": "hello", "protocol": 1, "repro": ..., "pid": ...}``
* coordinator → ``{"kind": "welcome"}`` or ``{"kind": "reject",
  "reason": ...}`` (protocol mismatch: the stray worker is turned away
  and the sweep continues with the rest);
* coordinator → ``{"kind": "task", "spec": TrialSpec}``; worker →
  ``{"kind": "result", "result": TrialResult}`` (or ``{"kind": "error",
  ...}`` if the trial itself raised — deterministic trials fail the same
  way everywhere, so that aborts the batch instead of requeueing);
* coordinator → ``{"kind": "shutdown"}`` once every trial is applied.

Fault model
-----------
A worker that vanishes (killed, OOM, network cut) surfaces as EOF or a
send failure; its in-flight spec is requeued for the next idle worker —
*unless* its result already arrived, the at-most-once guard
(:class:`~repro.dispatch.backend.ResultAssembler` keyed by trial index)
making redelivery harmless either way.  Because per-trial seeds are a
pure function of the trial index, a requeued trial re-runs bit-for-bit
identically on any worker, so the merged report stays byte-identical to
serial regardless of completion order, retries, or worker count.

Trust model: coordinator and workers mutually trust each other (frames
are pickles).  Bind to localhost or a private network you control.
"""

from __future__ import annotations

import os
import pickle
import selectors
import socket
import subprocess
import sys
import time
from collections import deque
from pathlib import Path
from typing import Any

from ..errors import ConfigurationError, DispatchError
from ..experiments.trial import TrialSpec
from ..experiments.workloads import run_trial
from .backend import DispatchBackend, ResultAssembler

PROTOCOL_VERSION = 1
"""Coordinator/worker wire-protocol version, checked in the handshake."""

MAX_FRAME_BYTES = 1 << 28
"""Upper bound on a single frame; larger prefixes abort the connection."""

_RECV_CHUNK = 1 << 16


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


def send_frame(sock: socket.socket, obj: Any) -> None:
    """Pickle ``obj`` and send it with a 4-byte length prefix."""
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    if len(data) > MAX_FRAME_BYTES:
        raise DispatchError(
            f"refusing to send a {len(data)}-byte frame "
            f"(cap {MAX_FRAME_BYTES})"
        )
    sock.sendall(len(data).to_bytes(4, "big") + data)


def _recv_exact(sock: socket.socket, nbytes: int) -> bytes:
    chunks = bytearray()
    while len(chunks) < nbytes:
        chunk = sock.recv(nbytes - len(chunks))
        if not chunk:
            raise EOFError("connection closed mid-frame")
        chunks.extend(chunk)
    return bytes(chunks)


def recv_frame(sock: socket.socket) -> Any:
    """Blocking read of one length-prefixed frame (the worker side)."""
    length = int.from_bytes(_recv_exact(sock, 4), "big")
    if length > MAX_FRAME_BYTES:
        raise DispatchError(
            f"peer announced a {length}-byte frame (cap {MAX_FRAME_BYTES})"
        )
    return pickle.loads(_recv_exact(sock, length))


class FrameDecoder:
    """Incremental decoder for the coordinator's non-blocking reads."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[Any]:
        """Buffer ``data``; return every frame completed by it."""
        self._buffer.extend(data)
        frames: list[Any] = []
        while len(self._buffer) >= 4:
            length = int.from_bytes(self._buffer[:4], "big")
            if length > MAX_FRAME_BYTES:
                raise DispatchError(
                    f"peer announced a {length}-byte frame "
                    f"(cap {MAX_FRAME_BYTES})"
                )
            if len(self._buffer) < 4 + length:
                break
            frames.append(pickle.loads(bytes(self._buffer[4 : 4 + length])))
            del self._buffer[: 4 + length]
        return frames


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def parse_endpoint(text: str) -> tuple[str, int]:
    """Parse ``HOST:PORT`` (the ``--connect`` / ``--bind`` argument)."""
    host, sep, port = text.rpartition(":")
    if not sep or not host:
        raise ConfigurationError(
            f"endpoint {text!r} is not of the form HOST:PORT"
        )
    try:
        return host, int(port)
    except ValueError:
        raise ConfigurationError(
            f"endpoint {text!r} has a non-integer port"
        ) from None


def worker_main(
    host: str, port: int, *, retry_seconds: float = 10.0
) -> int:
    """The ``python -m repro worker`` loop; returns a process exit code.

    Connects (retrying up to ``retry_seconds`` so workers may be started
    before the coordinator binds), handshakes, then pulls tasks until the
    coordinator sends ``shutdown`` (exit 0).  A rejected handshake exits
    2; a coordinator that vanishes mid-run exits 1.
    """
    from .. import __version__

    deadline = time.monotonic() + retry_seconds
    sock: socket.socket | None = None
    while sock is None:
        try:
            sock = socket.create_connection((host, port), timeout=10.0)
        except OSError:
            if time.monotonic() >= deadline:
                print(
                    f"repro worker: cannot reach {host}:{port} "
                    f"after {retry_seconds}s",
                    file=sys.stderr,
                )
                return 1
            time.sleep(0.1)
    sock.settimeout(None)
    try:
        send_frame(
            sock,
            {
                "kind": "hello",
                "protocol": PROTOCOL_VERSION,
                "repro": __version__,
                "pid": os.getpid(),
            },
        )
        greeting = recv_frame(sock)
        if greeting.get("kind") != "welcome":
            print(
                f"repro worker: rejected by coordinator: "
                f"{greeting.get('reason', greeting)}",
                file=sys.stderr,
            )
            return 2
        while True:
            frame = recv_frame(sock)
            kind = frame.get("kind")
            if kind == "shutdown":
                return 0
            if kind != "task":
                print(
                    f"repro worker: unexpected frame {kind!r}",
                    file=sys.stderr,
                )
                return 1
            spec: TrialSpec = frame["spec"]
            try:
                result = run_trial(spec)
            except Exception as exc:  # deterministic failure: report it
                send_frame(
                    sock,
                    {
                        "kind": "error",
                        "index": spec.index,
                        "error": f"{type(exc).__name__}: {exc}",
                    },
                )
                continue
            send_frame(sock, {"kind": "result", "result": result})
    except (EOFError, OSError):
        print("repro worker: coordinator vanished", file=sys.stderr)
        return 1
    finally:
        sock.close()


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


class _Connection:
    """Coordinator-side state for one worker socket."""

    __slots__ = ("sock", "decoder", "ready", "in_flight", "peer")

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.decoder = FrameDecoder()
        self.ready = False  # handshake completed
        self.in_flight: TrialSpec | None = None
        self.peer: dict[str, Any] = {}


class SocketBackend(DispatchBackend):
    """Coordinator for the socket worker pool.

    Parameters
    ----------
    workers:
        Local worker subprocesses to spawn (``spawn_workers=True``); also
        the pool's nominal size for reporting.
    host, port:
        Bind address; ``port=0`` lets the OS pick (the spawned workers
        are told the real port).  Bind a routable host + fixed port with
        ``spawn_workers=False`` to serve workers on other machines.
    spawn_workers:
        Spawn ``workers`` local ``python -m repro worker`` subprocesses
        after binding.  When ``False`` the coordinator only listens and
        prints the bound endpoint to stderr; start workers yourself.
    accept_timeout:
        Seconds to wait for the first successful handshake.
    idle_timeout:
        Seconds of no frames/connections before the batch is declared
        stuck (workers are then torn down; journalled trials survive).
    """

    name = "socket"

    def __init__(
        self,
        workers: int = 2,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        spawn_workers: bool = True,
        accept_timeout: float = 30.0,
        idle_timeout: float = 300.0,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("SocketBackend needs workers >= 1")
        self.workers = workers
        self.host = host
        self.port = port
        self.spawn_workers = spawn_workers
        self.accept_timeout = accept_timeout
        self.idle_timeout = idle_timeout
        self.spawned: list[subprocess.Popen] = []
        self.address: tuple[str, int] | None = None

    # -- worker process management ------------------------------------

    def _spawn(self, count: int) -> None:
        import repro

        src_root = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            src_root + os.pathsep + existing if existing else src_root
        )
        host, port = self.address  # type: ignore[misc]
        for _ in range(count):
            self.spawned.append(
                subprocess.Popen(
                    [
                        sys.executable,
                        "-m",
                        "repro",
                        "worker",
                        "--connect",
                        f"{host}:{port}",
                    ],
                    env=env,
                )
            )

    def _reap_spawned(self, *, force: bool) -> None:
        for proc in self.spawned:
            if proc.poll() is None and force:
                proc.terminate()
        for proc in self.spawned:
            try:
                proc.wait(timeout=10.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=10.0)

    # -- the coordinator loop ------------------------------------------

    def _execute(self, specs, assembler, should_stop):
        pending: deque[TrialSpec] = deque(specs)
        sel = selectors.DefaultSelector()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self.port))
        listener.listen()
        listener.setblocking(False)
        self.address = listener.getsockname()[:2]
        sel.register(listener, selectors.EVENT_READ, data=None)
        conns: dict[int, _Connection] = {}
        self.spawned = []
        ever_connected = False
        started = last_activity = time.monotonic()

        def drop(conn: _Connection) -> None:
            """Forget a worker; requeue its unapplied in-flight spec."""
            try:
                sel.unregister(conn.sock)
            except (KeyError, ValueError):
                pass
            conns.pop(conn.sock.fileno(), None)
            conn.sock.close()
            spec = conn.in_flight
            conn.in_flight = None
            if spec is not None and spec.index in assembler.missing():
                pending.appendleft(spec)
                assign_idle()

        def send_or_drop(conn: _Connection, frame: dict[str, Any]) -> bool:
            try:
                send_frame(conn.sock, frame)
                return True
            except OSError:
                drop(conn)
                return False

        def assign(conn: _Connection) -> None:
            if conn.in_flight is None and pending:
                spec = pending.popleft()
                conn.in_flight = spec
                if not send_or_drop(conn, {"kind": "task", "spec": spec}):
                    return  # drop() already requeued the spec

        def assign_idle() -> None:
            """Hand requeued work to an already-idle ready worker."""
            for conn in list(conns.values()):
                if not pending:
                    return
                if conn.ready and conn.in_flight is None:
                    assign(conn)

        def handle(frame: Any, conn: _Connection) -> None:
            kind = frame.get("kind") if isinstance(frame, dict) else None
            if kind == "hello":
                conn.peer = frame
                if frame.get("protocol") != PROTOCOL_VERSION:
                    send_or_drop(
                        conn,
                        {
                            "kind": "reject",
                            "reason": (
                                f"protocol {frame.get('protocol')!r} != "
                                f"coordinator protocol {PROTOCOL_VERSION}"
                            ),
                        },
                    )
                    conn.ready = False
                    drop(conn)
                    return
                if send_or_drop(conn, {"kind": "welcome"}):
                    conn.ready = True
                    assign(conn)
                return
            if kind == "result":
                result = frame["result"]
                if conn.in_flight is not None and (
                    conn.in_flight.index == result.index
                ):
                    conn.in_flight = None
                assembler.apply(result)  # duplicates dropped by index
                self._check_stop(assembler, should_stop)
                assign(conn)
                return
            if kind == "error":
                raise DispatchError(
                    f"trial {frame.get('index')} failed on worker "
                    f"pid={conn.peer.get('pid')}: {frame.get('error')}"
                )
            raise DispatchError(f"unexpected frame from worker: {frame!r}")

        try:
            if self.spawn_workers:
                self._spawn(self.workers)
            else:
                print(
                    f"repro sweep: socket coordinator listening on "
                    f"{self.address[0]}:{self.address[1]}",
                    file=sys.stderr,
                )
            while not assembler.done:
                for key, _events in sel.select(timeout=0.25):
                    if key.data is None:
                        try:
                            accepted, _addr = listener.accept()
                        except BlockingIOError:
                            continue
                        accepted.setblocking(False)
                        conn = _Connection(accepted)
                        conns[accepted.fileno()] = conn
                        sel.register(
                            accepted, selectors.EVENT_READ, data=conn
                        )
                        last_activity = time.monotonic()
                        continue
                    conn = key.data
                    try:
                        chunk = conn.sock.recv(_RECV_CHUNK)
                    except BlockingIOError:
                        continue
                    except OSError:
                        drop(conn)
                        continue
                    if not chunk:
                        drop(conn)
                        continue
                    last_activity = time.monotonic()
                    for frame in conn.decoder.feed(chunk):
                        handle(frame, conn)
                        if assembler.done:
                            break
                    ever_connected = ever_connected or conn.ready
                now = time.monotonic()
                if not assembler.done:
                    self._check_liveness(
                        assembler, ever_connected, conns, started,
                        last_activity, now,
                    )
            # Batch complete: release every connected worker.
            for conn in list(conns.values()):
                send_or_drop(conn, {"kind": "shutdown"})
        finally:
            for conn in list(conns.values()):
                try:
                    sel.unregister(conn.sock)
                except (KeyError, ValueError):
                    pass
                conn.sock.close()
            sel.unregister(listener)
            listener.close()
            sel.close()
            # Workers exit on shutdown/EOF; force only the stragglers.
            self._reap_spawned(force=not assembler.done)

    def _check_liveness(
        self, assembler, ever_connected, conns, started, last_activity, now
    ) -> None:
        live = [c for c in conns.values() if c.ready]
        if not ever_connected and now - started > self.accept_timeout:
            if self.spawn_workers:
                self._reap_spawned(force=True)
            raise DispatchError(
                f"no worker completed the handshake within "
                f"{self.accept_timeout}s"
            )
        if self.spawn_workers and not live:
            if all(p.poll() is not None for p in self.spawned):
                raise DispatchError(
                    f"all {len(self.spawned)} spawned workers exited with "
                    f"trials missing: {assembler.missing()[:10]}"
                )
        if now - last_activity > self.idle_timeout:
            raise DispatchError(
                f"no worker activity for {self.idle_timeout}s with "
                f"trials missing: {assembler.missing()[:10]}"
            )
