"""Pluggable trial-dispatch backends.

A backend's only job is: given a batch of :class:`~repro.experiments.trial.
TrialSpec`s, execute each one exactly once (logically) and hand back the
:class:`~repro.experiments.trial.TrialResult`s in **trial-index order**.
Everything that makes the Monte Carlo reports deterministic lives outside
the backend — per-trial seeds are a pure function of the trial index
(:meth:`~repro.rng.RngRegistry.spawn`), and aggregation sorts by index —
so any backend that honours the contract produces byte-identical reports.
``SerialBackend`` really is the degenerate case of the design, exactly as
ROADMAP's remote fan-out item predicted.

The contract, enforced here by :class:`ResultAssembler`:

* **at-most-once application** — results are keyed by trial index; a
  duplicate delivery (e.g. a socket worker that died *after* sending a
  result whose trial was then requeued and re-run) is dropped, so retries
  and completion order never change the merged output;
* **streaming** — ``on_result`` fires exactly once per distinct trial, as
  results arrive, which is what lets the sweep journal flush durable
  records and partial reports render mid-sweep;
* **interruptible** — ``should_stop`` is polled between applications; a
  backend answers a ``True`` with :class:`~repro.errors.SweepInterrupted`
  carrying everything applied so far.

A backend may also hold *pool state* between :meth:`DispatchBackend.run`
calls (the socket pool's warm workers): :meth:`DispatchBackend.close`
releases it, backends are context managers, and the base implementations
are no-ops so stateless backends need not care.

Backends: :class:`SerialBackend` (in-process loop), :class:`
MultiprocessBackend` (the historical ``multiprocessing`` pool path, now
streaming via ``imap`` with batch-derived chunk sizes), and
:class:`~repro.dispatch.socket_pool.SocketBackend` (stdlib socket
coordinator + ``python -m repro worker`` processes, possibly on other
machines, shipping batched spec frames over a pipelined window).
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Iterable, Sequence

from ..errors import ConfigurationError, DispatchError, SweepInterrupted
from ..experiments.trial import TrialResult, TrialSpec
from ..experiments.workloads import run_trial

OnResult = Callable[[TrialResult], None]
ShouldStop = Callable[[], bool]

MIN_AUTO_CHUNK = 4
"""Floor for derived chunksizes: per-dispatch IPC overhead is roughly
constant, so chunks below this spend a visible fraction of a small
grid's wall time on dispatch instead of trials."""


def auto_chunksize(batch_size: int, workers: int) -> int:
    """Chunksize for ``batch_size`` specs over ``workers`` processes.

    Large batches keep the classic ``batch // (workers * 4)`` — four
    waves per worker, balanced when trial wall times vary.  Small
    batches are where that heuristic collapsed to 1–2-trial dispatches
    whose IPC overhead dominated (the 16-trial sweep points of
    ``BENCH_sweep``): the :data:`MIN_AUTO_CHUNK` floor batches them up,
    capped at an even ``ceil(batch / workers)`` split so every worker
    still gets work.
    """
    per_worker = -(-batch_size // workers)  # ceil: an even split
    return max(1, min(
        max(batch_size // (workers * 4), MIN_AUTO_CHUNK), per_worker
    ))


class ResultAssembler:
    """At-most-once, order-oblivious collection of trial results.

    Parameters
    ----------
    indices:
        The trial indices the batch is expected to produce.
    on_result:
        Callback fired exactly once per *first* application of each index
        (never for duplicates or unexpected indices).
    """

    def __init__(
        self,
        indices: Iterable[int],
        on_result: OnResult | None = None,
    ) -> None:
        self._expected = set(indices)
        if len(self._expected) == 0:
            raise ConfigurationError("cannot assemble an empty batch")
        self._results: dict[int, TrialResult] = {}
        self._on_result = on_result

    def apply(self, result: TrialResult) -> bool:
        """Apply one result; ``False`` if it was a duplicate/unexpected.

        The boolean is the at-most-once guarantee: whatever order results
        arrive in, and however many times a trial is redelivered, each
        index is recorded (and ``on_result`` fired) exactly once.
        """
        index = result.index
        if index not in self._expected or index in self._results:
            return False
        self._results[index] = result
        if self._on_result is not None:
            self._on_result(result)
        return True

    @property
    def done(self) -> bool:
        """True once every expected index has been applied."""
        return len(self._results) == len(self._expected)

    @property
    def applied_count(self) -> int:
        """Number of distinct indices applied so far."""
        return len(self._results)

    def missing(self) -> list[int]:
        """Expected indices not yet applied, ascending."""
        return sorted(self._expected - self._results.keys())

    def ordered(self) -> list[TrialResult]:
        """Applied results in trial-index order (partial batches allowed)."""
        return [self._results[i] for i in sorted(self._results)]


class DispatchBackend:
    """Base class for trial-dispatch backends.

    Subclasses implement :meth:`_execute`, feeding every produced result
    through the assembler; :meth:`run` owns the shared contract (index
    ordering, duplicate suppression, completeness check, interruption).
    """

    name = "abstract"

    def run(
        self,
        specs: Sequence[TrialSpec],
        *,
        on_result: OnResult | None = None,
        should_stop: ShouldStop | None = None,
    ) -> list[TrialResult]:
        """Execute ``specs``; return their results in trial-index order.

        ``on_result`` fires once per distinct completed trial as results
        arrive.  ``should_stop`` is polled after each application; a
        ``True`` raises :class:`~repro.errors.SweepInterrupted` with the
        results applied so far.
        """
        assembler = ResultAssembler(
            (s.index for s in specs), on_result=on_result
        )
        self._execute(list(specs), assembler, should_stop)
        if not assembler.done:
            raise DispatchError(
                f"{self.name} backend finished with trials missing: "
                f"{assembler.missing()[:10]}"
            )
        return assembler.ordered()

    def _execute(
        self,
        specs: list[TrialSpec],
        assembler: ResultAssembler,
        should_stop: ShouldStop | None,
    ) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release any pool state held between runs (no-op by default)."""

    def __enter__(self) -> "DispatchBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @staticmethod
    def _check_stop(
        assembler: ResultAssembler, should_stop: ShouldStop | None
    ) -> None:
        if should_stop is not None and should_stop():
            raise SweepInterrupted(
                f"stopped after {assembler.applied_count} trials",
                completed=assembler.ordered(),
            )


class SerialBackend(DispatchBackend):
    """Run every trial in-process, in submission order.

    This is both the reference implementation the others must match and
    the fallback for environments without working ``multiprocessing``.
    """

    name = "serial"

    def _execute(self, specs, assembler, should_stop):
        for spec in specs:
            assembler.apply(run_trial(spec))
            self._check_stop(assembler, should_stop)


class MultiprocessBackend(DispatchBackend):
    """Fan trials over a local ``multiprocessing`` pool.

    The historical ``MonteCarloRunner`` pool path, generalised: ``imap``
    (same chunking semantics as the old ``Pool.map``, identical results)
    streams results back in submission order so journalling and partial
    reports work mid-batch.

    Parameters
    ----------
    workers:
        Pool size (>= 2; use :class:`SerialBackend` for one).
    chunksize:
        Trials per worker dispatch; ``None`` derives one with
        :func:`auto_chunksize` from the *actual* batch handed to
        :meth:`run` — the whole sweep's spec stream, never a single
        point's trial count.
    """

    name = "procs"

    def __init__(self, workers: int, chunksize: int | None = None) -> None:
        if workers < 2:
            raise ConfigurationError(
                "MultiprocessBackend needs workers >= 2; "
                "use SerialBackend for in-process runs"
            )
        if chunksize is not None and chunksize < 1:
            raise ConfigurationError("chunksize must be >= 1 when given")
        self.workers = workers
        self.chunksize = chunksize

    def effective_chunksize(self, batch_size: int) -> int:
        """The chunksize actually handed to ``imap`` for a batch."""
        if self.chunksize is not None:
            return self.chunksize
        return auto_chunksize(batch_size, self.workers)

    def _execute(self, specs, assembler, should_stop):
        ctx = multiprocessing.get_context()
        with ctx.Pool(processes=self.workers) as pool:
            # imap yields in submission order no matter which worker ran
            # what, so streaming application is oblivious to scheduling.
            for result in pool.imap(
                run_trial, specs, chunksize=self.effective_chunksize(len(specs))
            ):
                assembler.apply(result)
                self._check_stop(assembler, should_stop)


def default_backend(
    workers: int, chunksize: int | None = None
) -> DispatchBackend:
    """The backend a plain ``workers=N`` request means: serial below 2."""
    if workers <= 1:
        return SerialBackend()
    return MultiprocessBackend(workers, chunksize)


BACKEND_NAMES = ("serial", "procs", "socket")
"""CLI names accepted by :func:`make_backend` (and ``--backend``)."""


def make_backend(
    name: str,
    *,
    workers: int = 2,
    chunksize: int | None = None,
    batch_size: int | None = None,
) -> DispatchBackend:
    """Instantiate a backend by CLI name.

    ``chunksize`` applies to ``procs``; ``batch_size`` pins the socket
    backend's per-assignment batch (``None`` keeps it adaptive).
    """
    if name == "serial":
        return SerialBackend()
    if name == "procs":
        return MultiprocessBackend(max(2, workers), chunksize)
    if name == "socket":
        from .socket_pool import SocketBackend

        return SocketBackend(workers=max(1, workers), batch_size=batch_size)
    raise ConfigurationError(
        f"unknown dispatch backend {name!r}; pick from {BACKEND_NAMES}"
    )
