"""The declarative attack-scenario registry.

A *scenario* names a target (which protocol layer is under attack), an
attack (which adversary or injector drives it), and a typed expected
outcome from :mod:`repro.scenarios.outcomes`.  Registration is a
decorator over the runner function::

    @scenario(
        "channel.sender-spoof",
        layer="channel",
        target="emulated-channel",
        attack="frame re-attributed to the receiver's own id",
        expected=AttackRejected(mechanism="mac-associated-data"),
    )
    def _sender_spoof(ctx: ScenarioContext) -> Outcome:
        ...

Runner functions receive a :class:`ScenarioContext` — the scenario's
whole universe of randomness hangs off its seed, so the same
``(name, seed)`` pair replays byte-identically anywhere: the CLI, a
sweep worker process, or a serve daemon answering a ``RunScenario``
request.  Lint rule SCN001 enforces that every registration declares a
non-empty typed ``expected`` outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..adversary import Adversary, NullAdversary
from ..errors import ScenarioError
from ..radio.metrics import NetworkMetrics
from ..radio.network import RadioNetwork
from ..rng import RngRegistry
from .outcomes import Outcome

__all__ = [
    "LAYERS",
    "Scenario",
    "ScenarioContext",
    "SCENARIOS",
    "scenario",
    "get_scenario",
    "scenario_names",
]

LAYERS = ("channel", "protocol", "service", "serve")
"""The protocol layers a scenario can target, innermost first."""


@dataclass
class ScenarioContext:
    """Everything a scenario runner may consume.

    ``rng`` is the only randomness source (DET001/API002 apply to
    scenario code like any protocol code); networks built through
    :meth:`network` are recorded so the sweep integration can report
    merged radio metrics per trial; :meth:`note` accumulates plain
    ``(key, value)`` detail rows for reports.
    """

    seed: int
    rng: RngRegistry = field(init=False)
    networks: list[RadioNetwork] = field(default_factory=list)
    detail: list[tuple] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.rng = RngRegistry(seed=self.seed)

    def network(
        self,
        n: int,
        channels: int,
        t: int,
        adversary: Adversary | None = None,
        *,
        keep_trace: bool = False,
    ) -> RadioNetwork:
        """Build and record a network (trace kept if the adversary or
        the scenario itself needs history)."""
        adversary = adversary or NullAdversary()
        net = RadioNetwork(
            n,
            channels,
            t,
            adversary=adversary,
            keep_trace=keep_trace or adversary.needs_history,
        )
        self.networks.append(net)
        return net

    def group_key(self) -> bytes:
        """A 32-byte group secret on the context's own stream."""
        return bytes(self.rng.stream("scenario-group-key").randbytes(32))

    def note(self, key: str, value) -> None:
        """Record one plain-scalar detail row for the scenario report."""
        self.detail.append((key, value))

    def metrics(self) -> NetworkMetrics:
        """Radio metrics merged across every recorded network."""
        merged = NetworkMetrics()
        for net in self.networks:
            merged = merged.merge(net.metrics)
        return merged


@dataclass(frozen=True)
class Scenario:
    """One registered attack scenario."""

    name: str
    layer: str
    target: str
    attack: str
    expected: Outcome
    run: Callable[[ScenarioContext], Outcome]
    description: str = ""


SCENARIOS: dict[str, Scenario] = {}
"""Every registered scenario, keyed by name."""


def scenario(
    name: str,
    *,
    layer: str,
    target: str,
    attack: str,
    expected: Outcome,
    description: str = "",
) -> Callable:
    """Register a scenario runner (decorator).

    Validates the declaration at import time: a known layer, a unique
    name, and a non-empty typed expected outcome (the invariant lint
    rule SCN001 checks statically).
    """
    if layer not in LAYERS:
        raise ScenarioError(
            f"scenario {name!r}: unknown layer {layer!r}; pick from {LAYERS}"
        )
    if not isinstance(expected, Outcome) or not expected.KIND:
        raise ScenarioError(
            f"scenario {name!r}: expected outcome must be a typed Outcome, "
            f"got {expected!r}"
        )
    if name in SCENARIOS:
        raise ScenarioError(f"scenario {name!r} is already registered")

    def register(fn: Callable[[ScenarioContext], Outcome]):
        SCENARIOS[name] = Scenario(
            name=name,
            layer=layer,
            target=target,
            attack=attack,
            expected=expected,
            run=fn,
            description=description or (fn.__doc__ or "").strip(),
        )
        return fn

    return register


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name; unknown names raise typed."""
    found = SCENARIOS.get(name)
    if found is None:
        raise ScenarioError(
            f"unknown scenario {name!r}; pick from {sorted(SCENARIOS)}"
        )
    return found


def scenario_names() -> tuple[str, ...]:
    """Registered names, sorted (the registry's canonical order)."""
    return tuple(sorted(SCENARIOS))
