"""The registered attack scenarios.

Twenty-one scenarios across the four layers (channel, protocol,
service, serve), each a few lines over one of the attack injectors or
gallery adversaries, each declaring the typed outcome the defence is
supposed to produce.  Importing this module populates
:data:`repro.scenarios.registry.SCENARIOS`; runners never read clocks
or unseeded randomness, so ``run_scenario(name, seed)`` is
byte-identical wherever it executes (CLI, sweep worker, serve daemon).

Conventions
-----------
* model parameters are pinned per scenario (an attack on ``n=12, C=2,
  t=1`` *is* the scenario; sweeps vary the seed axis, not the shape);
* observed outcomes never raise — a defence failing is reported as
  :class:`~repro.scenarios.outcomes.SafetyViolated` /
  :class:`~repro.scenarios.outcomes.LivenessLost`, so a gauntlet run
  always completes and the report shows *which* guarantee broke;
* ``ctx.note`` rows carry plain scalars only (they ride sweep
  ``TrialResult.detail`` and the serve wire).
"""

from __future__ import annotations

from ..crypto.dh import TEST_GROUP_128
from ..errors import ConfigurationError
from ..experiments.workloads import default_pairs, make_adversary
from ..fame import run_fame
from ..fame.byzantine import CorruptionModel, run_byzantine_exchange
from ..groupkey import establish_group_key
from ..radio.messages import Message
from ..serve import protocol as p
from ..serve.host import SessionHost
from ..service.emulated_channel import SERVICE_KIND, LongLivedChannel
from ..service.pairwise import PairwiseChannel
from ..service.session import SecureSession
from .injectors import (
    CollusionTracker,
    FrameInjector,
    RekeyEpochTap,
    captured_transmits,
    crashed_sender,
)
from .outcomes import (
    AttackRejected,
    KeyMismatchDetected,
    LivenessLost,
    Outcome,
    SafetyViolated,
    SessionAborted,
    WhpBoundHolds,
    bound_outcome,
)
from .registry import ScenarioContext, scenario

# The Byzantine exchange's canonical edge set: four vertex-disjoint
# pairs at n=20 leave sixteen free nodes — enough for two witness
# groups of 3(t+1)=6 per move, with node 8 a witness in every move
# (never a source or destination), making it the canonical corrupt
# witness for the feedback attacks.
_BYZ_EDGES = ((0, 1), (2, 3), (4, 5), (6, 7))
_BYZ_WITNESS = 8


# ----------------------------------------------------------------------
# Channel layer: the emulated broadcast channel's frame authentication
# ----------------------------------------------------------------------


@scenario(
    "channel.sender-spoof",
    layer="channel",
    target="emulated-channel",
    attack="sealed frame re-attributed to each receiver's own id",
    expected=AttackRejected(mechanism="mac-associated-data"),
)
def _channel_sender_spoof(ctx: ScenarioContext) -> Outcome:
    """A real member's sealed frame, claimed to come from someone else.

    The associated data binds the true sender id, so the tag check
    fails for every listener — including the frame's "own" claimed
    recipient (port of the PR 9 spoofed-sender gauntlet test).
    """
    net = ctx.network(12, 2, 1)
    ch = LongLivedChannel(net, ctx.group_key(), range(12))
    sealed = ch.seal(0, b"m", 0).as_tuple()

    def forge(view):
        # cycle every id except 0, the true sealer (a frame
        # re-attributed to its real sender is just the authentic frame)
        victim = 1 + view.round_index % 11
        return Message(
            kind=SERVICE_KIND, sender=victim, payload=(victim, 0, sealed)
        )

    net.adversary = FrameInjector(forge)
    out = ch.run_round({})  # silent round: only spoofs in the air
    accepted = sorted(m for m, d in out.items() if d is not None)
    ctx.note("accepted", tuple(accepted))
    if accepted:
        return SafetyViolated(invariant="spoofed sender accepted")
    return AttackRejected(mechanism="mac-associated-data")


@scenario(
    "channel.cross-round-replay",
    layer="channel",
    target="emulated-channel",
    attack="round-0 frame replayed into a later emulated round",
    expected=AttackRejected(mechanism="emulated-round-binding"),
)
def _channel_cross_round_replay(ctx: ScenarioContext) -> Outcome:
    """An authentic frame from emulated round 0, replayed into round 1.

    The emulated round number rides the associated data *and* the clear
    header; a replay carries a stale round and is dropped before any
    crypto runs.
    """
    net = ctx.network(12, 2, 1)
    ch = LongLivedChannel(net, ctx.group_key(), range(12))
    replayed = Message(
        kind=SERVICE_KIND,
        sender=0,
        payload=(0, 0, ch.seal(0, b"old", 0).as_tuple()),
    )
    first = ch.run_round({0: b"old"})  # round 0 delivers honestly
    ctx.note("round0_delivered", sum(d is not None for d in first.values()))
    net.adversary = FrameInjector(lambda view: replayed)
    out = ch.run_round({})  # round 1: only replays in the air
    accepted = sorted(m for m, d in out.items() if d is not None)
    ctx.note("accepted", tuple(accepted))
    if accepted:
        return SafetyViolated(invariant="stale emulated round accepted")
    return AttackRejected(mechanism="emulated-round-binding")


@scenario(
    "channel.tampered-ciphertext",
    layer="channel",
    target="emulated-channel",
    attack="one flipped bit in an otherwise-authentic frame body",
    expected=AttackRejected(mechanism="mac"),
)
def _channel_tampered_ciphertext(ctx: ScenarioContext) -> Outcome:
    """A bit-flipped ciphertext with correct round and sender headers."""
    net = ctx.network(12, 2, 1)
    ch = LongLivedChannel(net, ctx.group_key(), range(12))
    nonce, body, tag = ch.seal(0, b"secret", 0).as_tuple()
    tampered = (nonce, bytes([body[0] ^ 1]) + body[1:], tag)
    frame = Message(kind=SERVICE_KIND, sender=0, payload=(0, 0, tampered))
    net.adversary = FrameInjector(lambda view: frame)
    out = ch.run_round({})
    accepted = sorted(m for m, d in out.items() if d is not None)
    ctx.note("accepted", tuple(accepted))
    if accepted:
        return SafetyViolated(invariant="tampered ciphertext accepted")
    return AttackRejected(mechanism="mac")


# ----------------------------------------------------------------------
# Protocol layer: f-AME / group key / Byzantine exchange under attack
# ----------------------------------------------------------------------


@scenario(
    "fame.schedule-aware-jammer",
    layer="protocol",
    target="f-ame",
    attack="gallery 'schedule' jammer (reads the published schedule)",
    expected=WhpBoundHolds(bound=1),
)
def _fame_schedule_jammer(ctx: ScenarioContext) -> Outcome:
    """Definition 1 under the strongest gallery jammer."""
    adversary = make_adversary("schedule", ctx.rng.stream("adversary"))
    net = ctx.network(20, 2, 1, adversary)
    result = run_fame(
        net, default_pairs(20, 5), rng=ctx.rng.spawn("fame")
    )
    cover = result.disruptability()
    ctx.note("cover", cover)
    ctx.note("failed", len(result.failed))
    return bound_outcome(1, cover)


@scenario(
    "fame.spoofing-adversary",
    layer="protocol",
    target="f-ame",
    attack="gallery spoofer injecting forged protocol frames",
    expected=WhpBoundHolds(bound=1),
)
def _fame_spoofer(ctx: ScenarioContext) -> Outcome:
    """Definition 1 under frame forgery instead of jamming."""
    adversary = make_adversary("spoofer", ctx.rng.stream("adversary"))
    net = ctx.network(20, 2, 1, adversary)
    result = run_fame(
        net, default_pairs(20, 5), rng=ctx.rng.spawn("fame")
    )
    cover = result.disruptability()
    ctx.note("cover", cover)
    return bound_outcome(1, cover)


@scenario(
    "groupkey.random-jammer",
    layer="protocol",
    target="group-key",
    attack="gallery random jammer across the whole Section 6 run",
    expected=WhpBoundHolds(bound=1),
)
def _groupkey_random_jammer(ctx: ScenarioContext) -> Outcome:
    """All but ``t`` nodes must still adopt the group key."""
    adversary = make_adversary("random", ctx.rng.stream("adversary"))
    net = ctx.network(20, 2, 1, adversary)
    result = establish_group_key(
        net, ctx.rng.spawn("groupkey"), group=TEST_GROUP_128
    )
    holders = len(result.holders())
    ctx.note("holders", holders)
    return bound_outcome(1, 20 - holders)


@scenario(
    "byzantine.lying-witnesses",
    layer="protocol",
    target="byzantine-exchange",
    attack="a corrupt witness inverting every feedback flag",
    expected=WhpBoundHolds(bound=2),
)
def _byz_lying_witnesses(ctx: ScenarioContext) -> Outcome:
    """The majority vote outlasts an always-lying witness (2t bound)."""
    net = ctx.network(20, 2, 1)
    result = run_byzantine_exchange(
        net,
        _BYZ_EDGES,
        rng=ctx.rng.spawn("byz"),
        corruption=CorruptionModel.of(_BYZ_WITNESS),
    )
    cover = result.disruptability()
    ctx.note("cover", cover)
    return bound_outcome(2, cover)


@scenario(
    "byzantine.random-votes",
    layer="protocol",
    target="byzantine-exchange",
    attack="a corrupt witness voting by coin flip each repetition",
    expected=WhpBoundHolds(bound=2),
)
def _byz_random_votes(ctx: ScenarioContext) -> Outcome:
    """Random votes are no stronger than inverted ones: outvoted."""
    net = ctx.network(20, 2, 1)
    result = run_byzantine_exchange(
        net,
        _BYZ_EDGES,
        rng=ctx.rng.spawn("byz"),
        corruption=CorruptionModel.of(_BYZ_WITNESS, vote_policy="random"),
    )
    cover = result.disruptability()
    ctx.note("cover", cover)
    return bound_outcome(2, cover)


@scenario(
    "byzantine.equivocating-colluders",
    layer="protocol",
    target="byzantine-exchange",
    attack="a corrupt witness broadcasting both flags for one slot",
    expected=WhpBoundHolds(bound=2),
)
def _byz_equivocators(ctx: ScenarioContext) -> Outcome:
    """Equivocation neither breaks the bound nor goes undetected.

    The exchange must keep its 2t cover *and* the trace must convict
    exactly the equivocating witness — an undetected colluder is a
    safety failure even when the bound happens to hold.
    """
    net = ctx.network(20, 2, 1, keep_trace=True)
    result = run_byzantine_exchange(
        net,
        _BYZ_EDGES,
        rng=ctx.rng.spawn("byz"),
        corruption=CorruptionModel.of(
            _BYZ_WITNESS, vote_policy="equivocate"
        ),
    )
    cover = result.disruptability()
    caught = CollusionTracker().scan(net.trace).equivocators()
    ctx.note("cover", cover)
    ctx.note("equivocators", caught)
    if caught != (_BYZ_WITNESS,):
        return SafetyViolated(invariant="equivocating colluder undetected")
    return bound_outcome(2, cover)


@scenario(
    "byzantine.garbling-source",
    layer="protocol",
    target="byzantine-exchange",
    attack="a corrupt source garbling its own payload",
    expected=SafetyViolated(invariant="garbled payload accepted"),
    description="The model's conceded safety failure: a destination "
    "cannot detect a corrupt source's garbling; the pair is charged to "
    "the 2t cover instead.  The expected outcome is the safety "
    "violation itself — the taxonomy asserts failures, not just wins.",
)
def _byz_garbling_source(ctx: ScenarioContext) -> Outcome:
    net = ctx.network(20, 2, 1)
    result = run_byzantine_exchange(
        net,
        _BYZ_EDGES,
        rng=ctx.rng.spawn("byz"),
        corruption=CorruptionModel.of(0),  # source of pair (0, 1)
    )
    cover = result.disruptability()
    ctx.note("cover", cover)
    ctx.note("garbled", tuple(sorted(result.garbled)))
    if (0, 1) not in result.garbled:
        return LivenessLost(service="garbled delivery never arrived")
    if cover > 2:
        return SafetyViolated(
            invariant=f"disruptability {cover} > bound 2"
        )
    return SafetyViolated(invariant="garbled payload accepted")


# ----------------------------------------------------------------------
# Service layer: pairwise channels, sessions, re-keying
# ----------------------------------------------------------------------


@scenario(
    "service.pairwise-replay",
    layer="service",
    target="pairwise-channel",
    attack="exchange-0 frame replayed into exchange 1, sender crashed",
    expected=LivenessLost(service="pairwise-delivery"),
)
def _service_pairwise_replay(ctx: ScenarioContext) -> Outcome:
    """Replays must not masquerade as fresh traffic.

    With the sender crashed, only replayed exchange-0 frames are in the
    air during exchange 1; the claimed-exchange binding rejects every
    one, so the honest outcome is *no* delivery — lost liveness, never
    a stale payload accepted (port of the PR 9 pairwise-replay test).
    """
    net = ctx.network(12, 2, 1, keep_trace=True)
    ch = PairwiseChannel(net, ctx.group_key(), 0, 1)
    first = ch.send(0, b"old")
    if first is None:
        return LivenessLost(service="exchange-0-delivery")
    frames = captured_transmits(net)
    replayed = frames[-1]
    net.adversary = FrameInjector(lambda view: replayed)
    with crashed_sender(net):
        second = ch.send(0, b"new")
    if second is not None:
        ctx.note("accepted_payload", bytes(second.payload))
        return SafetyViolated(invariant="stale exchange accepted")
    return LivenessLost(service="pairwise-delivery")


@scenario(
    "service.rekey-stale-replay",
    layer="service",
    target="rekey",
    attack="generation-1 re-key epoch replayed into generation 2",
    expected=KeyMismatchDetected(victims=(4,)),
)
def _service_rekey_stale_replay(ctx: ScenarioContext) -> Outcome:
    """A member fed only stale re-key frames must be *dropped*, loudly.

    The stale-generation check rejects the replayed frames, and the
    report lists the victim in ``dropped`` — it must not come back
    keyed with the obsolete generation-1 key (port of the PR 9 rekey
    replay test).
    """
    net = ctx.network(6, 2, 1)
    session = SecureSession.from_preshared(
        net, ctx.group_key(), range(6), rng=ctx.rng.spawn("session")
    )
    victim = 4
    tap = RekeyEpochTap(net, victim)
    first = session.rekey([5])
    if victim not in first.members:
        tap.restore()
        return LivenessLost(service="generation-1-rekey")
    tap.replay(1)
    second = session.rekey([])
    tap.restore()
    ctx.note("generation", second.generation)
    ctx.note("dropped", tuple(second.dropped))
    if victim in second.members:
        return SafetyViolated(invariant="stale generation accepted")
    if victim not in second.dropped:
        return SafetyViolated(invariant="victim vanished silently")
    return KeyMismatchDetected(victims=(victim,))


@scenario(
    "service.rekey-jammed-epoch",
    layer="service",
    target="rekey",
    attack="a member's whole re-key dissemination epoch jammed silent",
    expected=KeyMismatchDetected(victims=(4,)),
)
def _service_rekey_jammed_epoch(ctx: ScenarioContext) -> Outcome:
    """Losing every round of the epoch drops the member detectably."""
    net = ctx.network(6, 2, 1)
    session = SecureSession.from_preshared(
        net, ctx.group_key(), range(6), rng=ctx.rng.spawn("session")
    )
    victim = 4
    tap = RekeyEpochTap(net, victim)
    tap.suppress()
    report = session.rekey([5])
    tap.restore()
    ctx.note("dropped", tuple(report.dropped))
    if victim in report.members:
        return SafetyViolated(invariant="keyless member kept as member")
    if victim not in report.dropped:
        return SafetyViolated(invariant="victim vanished silently")
    return KeyMismatchDetected(victims=(victim,))


@scenario(
    "service.nonmember-send",
    layer="service",
    target="secure-session",
    attack="a keyless node enqueues a broadcast on the session",
    expected=AttackRejected(mechanism="membership"),
)
def _service_nonmember_send(ctx: ScenarioContext) -> Outcome:
    net = ctx.network(8, 2, 1)
    session = SecureSession.from_preshared(
        net, ctx.group_key(), range(6), rng=ctx.rng.spawn("session")
    )
    try:
        session.send(7, b"intruder")
    except ConfigurationError:
        return AttackRejected(mechanism="membership")
    return SafetyViolated(invariant="non-member send accepted")


# ----------------------------------------------------------------------
# Serve layer: the daemon's request surface (driven through SessionHost
# synchronously — same dispatcher the daemon wraps)
# ----------------------------------------------------------------------

_TOKEN = "scenario-client"


def _serve_host(ctx: ScenarioContext) -> SessionHost:
    return SessionHost(seed=ctx.seed)


def _aborted(ctx: ScenarioContext, response, code: str) -> Outcome:
    """Observed outcome of a request that should fail with ``code``."""
    if isinstance(response, p.Failure):
        ctx.note("code", response.code)
        return SessionAborted(code=response.code)
    ctx.note("response", type(response).__name__)
    return SafetyViolated(invariant=f"request succeeded, wanted {code!r}")


@scenario(
    "serve.appdata-before-handshake",
    layer="serve",
    target="session-host",
    attack="application data sent before any session was opened",
    expected=SessionAborted(code="unknown-session"),
)
def _serve_appdata_before_handshake(ctx: ScenarioContext) -> Outcome:
    host = _serve_host(ctx)
    response = host.handle(
        _TOKEN, p.SendMessage(name="ghost", sender=0, payload=b"early")
    )
    return _aborted(ctx, response, p.UNKNOWN_SESSION)


@scenario(
    "serve.duplicate-open",
    layer="serve",
    target="session-host",
    attack="re-opening a live session name (session fixation)",
    expected=SessionAborted(code="duplicate-session"),
)
def _serve_duplicate_open(ctx: ScenarioContext) -> Outcome:
    host = _serve_host(ctx)
    host.handle(_TOKEN, p.OpenSession(name="alpha", n=8))
    response = host.handle(
        "other-client", p.OpenSession(name="alpha", n=8)
    )
    return _aborted(ctx, response, p.DUPLICATE_SESSION)


@scenario(
    "serve.foreign-sender",
    layer="serve",
    target="session-host",
    attack="a send attributed to a node outside the member set",
    expected=SessionAborted(code="not-a-member"),
)
def _serve_foreign_sender(ctx: ScenarioContext) -> Outcome:
    host = _serve_host(ctx)
    host.handle(
        _TOKEN, p.OpenSession(name="alpha", n=8, members=(0, 1, 2, 3))
    )
    response = host.handle(
        _TOKEN, p.SendMessage(name="alpha", sender=7, payload=b"x")
    )
    return _aborted(ctx, response, p.NOT_A_MEMBER)


@scenario(
    "serve.rekey-without-leader",
    layer="serve",
    target="session-host",
    attack="a re-key compromising every possible distributor",
    expected=SessionAborted(code="rekey-failed"),
)
def _serve_rekey_without_leader(ctx: ScenarioContext) -> Outcome:
    host = _serve_host(ctx)
    host.handle(_TOKEN, p.OpenSession(name="alpha", n=8))
    response = host.handle(
        _TOKEN, p.Rekey(name="alpha", compromised=tuple(range(8)))
    )
    return _aborted(ctx, response, p.REKEY_FAILED)


@scenario(
    "serve.flood-backpressure",
    layer="serve",
    target="session-host",
    attack="send flood past the session's bounded queue",
    expected=SessionAborted(code="busy"),
)
def _serve_flood_backpressure(ctx: ScenarioContext) -> Outcome:
    """The refusal must also be side-effect free: pending stays put."""
    host = _serve_host(ctx)
    host.handle(
        _TOKEN, p.OpenSession(name="alpha", n=8, max_pending=4)
    )
    for i in range(4):
        host.handle(
            _TOKEN,
            p.SendMessage(name="alpha", sender=0, payload=b"m%d" % i),
        )
    response = host.handle(
        _TOKEN, p.SendMessage(name="alpha", sender=0, payload=b"flood")
    )
    stats = host.handle(_TOKEN, p.SessionStatsReq(name="alpha"))
    ctx.note("pending", stats.pending)
    if stats.pending != 4:
        return SafetyViolated(invariant="refused send had side effects")
    return _aborted(ctx, response, p.BUSY)


@scenario(
    "serve.former-member-drain",
    layer="serve",
    target="session-host",
    attack="an excluded member draining its inbox post-rekey",
    expected=SessionAborted(code="former-member"),
)
def _serve_former_member_drain(ctx: ScenarioContext) -> Outcome:
    host = _serve_host(ctx)
    host.handle(_TOKEN, p.OpenSession(name="alpha", n=6))
    host.handle(_TOKEN, p.Rekey(name="alpha", compromised=(5,)))
    response = host.handle(
        _TOKEN, p.DrainInbox(name="alpha", member=5)
    )
    return _aborted(ctx, response, p.FORMER_MEMBER)


@scenario(
    "serve.malformed-flush-budget",
    layer="serve",
    target="session-host",
    attack="well-formed frame with an ill-typed field (max_rounds=str)",
    expected=SessionAborted(code="bad-request"),
    description="Decodable-but-ill-typed requests must come back as "
    "typed bad-request failures, never as raw TypeErrors that would "
    "kill a daemon loop — the regression the PR 10 handle() catch-all "
    "fixes.",
)
def _serve_malformed_flush_budget(ctx: ScenarioContext) -> Outcome:
    host = _serve_host(ctx)
    host.handle(_TOKEN, p.OpenSession(name="alpha", n=8))
    host.handle(
        _TOKEN, p.SendMessage(name="alpha", sender=0, payload=b"x")
    )
    try:
        response = host.handle(
            _TOKEN, p.Flush(name="alpha", max_rounds="soon")
        )
    except Exception as exc:  # the pre-fix behaviour: a raw TypeError
        ctx.note("escaped", type(exc).__name__)
        return SafetyViolated(invariant="raw exception escaped handle()")
    return _aborted(ctx, response, p.BAD_REQUEST)


@scenario(
    "serve.shutdown-refuses-opens",
    layer="serve",
    target="session-host",
    attack="opening a session on a host that is shutting down",
    expected=SessionAborted(code="shutting-down"),
)
def _serve_shutdown_refuses_opens(ctx: ScenarioContext) -> Outcome:
    host = _serve_host(ctx)
    host.handle(_TOKEN, p.Shutdown())
    response = host.handle(_TOKEN, p.OpenSession(name="late", n=8))
    return _aborted(ctx, response, p.SHUTTING_DOWN)
