"""Executing scenarios and gauntlets.

:func:`run_scenario` runs one registered scenario at one seed and
returns a :class:`ScenarioRun` — expected vs observed outcome, matched
flag, detail rows, merged radio metrics.  :func:`run_gauntlet` runs a
set of scenarios (default: all of them) and aggregates a
:class:`GauntletReport` whose :meth:`~GauntletReport.as_dict` is the
JSON the CLI and CI emit.  Neither reads a clock: the same
``(names, seed)`` produce byte-identical reports anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..radio.metrics import NetworkMetrics
from .outcomes import Outcome, classify, encode_outcome
from .registry import ScenarioContext, get_scenario, scenario_names

__all__ = ["ScenarioRun", "GauntletReport", "run_scenario", "run_gauntlet"]


@dataclass(frozen=True)
class ScenarioRun:
    """One scenario execution's full record."""

    name: str
    layer: str
    target: str
    attack: str
    seed: int
    expected: Outcome
    observed: Outcome
    detail: tuple[tuple, ...]
    metrics: NetworkMetrics

    @property
    def matched(self) -> bool:
        return self.observed == self.expected

    def as_dict(self) -> dict:
        """Plain-JSON record (outcomes as encoded rows)."""
        return {
            "name": self.name,
            "layer": self.layer,
            "target": self.target,
            "attack": self.attack,
            "seed": self.seed,
            "expected": list(encode_outcome(self.expected)),
            "observed": list(encode_outcome(self.observed)),
            "expected_class": classify(self.expected),
            "observed_class": classify(self.observed),
            "matched": self.matched,
            "detail": [list(row) for row in self.detail],
        }


def run_scenario(name: str, seed: int = 0) -> ScenarioRun:
    """Run one scenario at one seed."""
    scen = get_scenario(name)
    ctx = ScenarioContext(seed=seed)
    observed = scen.run(ctx)
    return ScenarioRun(
        name=scen.name,
        layer=scen.layer,
        target=scen.target,
        attack=scen.attack,
        seed=seed,
        expected=scen.expected,
        observed=observed,
        detail=tuple(tuple(row) for row in ctx.detail),
        metrics=ctx.metrics(),
    )


@dataclass(frozen=True)
class GauntletReport:
    """Aggregate of one gauntlet run."""

    seed: int
    runs: tuple[ScenarioRun, ...]

    @property
    def total(self) -> int:
        return len(self.runs)

    @property
    def matched(self) -> int:
        return sum(1 for run in self.runs if run.matched)

    def mismatched(self) -> tuple[str, ...]:
        return tuple(run.name for run in self.runs if not run.matched)

    def all_matched(self) -> bool:
        return self.matched == self.total

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "total": self.total,
            "matched": self.matched,
            "mismatched": list(self.mismatched()),
            "scenarios": {run.name: run.as_dict() for run in self.runs},
        }

    def summary_line(self) -> str:
        verdict = "ok" if self.all_matched() else "MISMATCH"
        return (
            f"scenario gauntlet: {self.matched}/{self.total} outcomes "
            f"matched (seed {self.seed}) {verdict}"
        )


def run_gauntlet(
    names: Sequence[str] | None = None, seed: int = 0
) -> GauntletReport:
    """Run ``names`` (default: every registered scenario, sorted)."""
    chosen = tuple(names) if names is not None else scenario_names()
    runs = tuple(run_scenario(name, seed=seed) for name in chosen)
    return GauntletReport(seed=seed, runs=runs)
