"""Scenario-local attack machinery.

The adversary gallery covers blind channel-level strategies; the
injectors here are the *informed* attacks scenarios need — replaying a
frame captured off the wire, re-attributing a sealed frame to a forged
sender, crashing a sender so only adversarial frames are in the air,
and tapping a member's re-key epochs to replay a stale generation.
They are deliberately test-harness-shaped (some wrap
``network.execute_schedule`` the way the PR 9 gauntlet tests did), but
packaged once so every scenario and test asserts through the same code.

:class:`CollusionTracker` is the detection side: it scans a network
trace for Byzantine witness reports and identifies witnesses that voted
against the honest ground truth or reported *both* flags for one slot
(equivocators) — the tendermint-style colluder bookkeeping the ROADMAP
names.
"""

from __future__ import annotations

from collections import defaultdict
from contextlib import contextmanager
from typing import Iterable, Sequence

from ..adversary.base import Adversary
from ..fame.byzantine import BYZANTINE_REPORT_KIND
from ..radio.actions import Transmit
from ..radio.messages import Message, Transmission
from ..radio.network import CompiledRound, RadioNetwork, RoundSchedule

__all__ = [
    "FrameInjector",
    "captured_transmits",
    "crashed_sender",
    "RekeyEpochTap",
    "CollusionTracker",
]


class FrameInjector(Adversary):
    """Inject one attacker-chosen frame per round.

    ``make_frame`` maps the round's :class:`~repro.radio.network.
    AdversaryView` to a :class:`~repro.radio.messages.Message` (or
    ``None`` for a quiet round); the frame rides a channel cycled by
    round index, staying within the ``t``-transmission budget.
    """

    reusable_view = True

    def __init__(self, make_frame) -> None:
        self._make_frame = make_frame

    def act(self, view) -> Sequence[Transmission]:
        frame = self._make_frame(view)
        if frame is None:
            return ()
        return (Transmission(view.round_index % view.channels, frame),)


def captured_transmits(network: RadioNetwork) -> list[Message]:
    """Every honest frame transmitted so far, in trace order.

    Requires the network to have been built with ``keep_trace=True``
    (scenario contexts pass it through); the capture is exactly what an
    eavesdropper heard, so replaying an entry is a faithful wire replay.
    """
    frames: list[Message] = []
    for record in network.trace:
        for node in sorted(record.actions):
            action = record.actions[node]
            if isinstance(action, Transmit):
                frames.append(action.message)
    return frames


@contextmanager
def crashed_sender(network: RadioNetwork):
    """Strip honest transmits from every schedule inside the block.

    The epochs still burn their real rounds (hop patterns and metrics
    advance normally) but only adversarial frames are in the air —
    the cleanest way to ask "does the receiver accept *only* replays?".
    """
    original = network.execute_schedule

    def stripped(schedule: RoundSchedule):
        return original(
            RoundSchedule(
                [
                    CompiledRound(
                        transmits={},
                        listens=r.listens,
                        meta=r.meta,
                        listen_count=r.listen_count,
                    )
                    for r in schedule.rounds
                ]
            )
        )

    network.execute_schedule = stripped
    try:
        yield
    finally:
        network.execute_schedule = original


class RekeyEpochTap:
    """Capture one member's re-key epochs; optionally replay or jam one.

    In capture mode (the default) the tap records what the member heard
    during each ``rekey``-phase epoch, keyed by generation.  After
    :meth:`replay`, the member's later epochs burn their real rounds but
    return the *captured* generation's frames — the stale-generation
    replay attack.  After :meth:`suppress`, the member's epochs return
    silence — the fully-jammed-epoch attack.  :meth:`restore` puts the
    network back.
    """

    def __init__(self, network: RadioNetwork, member: int) -> None:
        self.network = network
        self.member = member
        self.captured: dict[int, list] = {}
        self._mode = "capture"
        self._replay_generation: int | None = None
        self._original = network.execute_schedule
        network.execute_schedule = self._run

    def _run(self, schedule: RoundSchedule):
        meta = schedule.rounds[0].meta
        if meta.phase != "rekey" or meta.extra.get("member") != self.member:
            return self._original(schedule)
        if self._mode == "replay":
            self._original(schedule)  # burn the epoch's real rounds
            return self.captured[self._replay_generation]
        if self._mode == "suppress":
            self._original(schedule)
            return [{} for _ in schedule.rounds]
        heard = self._original(schedule)
        self.captured[meta.extra["generation"]] = heard
        return heard

    def replay(self, generation: int) -> None:
        """Replay this captured generation into the member's epochs."""
        if generation not in self.captured:
            raise KeyError(
                f"generation {generation} was never captured; "
                f"have {sorted(self.captured)}"
            )
        self._mode = "replay"
        self._replay_generation = generation

    def suppress(self) -> None:
        """Jam the member's re-key epochs entirely (silence)."""
        self._mode = "suppress"

    def restore(self) -> None:
        self.network.execute_schedule = self._original


class CollusionTracker:
    """Identify lying and equivocating Byzantine witnesses from a trace.

    Scans ``byz-report`` transmissions — ``(slot, flag, witness)``
    payloads — and compares each witness's votes against the honest
    ground truth per slot.  A witness that ever voted against the truth
    is a *liar*; one that reported both flags for a single slot is an
    *equivocator* (every equivocator is also a liar: one of its two
    votes contradicts any ground truth).
    """

    def __init__(self) -> None:
        # (witness, slot) -> set of flags that witness broadcast
        self._votes: dict[tuple[int, int], set[bool]] = defaultdict(set)

    def scan(self, trace: Iterable) -> "CollusionTracker":
        """Consume a network trace (chainable)."""
        for record in trace:
            for node in sorted(record.actions):
                action = record.actions[node]
                if not isinstance(action, Transmit):
                    continue
                message = action.message
                if message.kind != BYZANTINE_REPORT_KIND:
                    continue
                slot, flag, witness = message.payload
                self._votes[(witness, slot)].add(bool(flag))
        return self

    def equivocators(self) -> tuple[int, ...]:
        """Witnesses that reported both flags for some single slot."""
        found = {
            witness
            for (witness, _slot), flags in self._votes.items()
            if len(flags) > 1
        }
        return tuple(sorted(found))

    def liars(self, truth: dict[int, bool]) -> tuple[int, ...]:
        """Witnesses whose reported flags contradict ``truth`` per slot.

        ``truth`` maps slot -> the honest flag (e.g. whether the slot's
        channel really delivered); witnesses voting only the truth are
        exonerated.
        """
        found = {
            witness
            for (witness, slot), flags in self._votes.items()
            if slot in truth and any(f != truth[slot] for f in flags)
        }
        return tuple(sorted(found))
