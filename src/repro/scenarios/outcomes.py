"""Typed outcomes for attack scenarios.

Every registered scenario declares exactly one *expected* outcome from
this taxonomy, and its runner returns one *observed* outcome; the
scenario passes iff the two compare equal.  The taxonomy separates the
three ways an attack can end:

* **contained** — the attack happened and a named mechanism absorbed it:
  :class:`AttackRejected` (a forged/replayed/misaddressed frame was
  refused), :class:`KeyMismatchDetected` (a re-key honestly reported the
  members it could not bring forward instead of silently keeping them on
  a stale key), :class:`SessionAborted` (the serve layer refused with a
  typed failure code), :class:`WhpBoundHolds` (the paper's
  disruptability bound survived the attack);
* **safety failure** — :class:`SafetyViolated`: something *wrong* was
  accepted (a garbled payload delivered as authentic, a stale key
  treated as fresh, an undetected colluder);
* **liveness failure** — :class:`LivenessLost`: nothing wrong was
  accepted, but an expected delivery never happened.

Safety and liveness are asserted *separately* (following the
stabilizing-consensus impossibility literature: conflating the two
hides which guarantee an attack actually broke): an attack that
suppresses delivery while every forgery is rejected is a
:class:`LivenessLost`, never a :class:`SafetyViolated` — and some
scenarios (e.g. a corrupt garbling source) *expect* a safety failure,
because the paper's model concedes it and charges it to the ``2t``
cover instead.

Outcomes are frozen dataclasses with value equality, and they round-trip
through :func:`encode_outcome`/:func:`decode_outcome` as plain tuples of
scalars so they can ride the serve wire protocol and sweep
``TrialResult.detail`` without widening any pickle allowlist.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar

from ..errors import ScenarioError

__all__ = [
    "Outcome",
    "AttackRejected",
    "KeyMismatchDetected",
    "SessionAborted",
    "WhpBoundHolds",
    "SafetyViolated",
    "LivenessLost",
    "OUTCOME_TYPES",
    "encode_outcome",
    "decode_outcome",
    "classify",
    "bound_outcome",
]


@dataclass(frozen=True)
class Outcome:
    """Base class: outcomes compare by value and name their kind."""

    KIND: ClassVar[str] = ""

    def describe(self) -> str:
        """Human-readable one-liner (``kind(field=value, ...)``)."""
        parts = ", ".join(
            f"{f.name}={getattr(self, f.name)!r}" for f in fields(self)
        )
        return f"{self.KIND}({parts})"


@dataclass(frozen=True)
class AttackRejected(Outcome):
    """The attack's frames were refused by a named mechanism.

    ``mechanism`` names the defence that absorbed the attack (e.g.
    ``"mac-associated-data"``, ``"emulated-round-binding"``) so two
    rejection scenarios with different defences stay distinguishable.
    """

    KIND: ClassVar[str] = "attack-rejected"

    mechanism: str


@dataclass(frozen=True)
class KeyMismatchDetected(Outcome):
    """A re-key honestly reported the members it could not re-key.

    ``victims`` are the members that ended the operation *detectably*
    keyless (``RekeyReport.dropped``) instead of silently continuing on
    a stale key — the detection the paper's re-keying motivation asks
    for.
    """

    KIND: ClassVar[str] = "key-mismatch-detected"

    victims: tuple[int, ...]


@dataclass(frozen=True)
class SessionAborted(Outcome):
    """The serve layer refused the attack with a typed failure code.

    ``code`` is drawn from :data:`repro.serve.protocol.FAILURE_CODES`;
    matching on the code (never the message) keeps the expectation
    stable across wording changes.
    """

    KIND: ClassVar[str] = "session-aborted"

    code: str


@dataclass(frozen=True)
class WhpBoundHolds(Outcome):
    """The protocol ran under attack and its disruptability bound held.

    ``bound`` is the claimed cover bound (``t`` for Definition 1,
    ``2t`` for the Byzantine-hardened variant).
    """

    KIND: ClassVar[str] = "whp-bound-holds"

    bound: int


@dataclass(frozen=True)
class SafetyViolated(Outcome):
    """Something wrong was *accepted*: the named invariant failed."""

    KIND: ClassVar[str] = "safety-violated"

    invariant: str


@dataclass(frozen=True)
class LivenessLost(Outcome):
    """Nothing wrong was accepted, but the named delivery never came."""

    KIND: ClassVar[str] = "liveness-lost"

    service: str


OUTCOME_TYPES: dict[str, type] = {
    cls.KIND: cls
    for cls in (
        AttackRejected,
        KeyMismatchDetected,
        SessionAborted,
        WhpBoundHolds,
        SafetyViolated,
        LivenessLost,
    )
}
"""Outcome classes keyed by wire kind."""

_SAFETY_FAILURE_KINDS = frozenset({SafetyViolated.KIND})
_LIVENESS_FAILURE_KINDS = frozenset({LivenessLost.KIND})


def classify(outcome: Outcome) -> str:
    """``"safety-failure"``, ``"liveness-failure"``, or ``"contained"``."""
    if outcome.KIND in _SAFETY_FAILURE_KINDS:
        return "safety-failure"
    if outcome.KIND in _LIVENESS_FAILURE_KINDS:
        return "liveness-failure"
    return "contained"


def encode_outcome(outcome: Outcome) -> tuple:
    """``(kind, field, ...)`` — scalars and tuples only, wire-safe."""
    return (outcome.KIND,) + tuple(
        getattr(outcome, f.name) for f in fields(outcome)
    )


def decode_outcome(row: tuple) -> Outcome:
    """Rebuild an outcome from :func:`encode_outcome` output."""
    if not isinstance(row, (tuple, list)) or not row:
        raise ScenarioError(f"malformed outcome row: {row!r}")
    kind, *values = row
    cls = OUTCOME_TYPES.get(kind)
    if cls is None:
        raise ScenarioError(
            f"unknown outcome kind {kind!r}; "
            f"known: {sorted(OUTCOME_TYPES)}"
        )
    names = [f.name for f in fields(cls)]
    if len(values) != len(names):
        raise ScenarioError(
            f"outcome {kind!r} takes {len(names)} fields, got {len(values)}"
        )
    coerced = [
        tuple(v) if isinstance(v, list) else v for v in values
    ]
    return cls(**dict(zip(names, coerced)))


def bound_outcome(bound: int, cover: int) -> Outcome:
    """The observed outcome of a disruptability-bound scenario.

    The bound holding is the contained outcome; the bound failing means
    the protocol *granted* deliveries it should not have (or lost ones
    it guaranteed) beyond what the adversary model concedes — a safety
    failure of the w.h.p. claim for this execution.
    """
    if cover <= bound:
        return WhpBoundHolds(bound=bound)
    return SafetyViolated(invariant=f"disruptability {cover} > bound {bound}")
