"""Declarative attack-scenario registry and gauntlet runner.

Each scenario names a target protocol layer, an attack, and a typed
expected outcome; see :mod:`repro.scenarios.registry` for the schema,
:mod:`repro.scenarios.outcomes` for the outcome taxonomy (safety and
liveness failures asserted separately), and
:mod:`repro.scenarios.catalog` for the registered attacks.  Runnable
one-off (``python -m repro scenario run NAME``), in bulk (``python -m
repro scenario gauntlet``), as sweep workloads (``scenario:NAME``), and
through the serve daemon (the ``RunScenario`` request).
``docs/SCENARIOS.md`` is the guide.
"""

from __future__ import annotations

from .outcomes import (
    OUTCOME_TYPES,
    AttackRejected,
    KeyMismatchDetected,
    LivenessLost,
    Outcome,
    SafetyViolated,
    SessionAborted,
    WhpBoundHolds,
    classify,
    decode_outcome,
    encode_outcome,
)
from .registry import (
    LAYERS,
    SCENARIOS,
    Scenario,
    ScenarioContext,
    get_scenario,
    scenario,
    scenario_names,
)
from .runner import GauntletReport, ScenarioRun, run_gauntlet, run_scenario

# Importing the catalog registers the built-in scenarios.
from . import catalog as _catalog  # noqa: F401  (import for side effect)

__all__ = [
    "LAYERS",
    "SCENARIOS",
    "Scenario",
    "ScenarioContext",
    "scenario",
    "get_scenario",
    "scenario_names",
    "Outcome",
    "AttackRejected",
    "KeyMismatchDetected",
    "SessionAborted",
    "WhpBoundHolds",
    "SafetyViolated",
    "LivenessLost",
    "OUTCOME_TYPES",
    "encode_outcome",
    "decode_outcome",
    "classify",
    "ScenarioRun",
    "GauntletReport",
    "run_scenario",
    "run_gauntlet",
]
