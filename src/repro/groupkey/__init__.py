"""Shared group-key establishment (Section 6).

Starting from **no** shared secrets, the protocol bootstraps a key known to
all but at most ``t`` nodes and unknown to the adversary, in
``O(n t^3 log n)`` rounds:

1. f-AME over a :func:`~repro.groupkey.spanner.leader_spanner` exchanges
   Diffie-Hellman publics, yielding authenticated pairwise keys;
2. complete leaders disseminate their leader keys over key-derived
   channel-hopping epochs, encrypted and authenticated;
3. ``2t + 1`` reporters drive agreement on the smallest complete leader's
   key.
"""

from .protocol import GroupKeyProtocol, establish_group_key
from .result import GroupKeyResult
from .spanner import choose_leaders, leader_spanner, spanner_size

__all__ = [
    "GroupKeyProtocol",
    "GroupKeyResult",
    "choose_leaders",
    "establish_group_key",
    "leader_spanner",
    "spanner_size",
]
