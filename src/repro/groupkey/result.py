"""Result objects for the group-key establishment protocol (Section 6)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass
class GroupKeyResult:
    """Everything observable after one group-key establishment run.

    Attributes
    ----------
    n, t:
        Model parameters of the run.
    leaders:
        The ``t + 1`` leader node ids.
    pairwise_established:
        Unordered pairs ``frozenset({v, w})`` that completed the DH exchange
        in both directions and hold a shared key.
    pairwise_keys:
        The established pairwise keys themselves.  In a deployment each
        node holds only its own keys; the result object centralises them
        so higher layers (re-keying, point-to-point channels) and tests
        can continue the protocol without re-running Part 1.
    completed_leaders:
        Leaders that exchanged keys with at least ``n - 1 - t`` partners and
        therefore chose and disseminated a leader key.
    leader_keys:
        The secret leader keys (exposed for test verification only — the
        simulated adversary never reads this object).
    received_leader_keys:
        Per node, the map of leader id -> leader key it decrypted in Part 2.
    adopted:
        Per node, the group key it adopted in Part 3 (``None`` when the node
        recognised it does not know the group key).
    expected_leader:
        The smallest completed leader — whose key the analysis says becomes
        the group key.
    part1_rounds, part2_rounds, part3_rounds:
        Radio rounds consumed by each part.
    part1_payload_units, part2_payload_units, part3_payload_units:
        Honest wire size shipped by each part
        (:attr:`~repro.radio.metrics.NetworkMetrics.payload_units` deltas;
        zero when the network's ``meter_payloads`` gate is off).  Part 2 —
        the leader-spanner dissemination epochs — is the bulky one, and
        this baseline is what a future delta-frame encoding for group-key
        payloads would be measured against.
    fame_summary:
        The Part 1 f-AME run's summary dict (disruptability etc.).
    """

    n: int
    t: int
    leaders: tuple[int, ...]
    pairwise_established: set[frozenset[int]] = field(default_factory=set)
    pairwise_keys: dict[frozenset[int], bytes] = field(default_factory=dict)
    completed_leaders: tuple[int, ...] = ()
    leader_keys: dict[int, bytes] = field(default_factory=dict)
    received_leader_keys: dict[int, dict[int, bytes]] = field(default_factory=dict)
    adopted: dict[int, bytes | None] = field(default_factory=dict)
    expected_leader: int | None = None
    part1_rounds: int = 0
    part2_rounds: int = 0
    part3_rounds: int = 0
    part1_payload_units: int = 0
    part2_payload_units: int = 0
    part3_payload_units: int = 0
    fame_summary: dict[str, Any] = field(default_factory=dict)

    # ------------------------------------------------------------------

    @property
    def group_key(self) -> bytes | None:
        """The canonical group key: the smallest completed leader's key."""
        if self.expected_leader is None:
            return None
        return self.leader_keys.get(self.expected_leader)

    @property
    def total_rounds(self) -> int:
        """Radio rounds across all three parts."""
        return self.part1_rounds + self.part2_rounds + self.part3_rounds

    @property
    def total_payload_units(self) -> int:
        """Honest wire units shipped across all three parts."""
        return (
            self.part1_payload_units
            + self.part2_payload_units
            + self.part3_payload_units
        )

    def holders(self) -> list[int]:
        """Nodes that adopted the canonical group key."""
        key = self.group_key
        if key is None:
            return []
        return [v for v, k in self.adopted.items() if k == key]

    def non_holders(self) -> list[int]:
        """Nodes that did not adopt the canonical group key."""
        key = self.group_key
        return [v for v, k in self.adopted.items() if k is None or k != key]

    def summary(self) -> dict[str, Any]:
        """Compact dict for benchmark tables."""
        return {
            "n": self.n,
            "t": self.t,
            "pairwise_established": len(self.pairwise_established),
            "completed_leaders": len(self.completed_leaders),
            "expected_leader": self.expected_leader,
            "holders": len(self.holders()),
            "non_holders": len(self.non_holders()),
            "part1_rounds": self.part1_rounds,
            "part2_rounds": self.part2_rounds,
            "part3_rounds": self.part3_rounds,
            "total_rounds": self.total_rounds,
            "part1_payload_units": self.part1_payload_units,
            "part2_payload_units": self.part2_payload_units,
            "part3_payload_units": self.part3_payload_units,
            "total_payload_units": self.total_payload_units,
        }
