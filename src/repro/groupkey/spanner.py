"""The ``(t+1)``-leader spanner (Section 6, Part 1).

The group-key setup initialises f-AME with a *sparse, (t+1)-connected* pair
set: ``t + 1`` leader nodes, each paired with every other node, in both
directions (Diffie-Hellman is a two-message exchange, so each unordered
pair contributes two ordered AME pairs).  With ``t + 1`` leaders, the
adversary — able to permanently disrupt only ``t`` nodes — cannot cut every
leader off, so at least one leader completes pairwise exchanges with almost
everyone.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ConfigurationError


def choose_leaders(n: int, t: int) -> tuple[int, ...]:
    """The canonical leader set: the ``t + 1`` lowest node ids."""
    if n < t + 2:
        raise ConfigurationError(
            f"need at least t+2 nodes for a leader spanner (n={n}, t={t})"
        )
    return tuple(range(t + 1))


def leader_spanner(
    n: int, t: int, leaders: Sequence[int] | None = None
) -> list[tuple[int, int]]:
    """The ordered pair set ``E_l = {(v, w) | v ∈ l or w ∈ l}``.

    Contains both directions of every leader/non-leader pair and of every
    leader/leader pair — ``(t+1)(2n - t - 2)`` ordered pairs, i.e. the
    paper's ``O(n(t+1))`` edges.
    """
    if leaders is None:
        leaders = choose_leaders(n, t)
    leader_set = set(leaders)
    if len(leader_set) != t + 1:
        raise ConfigurationError(
            f"need exactly t+1={t + 1} distinct leaders, got {len(leader_set)}"
        )
    if not all(0 <= v < n for v in leader_set):
        raise ConfigurationError("leader ids out of range")
    pairs: list[tuple[int, int]] = []
    for v in range(n):
        for w in range(n):
            if v != w and (v in leader_set or w in leader_set):
                pairs.append((v, w))
    return pairs


def spanner_size(n: int, t: int) -> int:
    """Number of ordered pairs in the leader spanner."""
    # Each of the t+1 leaders exchanges with n-1 others in both directions;
    # leader-leader pairs would be double-counted.
    leaders = t + 1
    return leaders * (n - 1) * 2 - leaders * (leaders - 1)
