"""Establishing a shared group key (Section 6).

Three parts, all running on the same radio network:

* **Part 1 — pairwise keys** (``O(n t^3 log n)`` rounds): f-AME over the
  ``(t+1)``-leader spanner carries each node's Diffie-Hellman public value;
  every pair whose two ordered exchanges both succeeded derives a shared
  pairwise key the adversary cannot compute.

* **Part 2 — leader-key dissemination** (``Θ(n t^2 log n)`` rounds): every
  *complete* leader (one that exchanged keys with at least ``n - 1 - t``
  partners) picks a leader key and sends it to each partner during that
  pair's epoch, encrypted under the pairwise key, on a channel-hopping
  pattern derived from the same key.  The adversary neither predicts the
  channel (so jamming succeeds with probability at most ``t/C`` per round)
  nor forges ciphertexts (authenticated encryption).

* **Part 3 — key agreement** (``Θ(t^3 log n)`` rounds): ``2t + 1``
  non-leader reporters each broadcast, over a randomized epoch, the
  smallest leader they received a key from plus that key's hash.  A node
  adopts the smallest leader key it can verify that gathered reports from
  ``t + 1`` distinct reporters.

Reproduction note (also in DESIGN.md): Part 3 reports are unauthenticated,
so a spoofing adversary can replay a *later* complete leader's report under
fabricated reporter ids.  Nodes that know the smallest completed leader's
key are unaffected (the smallest-verified rule adopts it regardless); only
nodes already cut off from that leader — at most ``t``, by Part 1's
``t``-disruptability — can be steered to a different (still honest-leader)
key.  This matches the paper's guarantee that all but ``t`` nodes adopt the
group key.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Mapping, Sequence

from ..crypto.dh import DEFAULT_GROUP, DhGroup, pairwise_context
from ..crypto.hashes import h2
from ..crypto.hopping import ChannelHopper
from ..crypto.stream import AuthenticatedCipher, Ciphertext, nonce_from_counter
from ..errors import ConfigurationError, CryptoError
from ..fame.config import FameConfig, make_config
from ..fame.protocol import FameProtocol
from ..radio.actions import Transmit
from ..radio.messages import Message
from ..radio.network import (
    CompiledRound,
    RadioNetwork,
    RoundMeta,
    RoundSchedule,
)
from ..rng import BlockDrawer, RngRegistry
from .result import GroupKeyResult
from .spanner import choose_leaders, leader_spanner

LEADER_KEY_KIND = "gk-leaderkey"
REPORT_KIND = "gk-report"


class GroupKeyProtocol:
    """One group-key establishment run.

    Parameters
    ----------
    network:
        The radio network (must satisfy the f-AME population bound).
    rng:
        Honest randomness registry (DH exponents, hop listening, reporters).
    group:
        The Diffie-Hellman group; defaults to a fast simulation group that
        is structurally identical to the production RFC 3526 group.
    leaders:
        Leader ids; defaults to the ``t + 1`` lowest.
    config:
        f-AME channel-regime configuration for Part 1.
    """

    def __init__(
        self,
        network: RadioNetwork,
        rng: RngRegistry | None = None,
        *,
        group: DhGroup = DEFAULT_GROUP,
        leaders: Sequence[int] | None = None,
        config: FameConfig | None = None,
        channel_aware: bool = False,
    ) -> None:
        self.network = network
        self.rng = rng or RngRegistry(seed=0)
        self.group = group
        self.t = network.t
        self.n = network.n
        self.leaders = (
            tuple(sorted(leaders))
            if leaders is not None
            else choose_leaders(self.n, self.t)
        )
        if len(self.leaders) != self.t + 1:
            raise ConfigurationError(
                f"need exactly t+1={self.t + 1} leaders"
            )
        self.config = config or make_config(
            self.n, network.channels, self.t, params=network.params
        )
        # "With more channels, the cost can be reduced accordingly"
        # (Section 6): channel-aware Part 2 epochs shrink to Θ(log n)
        # once C >= 2t, mirroring the Section 7 parenthetical.
        self.channel_aware = channel_aware

    # ------------------------------------------------------------------
    # Part 1: pairwise keys via f-AME + DH.
    # ------------------------------------------------------------------

    def _part1_pairwise_keys(
        self, result: GroupKeyResult
    ) -> dict[frozenset[int], bytes]:
        start = self.network.metrics.rounds
        payload_start = self.network.metrics.payload_units
        keypairs = {
            v: self.group.keypair(self.rng.stream("dh", v))
            for v in range(self.n)
        }
        spanner = leader_spanner(self.n, self.t, self.leaders)
        messages = {(v, w): keypairs[v].public for (v, w) in spanner}
        fame = FameProtocol(
            self.network,
            spanner,
            messages=messages,
            rng=self.rng,
            config=self.config,
        ).run()
        result.fame_summary = fame.summary()

        pair_keys: dict[frozenset[int], bytes] = {}
        for v, w in spanner:
            if v > w:
                continue  # handle each unordered pair once
            forward = fame.outcomes.get((v, w))
            backward = fame.outcomes.get((w, v))
            if not (forward and backward and forward.success and backward.success):
                continue
            # w received v's public on (v, w); v received w's on (w, v).
            public_v_at_w = forward.message
            public_w_at_v = backward.message
            key_at_v = keypairs[v].shared_key(
                public_w_at_v, *pairwise_context(v, w)
            )
            key_at_w = keypairs[w].shared_key(
                public_v_at_w, *pairwise_context(v, w)
            )
            if key_at_v != key_at_w:  # pragma: no cover - f-AME authenticity
                raise CryptoError(
                    f"pair ({v}, {w}) derived mismatched keys despite "
                    "authenticated exchange"
                )
            pair_keys[frozenset((v, w))] = key_at_v
        result.pairwise_established = set(pair_keys)
        result.pairwise_keys = dict(pair_keys)
        result.part1_rounds = self.network.metrics.rounds - start
        result.part1_payload_units = (
            self.network.metrics.payload_units - payload_start
        )
        return pair_keys

    # ------------------------------------------------------------------
    # Part 2: leader-key dissemination over key-derived hop patterns.
    # ------------------------------------------------------------------

    def _part2_disseminate(
        self,
        pair_keys: Mapping[frozenset[int], bytes],
        result: GroupKeyResult,
    ) -> dict[int, dict[int, bytes]]:
        start = self.network.metrics.rounds
        payload_start = self.network.metrics.payload_units
        completed = []
        for v in self.leaders:
            partners = sum(
                1 for w in range(self.n)
                if w != v and frozenset((v, w)) in pair_keys
            )
            if partners >= self.n - 1 - self.t:
                completed.append(v)
        result.completed_leaders = tuple(completed)
        leader_keys = {
            v: bytes(self.rng.stream("leader-key", v).randbytes(32))
            for v in completed
        }
        result.leader_keys = dict(leader_keys)

        received: dict[int, dict[int, bytes]] = defaultdict(dict)
        for v in completed:
            received[v][v] = leader_keys[v]

        if self.channel_aware:
            epoch_rounds = self.network.params.hopping_epoch_rounds(
                self.n, self.network.channels, self.t
            )
        else:
            epoch_rounds = self.network.params.dissemination_epoch_rounds(
                self.n, self.t
            )
        channels = self.network.channels
        epoch_index = 0
        for v in self.leaders:
            for w in range(self.n):
                if w == v:
                    continue
                pair_key = pair_keys.get(frozenset((v, w)))
                meta = RoundMeta(
                    phase="groupkey-part2",
                    extra={"leader": v, "partner": w},
                )
                if pair_key is None:
                    # The epoch still burns its rounds in lockstep (the
                    # adversary acts; nothing is sent on this pair's behalf).
                    idle = CompiledRound(
                        transmits={}, listens={}, meta=meta, listen_count=0
                    )
                    self.network.execute_schedule(
                        RoundSchedule([idle] * epoch_rounds)
                    )
                    epoch_index += 1
                    continue
                hopper = ChannelHopper(
                    pair_key, channels, label=("part2", v, w)
                )
                cipher = AuthenticatedCipher(pair_key)
                # The whole epoch is deterministic given the pair key:
                # compile it and submit it in one batch.
                epoch: list[CompiledRound] = []
                hops: list[int] = []
                for r in range(epoch_rounds):
                    channel = hopper.channel(r)
                    if v in leader_keys:
                        sealed = cipher.encrypt(
                            leader_keys[v],
                            nonce=nonce_from_counter(epoch_index, r),
                            associated=b"leader-key",
                        )
                        payload: Any = ("key", sealed.as_tuple())
                    else:
                        sealed = cipher.encrypt(
                            b"",
                            nonce=nonce_from_counter(epoch_index, r),
                            associated=b"incomplete",
                        )
                        payload = ("incomplete", sealed.as_tuple())
                    epoch.append(
                        CompiledRound(
                            transmits={
                                v: Transmit(
                                    channel,
                                    Message(
                                        kind=LEADER_KEY_KIND,
                                        sender=v,
                                        payload=payload,
                                    ),
                                )
                            },
                            listens={channel: (w,)},
                            meta=meta,
                            listen_count=1,
                        )
                    )
                    hops.append(channel)
                heard = self.network.execute_schedule(RoundSchedule(epoch))
                for channel, per_round in zip(hops, heard):
                    frame = per_round.get(channel)
                    if frame is None or frame.kind != LEADER_KEY_KIND:
                        continue
                    try:
                        tag, sealed_tuple = frame.payload
                        sealed = Ciphertext.from_tuple(sealed_tuple)
                        if tag == "key":
                            plaintext = cipher.decrypt(
                                sealed, associated=b"leader-key"
                            )
                            received[w][v] = plaintext
                        else:
                            cipher.decrypt(sealed, associated=b"incomplete")
                    except (CryptoError, TypeError, ValueError):
                        continue  # forged or malformed — rejected
                epoch_index += 1
        result.received_leader_keys = {
            node: dict(keys) for node, keys in received.items()
        }
        result.part2_rounds = self.network.metrics.rounds - start
        result.part2_payload_units = (
            self.network.metrics.payload_units - payload_start
        )
        return received

    # ------------------------------------------------------------------
    # Part 3: agreement on one leader key.
    # ------------------------------------------------------------------

    def _part3_agree(
        self,
        received: Mapping[int, Mapping[int, bytes]],
        result: GroupKeyResult,
    ) -> None:
        start = self.network.metrics.rounds
        payload_start = self.network.metrics.payload_units
        non_leaders = [v for v in range(self.n) if v not in self.leaders]
        reporters = non_leaders[: 2 * self.t + 1]
        if len(reporters) < 2 * self.t + 1:
            raise ConfigurationError(
                f"need {2 * self.t + 1} non-leader reporters, "
                f"have {len(reporters)}"
            )
        epoch_rounds = self.network.params.gossip_epoch_rounds(self.n, self.t)
        channels = self.network.channels

        # reports[node][(leader, key_hash)] = set of claimed reporter ids.
        reports: dict[int, dict[tuple[int, bytes], set[int]]] = {
            v: defaultdict(set) for v in range(self.n)
        }
        streams = [self.rng.stream("part3", node) for node in range(self.n)]
        for reporter in reporters:
            known = received.get(reporter, {})
            report_payload = None
            if known:
                smallest = min(known)
                report_payload = (
                    reporter,
                    smallest,
                    h2("leader-key", known[smallest]),
                )
            frame = (
                Message(
                    kind=REPORT_KIND, sender=reporter, payload=report_payload
                )
                if report_payload is not None
                else None
            )
            # The epoch's transmit/listen pattern is pure private coin
            # flips: materialize every node's hop sequence up front with
            # the batched BlockDrawer (``randrange(channels)`` bottoms out
            # in the same getrandbits rejection chain — see the invariant
            # in repro.rng — so per-stream consumption is byte-identical
            # to the historical per-round ``randrange`` loop) and compile
            # the whole epoch; listeners resolve lazily per channel group.
            # A silent reporter (no frame) draws nothing, as before.
            meta = RoundMeta(
                phase="groupkey-part3", extra={"reporter": reporter}
            )
            drawer = BlockDrawer(channels)
            hop_matrix: list[list[int] | None] = [
                None
                if node == reporter and frame is None
                else drawer.draw(streams[node], epoch_rounds)
                for node in range(self.n)
            ]
            epoch: list[CompiledRound] = []
            fanouts: list[dict[int, list[int]]] = []
            for rnd in range(epoch_rounds):
                transmits: dict[int, Transmit] = {}
                by_channel: dict[int, list[int]] = {}
                listen_count = 0
                for node in range(self.n):
                    if node == reporter:
                        if frame is not None:
                            transmits[node] = Transmit(
                                hop_matrix[node][rnd], frame
                            )
                    else:
                        by_channel.setdefault(
                            hop_matrix[node][rnd], []
                        ).append(node)
                        listen_count += 1
                epoch.append(
                    CompiledRound(
                        transmits=transmits,
                        listens=by_channel,
                        meta=meta,
                        listen_count=listen_count,
                    )
                )
                fanouts.append(by_channel)
            heard = self.network.execute_schedule(RoundSchedule(epoch))
            for by_channel, per_round in zip(fanouts, heard):
                for channel, got in per_round.items():
                    if got.kind != REPORT_KIND:
                        continue
                    try:
                        claimed_reporter, leader, key_hash = got.payload
                    except (TypeError, ValueError):
                        continue
                    if claimed_reporter in reporters and isinstance(
                        key_hash, bytes
                    ):
                        for node in by_channel[channel]:
                            reports[node][(leader, key_hash)].add(
                                claimed_reporter
                            )

        # The agreement rule: adopt the smallest leader whose key the node
        # can verify and that gathered t+1 distinct (claimed) reporters.
        adopted: dict[int, bytes | None] = {}
        for node in range(self.n):
            known = received.get(node, {})
            candidates = []
            for (leader, key_hash), who in reports[node].items():
                if len(who) < self.t + 1:
                    continue
                key = known.get(leader)
                if key is not None and h2("leader-key", key) == key_hash:
                    candidates.append((leader, key))
            adopted[node] = min(candidates)[1] if candidates else None
        result.adopted = adopted
        result.expected_leader = (
            min(result.completed_leaders) if result.completed_leaders else None
        )
        result.part3_rounds = self.network.metrics.rounds - start
        result.part3_payload_units = (
            self.network.metrics.payload_units - payload_start
        )

    # ------------------------------------------------------------------

    def run(self) -> GroupKeyResult:
        """Execute Parts 1-3; returns the full result object."""
        result = GroupKeyResult(n=self.n, t=self.t, leaders=self.leaders)
        pair_keys = self._part1_pairwise_keys(result)
        received = self._part2_disseminate(pair_keys, result)
        self._part3_agree(received, result)
        return result


def establish_group_key(
    network: RadioNetwork,
    rng: RngRegistry | None = None,
    *,
    group: DhGroup = DEFAULT_GROUP,
    leaders: Sequence[int] | None = None,
    config: FameConfig | None = None,
) -> GroupKeyResult:
    """Convenience wrapper: run :class:`GroupKeyProtocol` once."""
    return GroupKeyProtocol(
        network, rng, group=group, leaders=leaders, config=config
    ).run()
