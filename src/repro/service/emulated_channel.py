"""Emulating a secure broadcast channel from a group key (Section 7).

One *emulated round* costs ``Θ(t log n)`` real rounds: the group derives the
round's channel-hopping pattern from the shared key, the (single) broadcaster
repeats its encrypted message on the pattern, and everyone else listens on
the pattern.  The adversary, keyless, sees each hop as uniform — jamming
``t`` of ``C`` channels blind fails with probability ``(C - t)/C`` per real
round, so the message lands with high probability.  Ciphertexts are
authenticated (encrypt-then-MAC) with the emulated round number and sender
id as associated data, which kills spoofing *and* replay across rounds.

Guarantees (with high probability, matching Section 7):

* **t-Reliability** — every key holder receives a sole broadcaster's
  message; at most the ``t`` nodes without the key are excluded;
* **Secrecy** — transmitted frames are ciphertexts under the group key;
* **Authentication** — a receiver accepts ``m`` from ``v`` only if ``v``
  sealed ``m`` for this emulated round.

Like a real broadcast channel, two concurrent broadcasters collide and
nobody delivers — scheduling is the application's job (see
:class:`repro.service.session.SecureSession`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..crypto.hashes import canonical_encode
from ..crypto.hopping import ChannelHopper
from ..crypto.stream import AuthenticatedCipher, Ciphertext, nonce_from_counter
from ..errors import ConfigurationError, CryptoError
from ..radio.actions import Transmit
from ..radio.messages import Message
from ..radio.network import (
    CompiledRound,
    RadioNetwork,
    RoundMeta,
    RoundSchedule,
)
from ..rng import RngRegistry

SERVICE_KIND = "service-frame"


@dataclass(frozen=True)
class Delivery:
    """One authenticated reception on the emulated channel."""

    emulated_round: int
    sender: int
    payload: bytes


class LongLivedChannel:
    """The emulated secure channel bound to one group key.

    Parameters
    ----------
    network:
        The radio network to emulate over.
    group_key:
        The shared secret from :mod:`repro.groupkey` (>= 16 bytes).
    members:
        Nodes holding the key; only they can send or receive.  Non-members
        sleep through service rounds (they are the at-most-``t`` nodes the
        reliability guarantee concedes).
    rng:
        Unused for hopping (the pattern is key-derived) but reserved for
        future randomized scheduling; kept for interface symmetry.
    """

    def __init__(
        self,
        network: RadioNetwork,
        group_key: bytes,
        members: Sequence[int],
        rng: RngRegistry | None = None,
        *,
        channel_aware_epochs: bool = False,
    ) -> None:
        if not isinstance(group_key, (bytes, bytearray)) or len(group_key) < 16:
            raise ConfigurationError("group key must be at least 16 bytes")
        self.network = network
        self.members = sorted(set(int(m) for m in members))
        if not all(0 <= m < network.n for m in self.members):
            raise ConfigurationError("member id out of range")
        if len(self.members) < 2:
            raise ConfigurationError("need at least two members")
        self._hopper = ChannelHopper(
            bytes(group_key), network.channels, label="service"
        )
        self._cipher = AuthenticatedCipher(bytes(group_key))
        self._channel_aware = channel_aware_epochs
        self._emulated_round = 0
        self._real_round_cursor = 0

    # ------------------------------------------------------------------

    @property
    def emulated_round(self) -> int:
        """Index of the next emulated round."""
        return self._emulated_round

    def epoch_length(self) -> int:
        """Real rounds per emulated round.

        The paper's base analysis charges ``Θ(t log n)`` (the default).
        With ``channel_aware_epochs=True`` the Section 7 parenthetical
        kicks in: at ``C >= 2t`` the keyless adversary hits the hop with
        probability at most 1/2 per round, so ``Θ(log n)`` suffices.
        """
        if self._channel_aware:
            return self.network.params.hopping_epoch_rounds(
                self.network.n, self.network.channels, self.network.t
            )
        return self.network.params.dissemination_epoch_rounds(
            self.network.n, self.network.t
        )

    def _associated(self, sender: int, emulated_round: int) -> bytes:
        return canonical_encode(("service", sender, emulated_round))

    def seal(self, sender: int, payload: bytes, emulated_round: int) -> Ciphertext:
        """Encrypt-and-authenticate ``payload`` for one emulated round."""
        return self._cipher.encrypt(
            payload,
            nonce=nonce_from_counter(emulated_round, sender),
            associated=self._associated(sender, emulated_round),
        )

    def run_round(
        self, broadcasts: Mapping[int, bytes]
    ) -> dict[int, Delivery | None]:
        """Execute one emulated round.

        Parameters
        ----------
        broadcasts:
            Map of sender member -> payload bytes.  An empty map emulates a
            silent round; two or more senders collide (like a real channel)
            and nobody delivers.

        Returns
        -------
        Per listening member, the authenticated :class:`Delivery` (or
        ``None`` for silence/disruption/forgery).
        """
        for sender in broadcasts:
            if sender not in self.members:
                raise ConfigurationError(
                    f"node {sender} is not a channel member"
                )
        er = self._emulated_round
        sealed = {
            sender: Message(
                kind=SERVICE_KIND,
                sender=sender,
                payload=(sender, er, self.seal(sender, payload, er).as_tuple()),
            )
            for sender, payload in broadcasts.items()
        }
        listeners = [m for m in self.members if m not in broadcasts]
        deliveries: dict[int, Delivery | None] = {m: None for m in listeners}

        # The epoch's hop pattern is key-derived and the frames are fixed:
        # compile every real round up front and submit the batch.
        meta = RoundMeta(phase="service", extra={"emulated_round": er})
        members_listening = tuple(listeners)
        epoch: list[CompiledRound] = []
        hops: list[int] = []
        for _ in range(self.epoch_length()):
            channel = self._hopper.channel(self._real_round_cursor)
            self._real_round_cursor += 1
            epoch.append(
                CompiledRound(
                    transmits={
                        sender: Transmit(channel, frame)
                        for sender, frame in sealed.items()
                    },
                    listens={channel: members_listening},
                    meta=meta,
                    listen_count=len(members_listening),
                )
            )
            hops.append(channel)
        heard = self.network.execute_schedule(RoundSchedule(epoch))

        for channel, per_round in zip(hops, heard):
            frame = per_round.get(channel)
            if frame is None or frame.kind != SERVICE_KIND:
                continue
            for member in listeners:
                if deliveries[member] is not None:
                    continue
                try:
                    claimed_sender, claimed_round, sealed_tuple = frame.payload
                    if claimed_round != er:
                        continue  # replay from another emulated round
                    ciphertext = Ciphertext.from_tuple(sealed_tuple)
                    payload = self._cipher.decrypt(
                        ciphertext,
                        associated=self._associated(claimed_sender, er),
                    )
                except (CryptoError, TypeError, ValueError):
                    continue  # forged or malformed — rejected
                deliveries[member] = Delivery(
                    emulated_round=er,
                    sender=claimed_sender,
                    payload=payload,
                )
        self._emulated_round += 1
        return deliveries
