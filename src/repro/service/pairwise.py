"""Point-to-point secure channels over pairwise keys (Section 8, Q4).

The paper asks whether more efficient point-to-point primitives exist.
Once Part 1 of the group-key protocol has established pairwise keys, any
pair can skip the group machinery entirely: the two nodes derive a private
channel-hopping pattern from their pairwise key and exchange authenticated
ciphertexts over it.  Each exchange costs one hopping epoch —
``Θ(t log n)`` rounds at ``C = t + 1``, dropping to ``Θ(log n)`` at
``C >= 2t`` (``channel_aware_epochs=True``) — and involves *only the two
endpoints*: everyone else sleeps, so many pairwise channels can run
back-to-back without coordination.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.hashes import canonical_encode
from ..crypto.hopping import ChannelHopper
from ..crypto.stream import AuthenticatedCipher, Ciphertext, nonce_from_counter
from ..errors import ConfigurationError, CryptoError
from ..radio.actions import Transmit
from ..radio.messages import Message
from ..radio.network import (
    CompiledRound,
    RadioNetwork,
    RoundMeta,
    RoundSchedule,
)

PAIRWISE_KIND = "pairwise-frame"


@dataclass(frozen=True)
class PairwiseDelivery:
    """One authenticated reception on a pairwise channel."""

    exchange: int
    sender: int
    payload: bytes


class PairwiseChannel:
    """A private channel between two nodes sharing a pairwise key.

    Parameters
    ----------
    network:
        The radio network.
    key:
        The shared pairwise key (from Part 1 of the group-key protocol,
        or any other key agreement).
    a, b:
        The two endpoints.
    channel_aware_epochs:
        Use the ``Θ(log n)`` epoch length when ``C >= 2t`` (Section 7's
        parenthetical) instead of the base ``Θ(t log n)``.
    """

    def __init__(
        self,
        network: RadioNetwork,
        key: bytes,
        a: int,
        b: int,
        *,
        channel_aware_epochs: bool = False,
    ) -> None:
        if not isinstance(key, (bytes, bytearray)) or len(key) < 16:
            raise ConfigurationError("pairwise key must be at least 16 bytes")
        if a == b:
            raise ConfigurationError("a pairwise channel needs two endpoints")
        for node in (a, b):
            if not 0 <= node < network.n:
                raise ConfigurationError(f"endpoint {node} out of range")
        self.network = network
        self.endpoints = (min(a, b), max(a, b))
        self._hopper = ChannelHopper(
            bytes(key), network.channels, label=("pairwise", *self.endpoints)
        )
        self._cipher = AuthenticatedCipher(bytes(key))
        self._channel_aware = channel_aware_epochs
        self._exchange = 0
        self._cursor = 0

    @property
    def exchange_index(self) -> int:
        """Index of the next exchange epoch."""
        return self._exchange

    def epoch_length(self) -> int:
        """Real rounds per exchange."""
        if self._channel_aware:
            return self.network.params.hopping_epoch_rounds(
                self.network.n, self.network.channels, self.network.t
            )
        return self.network.params.dissemination_epoch_rounds(
            self.network.n, self.network.t
        )

    def _associated(self, sender: int, exchange: int) -> bytes:
        return canonical_encode(("pairwise", *self.endpoints, sender, exchange))

    def send(self, sender: int, payload: bytes) -> PairwiseDelivery | None:
        """One exchange epoch: ``sender`` transmits, the peer listens.

        Returns the peer's authenticated delivery, or ``None`` when the
        adversary won every round of the epoch (probability ``(t/C)^epoch``
        — negligible at the default constants).
        """
        if sender not in self.endpoints:
            raise ConfigurationError(f"{sender} is not an endpoint")
        if not isinstance(payload, (bytes, bytearray)):
            raise ConfigurationError("payload must be bytes")
        receiver = (
            self.endpoints[0]
            if sender == self.endpoints[1]
            else self.endpoints[1]
        )
        exchange = self._exchange
        sealed = self._cipher.encrypt(
            bytes(payload),
            nonce=nonce_from_counter(exchange, sender),
            associated=self._associated(sender, exchange),
        )
        frame = Message(
            kind=PAIRWISE_KIND,
            sender=sender,
            payload=(sender, exchange, sealed.as_tuple()),
        )
        # The epoch is a fixed hop sequence with a static frame: compile
        # it once and submit it as one batch.
        meta = RoundMeta(phase="pairwise", extra={"exchange": exchange})
        epoch: list[CompiledRound] = []
        hops: list[int] = []
        for _ in range(self.epoch_length()):
            channel = self._hopper.channel(self._cursor)
            self._cursor += 1
            epoch.append(
                CompiledRound(
                    transmits={sender: Transmit(channel, frame)},
                    listens={channel: (receiver,)},
                    meta=meta,
                    listen_count=1,
                )
            )
            hops.append(channel)
        heard = self.network.execute_schedule(RoundSchedule(epoch))

        delivery: PairwiseDelivery | None = None
        for channel, per_round in zip(hops, heard):
            if delivery is not None:
                continue  # the epoch ran to its end regardless (lockstep)
            got = per_round.get(channel)
            if got is None or got.kind != PAIRWISE_KIND:
                continue
            try:
                claimed_sender, claimed_exchange, sealed_tuple = got.payload
                if claimed_exchange != exchange:
                    continue  # replay from another epoch
                opened = self._cipher.decrypt(
                    Ciphertext.from_tuple(sealed_tuple),
                    associated=self._associated(claimed_sender, exchange),
                )
            except (CryptoError, TypeError, ValueError):
                continue
            delivery = PairwiseDelivery(
                exchange=exchange, sender=claimed_sender, payload=opened
            )
        self._exchange += 1
        return delivery
