"""The long-lived secure communication service (Section 7).

After a one-time group-key setup, the service emulates a secure broadcast
channel: ``Θ(t log n)`` real rounds per emulated round, with t-Reliability,
Secrecy, and Authentication against the keyless adversary.
"""

from .emulated_channel import Delivery, LongLivedChannel, SERVICE_KIND
from .pairwise import PairwiseChannel, PairwiseDelivery
from .session import (
    PresharedSetup,
    RekeyReport,
    SecureSession,
    SessionStats,
)

__all__ = [
    "Delivery",
    "LongLivedChannel",
    "PairwiseChannel",
    "PairwiseDelivery",
    "PresharedSetup",
    "RekeyReport",
    "SERVICE_KIND",
    "SecureSession",
    "SessionStats",
]
