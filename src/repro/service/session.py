"""An application-facing session over the long-lived channel (Section 7).

:class:`SecureSession` wires the whole paper together: it establishes the
group key with :mod:`repro.groupkey` (one-time ``Θ(n t^3 log n)``-round
setup), opens a :class:`~repro.service.emulated_channel.LongLivedChannel`,
and offers a queued send/broadcast API in which each emulated round carries
one message — the simple collision-free schedule the emulated broadcast
channel needs.

Any pair can communicate whenever it chooses (unlike single-shot f-AME),
each exchange costing ``Θ(t log n)`` real rounds.

The session also supports **dynamic re-keying** (the introduction's
motivation: "it might be useful to be able to re-key dynamically, for
example, after the detection of a compromised device"): a surviving
complete leader distributes a fresh group key over the Part 1 pairwise
keys, skipping the compromised members, who can neither receive their
(unscheduled) epoch nor decrypt anyone else's.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..crypto.dh import DEFAULT_GROUP, DhGroup
from ..crypto.hashes import derive_key
from ..crypto.hopping import ChannelHopper
from ..crypto.stream import AuthenticatedCipher, Ciphertext, nonce_from_counter
from ..errors import ConfigurationError, CryptoError
from ..groupkey.protocol import GroupKeyProtocol
from ..groupkey.result import GroupKeyResult
from ..radio.actions import Transmit
from ..radio.messages import Message
from ..radio.network import (
    CompiledRound,
    RadioNetwork,
    RoundMeta,
    RoundSchedule,
)
from ..rng import RngRegistry
from .emulated_channel import Delivery, LongLivedChannel

REKEY_KIND = "rekey-frame"


@dataclass(frozen=True)
class RekeyReport:
    """Outcome of one re-keying operation.

    ``excluded`` are the members deliberately skipped (the compromised
    set); ``dropped`` are members that *should* have survived but did not
    receive the fresh key — their Part 1 pair key with the distributor
    was never established, or the adversary won every round of their
    dissemination epoch.  The two sets are disjoint and together account
    for every node that left ``members``: nobody vanishes silently.
    """

    generation: int
    distributor: int
    members: tuple[int, ...]
    excluded: tuple[int, ...]
    rounds: int
    dropped: tuple[int, ...] = ()


@dataclass(frozen=True)
class PresharedSetup:
    """Key material provisioned out of band (no Part 1-3 run).

    Stand-in for :class:`~repro.groupkey.result.GroupKeyResult` when the
    group secret was established offline (the paper's setup runs once;
    a serving deployment re-opens sessions against stored material).
    Pairwise keys are derived from the group secret per unordered pair,
    so :meth:`SecureSession.rekey` works identically: every member can
    act as distributor (``completed_leaders`` is the whole membership).
    """

    group_key: bytes
    members: tuple[int, ...]
    pairwise_keys: dict[frozenset[int], bytes]
    completed_leaders: tuple[int, ...]

    def holders(self) -> list[int]:
        """Interface parity with ``GroupKeyResult.holders()``."""
        return list(self.members)


@dataclass
class SessionStats:
    """Accounting for one session."""

    setup_rounds: int = 0
    emulated_rounds: int = 0
    real_rounds: int = 0
    sent: int = 0
    delivered: int = 0
    undelivered: int = 0
    inboxes: dict[int, list[Delivery]] = field(default_factory=dict)


class SecureSession:
    """Setup-once, communicate-forever secure group communication.

    Parameters
    ----------
    network:
        The radio network.
    rng:
        Honest randomness registry.
    group:
        Diffie-Hellman group for the setup phase.

    Usage
    -----
    >>> session = SecureSession(network, rng)      # doctest: +SKIP
    ...                                            # setup: group key
    >>> session.send(3, b"hello")                  # enqueue
    >>> session.flush()                            # one emulated round each
    """

    def __init__(
        self,
        network: RadioNetwork,
        rng: RngRegistry | None = None,
        *,
        group: DhGroup = DEFAULT_GROUP,
    ) -> None:
        self.network = network
        self.rng = rng or RngRegistry(seed=0)
        start = network.metrics.rounds
        self.setup: GroupKeyResult | PresharedSetup = GroupKeyProtocol(
            network, self.rng, group=group
        ).run()
        key = self.setup.group_key
        if key is None:
            raise ConfigurationError(
                "setup failed: no leader completed the pairwise phase"
            )
        self._attach(
            key,
            self.setup.holders(),
            setup_rounds=network.metrics.rounds - start,
        )

    @classmethod
    def from_preshared(
        cls,
        network: RadioNetwork,
        group_key: bytes,
        members: Sequence[int],
        rng: RngRegistry | None = None,
    ) -> "SecureSession":
        """Open a session over an out-of-band group secret (no setup run).

        The ``Θ(n t^3 log n)`` group-key establishment runs once; a
        long-lived deployment (the ``repro.serve`` daemon) re-opens
        sessions against stored key material instead of re-running it per
        session.  Pairwise keys for :meth:`rekey` are derived from the
        group secret per unordered member pair, every member counts as a
        complete leader, and ``setup_rounds`` is zero.  Traffic, flush,
        inbox, and re-keying semantics are identical to a set-up session.
        """
        member_ids = tuple(sorted(set(int(m) for m in members)))
        secret = bytes(group_key)
        pairwise = {
            frozenset((a, b)): derive_key(secret, "preshared-pair", a, b)
            for i, a in enumerate(member_ids)
            for b in member_ids[i + 1 :]
        }
        self = cls.__new__(cls)
        self.network = network
        self.rng = rng or RngRegistry(seed=0)
        self.setup = PresharedSetup(
            group_key=secret,
            members=member_ids,
            pairwise_keys=pairwise,
            completed_leaders=member_ids,
        )
        self._attach(secret, member_ids, setup_rounds=0)
        return self

    def _attach(
        self, key: bytes, members: Iterable[int], *, setup_rounds: int
    ) -> None:
        """Bind the session to its first channel (shared constructor tail)."""
        self.members = list(members)
        self.channel = LongLivedChannel(
            self.network, key, self.members, self.rng
        )
        self.stats = SessionStats(
            setup_rounds=setup_rounds,
            inboxes={m: [] for m in self.members},
        )
        self._queue: deque[tuple[int, bytes]] = deque()
        self._generation = 0

    # ------------------------------------------------------------------

    def send(self, sender: int, payload: bytes) -> None:
        """Enqueue a broadcast from ``sender`` (one emulated round each)."""
        if sender not in self.channel.members:
            raise ConfigurationError(f"node {sender} is not a member")
        if not isinstance(payload, (bytes, bytearray)):
            raise ConfigurationError("payload must be bytes")
        self._queue.append((sender, bytes(payload)))
        self.stats.sent += 1

    def pending(self) -> int:
        """Messages waiting to be flushed."""
        return len(self._queue)

    def flush(self, max_rounds: int | None = None) -> list[Delivery]:
        """Drain the queue, one message per emulated round.

        ``max_rounds`` budgets the emulated rounds **of this call**: a
        session that has already run any number of rounds still drains up
        to ``max_rounds`` messages per invocation, so repeated budgeted
        flushes make progress.  (The budget used to be compared against
        the lifetime ``stats.emulated_rounds``, silently draining nothing
        once the session had ever run that many rounds.)

        Returns the deliveries observed by receivers (deduplicated per
        emulated round: one entry per receiving member).
        """
        out: list[Delivery] = []
        start = self.network.metrics.rounds
        used = 0
        while self._queue:
            if max_rounds is not None and used >= max_rounds:
                break
            used += 1
            sender, payload = self._queue.popleft()
            deliveries = self.channel.run_round({sender: payload})
            self.stats.emulated_rounds += 1
            got_any = False
            for member, delivery in deliveries.items():
                if delivery is not None:
                    got_any = True
                    self.stats.inboxes[member].append(delivery)
                    out.append(delivery)
            if got_any:
                self.stats.delivered += 1
            else:
                self.stats.undelivered += 1
        self.stats.real_rounds += self.network.metrics.rounds - start
        return out

    def idle_round(self) -> None:
        """Run one silent emulated round (keeps the hop pattern advancing)."""
        self.channel.run_round({})
        self.stats.emulated_rounds += 1

    def inbox(
        self, member: int, *, include_former: bool = False
    ) -> list[Delivery]:
        """All authenticated deliveries ``member`` has received.

        Membership is checked against the **current** members, not the
        historical inbox keys: a node excluded or dropped by a re-key is
        no longer a member even though its pre-rekey inbox survives.
        Reading a former member's history requires the explicit
        ``include_former=True``; a node that was never a member raises
        regardless.
        """
        if member not in self.stats.inboxes:
            raise ConfigurationError(f"node {member} is not a member")
        if member not in self.members and not include_former:
            raise ConfigurationError(
                f"node {member} is a former member (excluded or dropped "
                "by a re-key); pass include_former=True to read its "
                "historical inbox"
            )
        return list(self.stats.inboxes[member])

    # ------------------------------------------------------------------
    # Dynamic re-keying.
    # ------------------------------------------------------------------

    def rekey(self, compromised: Iterable[int]) -> RekeyReport:
        """Exclude ``compromised`` members and switch to a fresh group key.

        The smallest non-compromised complete leader draws a fresh key and
        sends it to every remaining member over that pair's Part 1
        pairwise key — one ``Θ(t log n)`` hopping epoch per member, so the
        whole operation costs ``Θ(n t^2 log n)`` rounds (a Part 2 rerun,
        much cheaper than a full setup).  Compromised members have no
        epoch scheduled and hold none of the other pairs' keys, so the new
        group key is information they never see; the old channel is torn
        down immediately.

        A surviving member that nevertheless missed the fresh key — its
        pair key with the distributor was never established, or its whole
        epoch was jammed — is reported in :attr:`RekeyReport.dropped`
        (disjoint from ``excluded``), and frames carrying a stale
        generation number are rejected outright.
        """
        excluded = frozenset(int(v) for v in compromised)
        pair_keys = self.setup.pairwise_keys
        candidates = [
            v for v in self.setup.completed_leaders if v not in excluded
        ]
        if not candidates:
            raise ConfigurationError(
                "no non-compromised complete leader available to re-key"
            )
        distributor = min(candidates)
        self._generation += 1
        generation = self._generation
        new_key = bytes(
            self.rng.stream("rekey", generation).randbytes(32)
        )

        start = self.network.metrics.rounds
        epoch_rounds = self.network.params.dissemination_epoch_rounds(
            self.network.n, self.network.t
        )
        new_members = [distributor]
        dropped: list[int] = []
        recipients = [
            m
            for m in self.channel.members
            if m != distributor and m not in excluded
        ]
        for epoch_index, member in enumerate(recipients):
            pair_key = pair_keys.get(frozenset((distributor, member)))
            if pair_key is None:
                # Never established in Part 1: the distributor has no
                # private channel to this member, so it cannot receive
                # the fresh key.  Accounted for in ``dropped``.
                dropped.append(member)
                continue
            hopper = ChannelHopper(
                pair_key,
                self.network.channels,
                label=("rekey", generation, distributor, member),
            )
            cipher = AuthenticatedCipher(pair_key)
            # Key-derived hops, deterministic ciphertexts: compile the
            # member's whole epoch and submit it in one batch.
            meta = RoundMeta(
                phase="rekey",
                extra={"generation": generation, "member": member},
            )
            epoch: list[CompiledRound] = []
            hops: list[int] = []
            for r in range(epoch_rounds):
                channel = hopper.channel(r)
                sealed = cipher.encrypt(
                    new_key,
                    nonce=nonce_from_counter(generation, epoch_index, r),
                    associated=b"rekey",
                )
                epoch.append(
                    CompiledRound(
                        transmits={
                            distributor: Transmit(
                                channel,
                                Message(
                                    kind=REKEY_KIND,
                                    sender=distributor,
                                    payload=(generation, sealed.as_tuple()),
                                ),
                            )
                        },
                        listens={channel: (member,)},
                        meta=meta,
                        listen_count=1,
                    )
                )
                hops.append(channel)
            heard = self.network.execute_schedule(RoundSchedule(epoch))

            received = False
            for channel, per_round in zip(hops, heard):
                frame = per_round.get(channel)
                if received or frame is None or frame.kind != REKEY_KIND:
                    continue
                try:
                    frame_gen, sealed_tuple = frame.payload
                    if frame_gen != generation:
                        # Stale generation: a replayed rekey frame from
                        # an earlier epoch must never vouch for the
                        # current one, whatever it decrypts to.
                        continue
                    opened = cipher.decrypt(
                        Ciphertext.from_tuple(sealed_tuple),
                        associated=b"rekey",
                    )
                except (CryptoError, TypeError, ValueError):
                    continue
                if opened == new_key:
                    received = True
            if received:
                new_members.append(member)
            else:
                # The adversary won every round of this member's epoch:
                # it survives the compromise but missed the new key.
                dropped.append(member)

        self.members = sorted(new_members)
        self.channel = LongLivedChannel(
            self.network, new_key, self.members, self.rng
        )
        for m in self.members:
            self.stats.inboxes.setdefault(m, [])
        report = RekeyReport(
            generation=generation,
            distributor=distributor,
            members=tuple(self.members),
            excluded=tuple(sorted(excluded)),
            rounds=self.network.metrics.rounds - start,
            dropped=tuple(sorted(dropped)),
        )
        return report
