"""An application-facing session over the long-lived channel (Section 7).

:class:`SecureSession` wires the whole paper together: it establishes the
group key with :mod:`repro.groupkey` (one-time ``Θ(n t^3 log n)``-round
setup), opens a :class:`~repro.service.emulated_channel.LongLivedChannel`,
and offers a queued send/broadcast API in which each emulated round carries
one message — the simple collision-free schedule the emulated broadcast
channel needs.

Any pair can communicate whenever it chooses (unlike single-shot f-AME),
each exchange costing ``Θ(t log n)`` real rounds.

The session also supports **dynamic re-keying** (the introduction's
motivation: "it might be useful to be able to re-key dynamically, for
example, after the detection of a compromised device"): a surviving
complete leader distributes a fresh group key over the Part 1 pairwise
keys, skipping the compromised members, who can neither receive their
(unscheduled) epoch nor decrypt anyone else's.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..crypto.dh import DEFAULT_GROUP, DhGroup
from ..crypto.hopping import ChannelHopper
from ..crypto.stream import AuthenticatedCipher, Ciphertext, nonce_from_counter
from ..errors import ConfigurationError, CryptoError
from ..groupkey.protocol import GroupKeyProtocol
from ..groupkey.result import GroupKeyResult
from ..radio.actions import Transmit
from ..radio.messages import Message
from ..radio.network import (
    CompiledRound,
    RadioNetwork,
    RoundMeta,
    RoundSchedule,
)
from ..rng import RngRegistry
from .emulated_channel import Delivery, LongLivedChannel

REKEY_KIND = "rekey-frame"


@dataclass(frozen=True)
class RekeyReport:
    """Outcome of one re-keying operation."""

    generation: int
    distributor: int
    members: tuple[int, ...]
    excluded: tuple[int, ...]
    rounds: int


@dataclass
class SessionStats:
    """Accounting for one session."""

    setup_rounds: int = 0
    emulated_rounds: int = 0
    real_rounds: int = 0
    sent: int = 0
    delivered: int = 0
    undelivered: int = 0
    inboxes: dict[int, list[Delivery]] = field(default_factory=dict)


class SecureSession:
    """Setup-once, communicate-forever secure group communication.

    Parameters
    ----------
    network:
        The radio network.
    rng:
        Honest randomness registry.
    group:
        Diffie-Hellman group for the setup phase.

    Usage
    -----
    >>> session = SecureSession(network, rng)      # doctest: +SKIP
    ...                                            # setup: group key
    >>> session.send(3, b"hello")                  # enqueue
    >>> session.flush()                            # one emulated round each
    """

    def __init__(
        self,
        network: RadioNetwork,
        rng: RngRegistry | None = None,
        *,
        group: DhGroup = DEFAULT_GROUP,
    ) -> None:
        self.network = network
        self.rng = rng or RngRegistry(seed=0)
        start = network.metrics.rounds
        self.setup: GroupKeyResult = GroupKeyProtocol(
            network, self.rng, group=group
        ).run()
        key = self.setup.group_key
        if key is None:
            raise ConfigurationError(
                "setup failed: no leader completed the pairwise phase"
            )
        self.members = self.setup.holders()
        self.channel = LongLivedChannel(network, key, self.members, self.rng)
        self.stats = SessionStats(
            setup_rounds=network.metrics.rounds - start,
            inboxes={m: [] for m in self.members},
        )
        self._queue: deque[tuple[int, bytes]] = deque()
        self._generation = 0

    # ------------------------------------------------------------------

    def send(self, sender: int, payload: bytes) -> None:
        """Enqueue a broadcast from ``sender`` (one emulated round each)."""
        if sender not in self.channel.members:
            raise ConfigurationError(f"node {sender} is not a member")
        if not isinstance(payload, (bytes, bytearray)):
            raise ConfigurationError("payload must be bytes")
        self._queue.append((sender, bytes(payload)))
        self.stats.sent += 1

    def pending(self) -> int:
        """Messages waiting to be flushed."""
        return len(self._queue)

    def flush(self, max_rounds: int | None = None) -> list[Delivery]:
        """Drain the queue, one message per emulated round.

        Returns the deliveries observed by receivers (deduplicated per
        emulated round: one entry per receiving member).
        """
        out: list[Delivery] = []
        start = self.network.metrics.rounds
        while self._queue:
            if max_rounds is not None and self.stats.emulated_rounds >= max_rounds:
                break
            sender, payload = self._queue.popleft()
            deliveries = self.channel.run_round({sender: payload})
            self.stats.emulated_rounds += 1
            got_any = False
            for member, delivery in deliveries.items():
                if delivery is not None:
                    got_any = True
                    self.stats.inboxes[member].append(delivery)
                    out.append(delivery)
            if got_any:
                self.stats.delivered += 1
            else:
                self.stats.undelivered += 1
        self.stats.real_rounds += self.network.metrics.rounds - start
        return out

    def idle_round(self) -> None:
        """Run one silent emulated round (keeps the hop pattern advancing)."""
        self.channel.run_round({})
        self.stats.emulated_rounds += 1

    def inbox(self, member: int) -> list[Delivery]:
        """All authenticated deliveries ``member`` has received."""
        if member not in self.stats.inboxes:
            raise ConfigurationError(f"node {member} is not a member")
        return list(self.stats.inboxes[member])

    # ------------------------------------------------------------------
    # Dynamic re-keying.
    # ------------------------------------------------------------------

    def rekey(self, compromised: Iterable[int]) -> RekeyReport:
        """Exclude ``compromised`` members and switch to a fresh group key.

        The smallest non-compromised complete leader draws a fresh key and
        sends it to every remaining member over that pair's Part 1
        pairwise key — one ``Θ(t log n)`` hopping epoch per member, so the
        whole operation costs ``Θ(n t^2 log n)`` rounds (a Part 2 rerun,
        much cheaper than a full setup).  Compromised members have no
        epoch scheduled and hold none of the other pairs' keys, so the new
        group key is information they never see; the old channel is torn
        down immediately.
        """
        excluded = frozenset(int(v) for v in compromised)
        pair_keys = self.setup.pairwise_keys
        candidates = [
            v for v in self.setup.completed_leaders if v not in excluded
        ]
        if not candidates:
            raise ConfigurationError(
                "no non-compromised complete leader available to re-key"
            )
        distributor = min(candidates)
        self._generation += 1
        generation = self._generation
        new_key = bytes(
            self.rng.stream("rekey", generation).randbytes(32)
        )

        start = self.network.metrics.rounds
        epoch_rounds = self.network.params.dissemination_epoch_rounds(
            self.network.n, self.network.t
        )
        new_members = [distributor]
        recipients = [
            m
            for m in self.channel.members
            if m != distributor and m not in excluded
        ]
        for epoch_index, member in enumerate(recipients):
            pair_key = pair_keys.get(frozenset((distributor, member)))
            if pair_key is None:
                continue  # never established in Part 1: stays excluded
            hopper = ChannelHopper(
                pair_key,
                self.network.channels,
                label=("rekey", generation, distributor, member),
            )
            cipher = AuthenticatedCipher(pair_key)
            # Key-derived hops, deterministic ciphertexts: compile the
            # member's whole epoch and submit it in one batch.
            meta = RoundMeta(
                phase="rekey",
                extra={"generation": generation, "member": member},
            )
            epoch: list[CompiledRound] = []
            hops: list[int] = []
            for r in range(epoch_rounds):
                channel = hopper.channel(r)
                sealed = cipher.encrypt(
                    new_key,
                    nonce=nonce_from_counter(generation, epoch_index, r),
                    associated=b"rekey",
                )
                epoch.append(
                    CompiledRound(
                        transmits={
                            distributor: Transmit(
                                channel,
                                Message(
                                    kind=REKEY_KIND,
                                    sender=distributor,
                                    payload=(generation, sealed.as_tuple()),
                                ),
                            )
                        },
                        listens={channel: (member,)},
                        meta=meta,
                        listen_count=1,
                    )
                )
                hops.append(channel)
            heard = self.network.execute_schedule(RoundSchedule(epoch))

            received = False
            for channel, per_round in zip(hops, heard):
                frame = per_round.get(channel)
                if received or frame is None or frame.kind != REKEY_KIND:
                    continue
                try:
                    _gen, sealed_tuple = frame.payload
                    opened = cipher.decrypt(
                        Ciphertext.from_tuple(sealed_tuple),
                        associated=b"rekey",
                    )
                except (CryptoError, TypeError, ValueError):
                    continue
                if opened == new_key:
                    received = True
            if received:
                new_members.append(member)

        self.members = sorted(new_members)
        self.channel = LongLivedChannel(
            self.network, new_key, self.members, self.rng
        )
        for m in self.members:
            self.stats.inboxes.setdefault(m, [])
        report = RekeyReport(
            generation=generation,
            distributor=distributor,
            members=tuple(self.members),
            excluded=tuple(sorted(excluded)),
            rounds=self.network.metrics.rounds - start,
        )
        return report
