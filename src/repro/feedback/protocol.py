"""Figure 1: the communication-feedback routine, executed on the radio net.

For each feedback slot ``r`` (reporting on one transmission-round channel),
the routine runs ``Θ(C/(C-t) · log n)`` repetitions.  In each repetition:

* every witness of slot ``r`` transmits on the feedback channel given by its
  rank — ``<false>`` when its flag is false, ``<true, r>`` when true.  All
  feedback channels are therefore occupied by honest broadcasters every
  repetition, which is what makes spoofed ``<true, r>`` frames impossible
  (they can only collide — the parenthetical in Lemma 5's proof);
* every other participant listens on a uniformly random feedback channel and
  records any ``<true, r>`` report it hears.

A node adds ``r`` to its output set ``D`` iff it is a witness with a true
flag, or it heard ``<true, r>``.  Lemma 5: with high probability all
participants return identical ``D`` equal to the true flag set.

Execution strategy
------------------
The repetition loop is *oblivious*: who transmits where is fixed by the
witness ranks, and each listener's hop sequence is private randomness that
depends on nothing observed during the phase.  The default path therefore
**compiles** the whole ``slots × repetitions`` loop into one
:class:`~repro.radio.network.RoundSchedule` — per-slot static transmitter
templates plus per-round listener groups drawn from each listener's RNG
stream up front — and submits it through
:meth:`~repro.radio.network.RadioNetwork.execute_schedule`, folding the
per-channel results back into the output sets.  ``compiled=False`` replays
the historical one-``execute_round``-per-repetition loop; seeded runs of
the two paths are byte-identical (same RNG stream consumption, same
metrics, same traces), which `tests/test_feedback_pipeline.py` enforces.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import ConfigurationError
from ..radio.actions import Action, Listen, Transmit
from ..radio.messages import Message
from ..radio.network import CompiledRound, RadioNetwork, RoundMeta, RoundSchedule
from ..rng import RngRegistry, draw_uniform_indices
from .witness import WitnessAssignment

FEEDBACK_KIND = "feedback"
"""Frame kind used by feedback broadcasts."""


def feedback_true(sender: int, slot: int) -> Message:
    """The ``<true, r>`` frame of Figure 1 line 16."""
    return Message(kind=FEEDBACK_KIND, sender=sender, payload=("true", slot))


def feedback_false(sender: int, slot: int) -> Message:
    """The ``<false>`` frame of Figure 1 line 11 (slot kept for tracing)."""
    return Message(kind=FEEDBACK_KIND, sender=sender, payload=("false", slot))


def run_feedback(
    network: RadioNetwork,
    assignment: WitnessAssignment,
    flags: Mapping[int, bool],
    participants: Sequence[int],
    rng: RngRegistry,
    *,
    repetitions: int | None = None,
    phase: str = "feedback",
    rng_namespace: object = "feedback",
    compiled: bool = True,
) -> dict[int, set[int]]:
    """Execute one communication-feedback invocation.

    Parameters
    ----------
    network:
        The radio network to run on.
    assignment:
        Witness sets per slot and the feedback channel list.
    flags:
        Flag value per witness node.  Figure 1 assumes all witnesses of a
        slot hold the same flag; we validate that, since a mismatch means
        the caller's transmission round already violated the model.
    participants:
        Every node taking part (witnesses and listeners alike).  Witnesses
        of slots other than the active one listen like everyone else.
    rng:
        Registry supplying each listener's private channel-hopping stream.
    repetitions:
        Inner-loop count; defaults to the
        :meth:`~repro.params.ProtocolParameters.feedback_repetitions` of the
        network's parameters.
    phase:
        Phase label stamped on round metadata (adversaries can see it).
    rng_namespace:
        Disambiguates listener streams across multiple invocations.
    compiled:
        When ``True`` (default), compile the whole oblivious loop into one
        :class:`~repro.radio.network.RoundSchedule` and execute it in bulk;
        when ``False``, replay the historical per-round loop.  Both paths
        are byte-identical on seeded runs.

    Returns
    -------
    dict mapping every participant to its output set ``D`` (slot indices).
    """
    channels = assignment.channels
    participant_set = set(participants)
    for witness_set in assignment.sets:
        flag_values = {flags[w] for w in witness_set if w in flags}
        if len(flag_values) > 1:
            raise ConfigurationError(
                "witnesses of one slot disagree on their flag; the "
                "transmission round upstream was inconsistent"
            )
        missing = [w for w in witness_set if w not in flags]
        if missing:
            raise ConfigurationError(f"witnesses {missing} have no flag")
        if not set(witness_set) <= participant_set:
            raise ConfigurationError("witness outside participant set")

    if repetitions is None:
        repetitions = network.params.feedback_repetitions(
            network.n, len(channels), network.t
        )

    outputs: dict[int, set[int]] = {node: set() for node in participants}
    if compiled:
        _run_feedback_compiled(
            network,
            assignment,
            flags,
            participants,
            rng,
            repetitions,
            phase,
            rng_namespace,
            outputs,
        )
    else:
        _run_feedback_per_round(
            network,
            assignment,
            flags,
            participants,
            rng,
            repetitions,
            phase,
            rng_namespace,
            outputs,
        )
    return outputs


def _run_feedback_per_round(
    network: RadioNetwork,
    assignment: WitnessAssignment,
    flags: Mapping[int, bool],
    participants: Sequence[int],
    rng: RngRegistry,
    repetitions: int,
    phase: str,
    rng_namespace: object,
    outputs: dict[int, set[int]],
) -> None:
    """The historical reference loop: one ``execute_round`` per repetition.

    Kept verbatim as the equivalence oracle for the compiled pipeline (and
    for callers that interleave feedback with non-oblivious behaviour).
    """
    channels = assignment.channels
    for slot in range(assignment.slots):
        witnesses = assignment.witnesses_of(slot)
        witness_set = set(witnesses)
        slot_flag = flags[witnesses[0]]
        if slot_flag:
            for w in witnesses:
                outputs[w].add(slot)  # Figure 1 line 14
        for _rep in range(repetitions):
            actions: dict[int, Action] = {}
            for node in participants:
                if node in witness_set:
                    # Rank-map reuse: the precomputed per-slot map replaces
                    # the historical witnesses.index scan (same value, no
                    # O(|witnesses|) lookup in the inner loop).
                    channel = channels[assignment.rank_of(slot, node)]
                    frame = (
                        feedback_true(node, slot)
                        if slot_flag
                        else feedback_false(node, slot)
                    )
                    actions[node] = Transmit(channel, frame)
                else:
                    stream = rng.stream(rng_namespace, "listen", node)
                    actions[node] = Listen(stream.choice(channels))
            results = network.execute_round(
                actions, RoundMeta(phase=phase, extra={"slot": slot})
            )
            for node, received in results.items():
                if (
                    received is not None
                    and received.kind == FEEDBACK_KIND
                    and received.payload == ("true", slot)
                ):
                    outputs[node].add(slot)


def _run_feedback_compiled(
    network: RadioNetwork,
    assignment: WitnessAssignment,
    flags: Mapping[int, bool],
    participants: Sequence[int],
    rng: RngRegistry,
    repetitions: int,
    phase: str,
    rng_namespace: object,
    outputs: dict[int, set[int]],
) -> None:
    """Compile ``slots × repetitions`` into one schedule and run it in bulk.

    Per slot the witness broadcasts form a *static transmitter template*
    (rank map precomputed once — no ``witnesses.index`` in any inner loop)
    shared by every repetition's :class:`CompiledRound`; each listener's
    full hop sequence is drawn from its private stream up front, consuming
    the streams in exactly the order the per-round path would (slot-major,
    then repetition), so seeded executions coincide bit for bit.
    """
    channels = assignment.channels
    listener_streams = {
        node: rng.stream(rng_namespace, "listen", node) for node in participants
    }

    compiled_rounds: list[CompiledRound] = []
    # fanouts[i] = (slot, listener groups) for compiled_rounds[i]; the
    # groups let the result fold touch only channels that decoded a frame.
    fanouts: list[tuple[int, Mapping[int, list[int]]]] = []
    for slot in range(assignment.slots):
        witnesses = assignment.witnesses_of(slot)
        witness_set = set(witnesses)
        slot_flag = flags[witnesses[0]]
        if slot_flag:
            for w in witnesses:
                outputs[w].add(slot)  # Figure 1 line 14
        frame_of = feedback_true if slot_flag else feedback_false
        template = {
            w: Transmit(channels[rank], frame_of(w, slot))
            for rank, w in enumerate(witnesses)
        }
        meta = RoundMeta(phase=phase, extra={"slot": slot})
        # Draw each listener's whole hop sequence for this slot up front
        # (per-stream consumption order matches the per-round path:
        # slot-major, then repetition — see draw_uniform_indices for the
        # choice-compatibility invariant), then group listeners per
        # repetition.  Groups are pre-seeded with every feedback channel.
        nchan = len(channels)
        node_hops = [
            (
                node,
                draw_uniform_indices(
                    listener_streams[node], nchan, repetitions
                ),
            )
            for node in participants
            if node not in witness_set
        ]
        listen_count = len(node_hops)
        for rep in range(repetitions):
            by_channel: dict[int, list[int]] = {c: [] for c in channels}
            for node, hops in node_hops:
                by_channel[channels[hops[rep]]].append(node)
            compiled_rounds.append(
                CompiledRound(
                    transmits=template,
                    listens=by_channel,
                    meta=meta,
                    listen_count=listen_count,
                )
            )
            fanouts.append((slot, by_channel))

    heard_per_round = network.execute_schedule(RoundSchedule(compiled_rounds))

    for (slot, by_channel), heard in zip(fanouts, heard_per_round):
        for channel, received in heard.items():
            if received.kind == FEEDBACK_KIND and received.payload == (
                "true",
                slot,
            ):
                for node in by_channel[channel]:
                    outputs[node].add(slot)
