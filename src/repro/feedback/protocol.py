"""Figure 1: the communication-feedback routine, executed on the radio net.

For each feedback slot ``r`` (reporting on one transmission-round channel),
the routine runs ``Θ(C/(C-t) · log n)`` repetitions.  In each repetition:

* every witness of slot ``r`` transmits on the feedback channel given by its
  rank — ``<false>`` when its flag is false, ``<true, r>`` when true.  All
  feedback channels are therefore occupied by honest broadcasters every
  repetition, which is what makes spoofed ``<true, r>`` frames impossible
  (they can only collide — the parenthetical in Lemma 5's proof);
* every other participant listens on a uniformly random feedback channel and
  records any ``<true, r>`` report it hears.

A node adds ``r`` to its output set ``D`` iff it is a witness with a true
flag, or it heard ``<true, r>``.  Lemma 5: with high probability all
participants return identical ``D`` equal to the true flag set.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import ConfigurationError
from ..radio.actions import Action, Listen, Transmit
from ..radio.messages import Message
from ..radio.network import RadioNetwork, RoundMeta
from ..rng import RngRegistry
from .witness import WitnessAssignment

FEEDBACK_KIND = "feedback"
"""Frame kind used by feedback broadcasts."""


def feedback_true(sender: int, slot: int) -> Message:
    """The ``<true, r>`` frame of Figure 1 line 16."""
    return Message(kind=FEEDBACK_KIND, sender=sender, payload=("true", slot))


def feedback_false(sender: int, slot: int) -> Message:
    """The ``<false>`` frame of Figure 1 line 11 (slot kept for tracing)."""
    return Message(kind=FEEDBACK_KIND, sender=sender, payload=("false", slot))


def run_feedback(
    network: RadioNetwork,
    assignment: WitnessAssignment,
    flags: Mapping[int, bool],
    participants: Sequence[int],
    rng: RngRegistry,
    *,
    repetitions: int | None = None,
    phase: str = "feedback",
    rng_namespace: object = "feedback",
) -> dict[int, set[int]]:
    """Execute one communication-feedback invocation.

    Parameters
    ----------
    network:
        The radio network to run on.
    assignment:
        Witness sets per slot and the feedback channel list.
    flags:
        Flag value per witness node.  Figure 1 assumes all witnesses of a
        slot hold the same flag; we validate that, since a mismatch means
        the caller's transmission round already violated the model.
    participants:
        Every node taking part (witnesses and listeners alike).  Witnesses
        of slots other than the active one listen like everyone else.
    rng:
        Registry supplying each listener's private channel-hopping stream.
    repetitions:
        Inner-loop count; defaults to the
        :meth:`~repro.params.ProtocolParameters.feedback_repetitions` of the
        network's parameters.
    phase:
        Phase label stamped on round metadata (adversaries can see it).
    rng_namespace:
        Disambiguates listener streams across multiple invocations.

    Returns
    -------
    dict mapping every participant to its output set ``D`` (slot indices).
    """
    channels = assignment.channels
    participant_set = set(participants)
    for witness_set in assignment.sets:
        flag_values = {flags[w] for w in witness_set if w in flags}
        if len(flag_values) > 1:
            raise ConfigurationError(
                "witnesses of one slot disagree on their flag; the "
                "transmission round upstream was inconsistent"
            )
        missing = [w for w in witness_set if w not in flags]
        if missing:
            raise ConfigurationError(f"witnesses {missing} have no flag")
        if not set(witness_set) <= participant_set:
            raise ConfigurationError("witness outside participant set")

    if repetitions is None:
        repetitions = network.params.feedback_repetitions(
            network.n, len(channels), network.t
        )

    outputs: dict[int, set[int]] = {node: set() for node in participants}

    for slot in range(assignment.slots):
        witnesses = assignment.witnesses_of(slot)
        witness_set = set(witnesses)
        slot_flag = flags[witnesses[0]]
        if slot_flag:
            for w in witnesses:
                outputs[w].add(slot)  # Figure 1 line 14
        for _rep in range(repetitions):
            actions: dict[int, Action] = {}
            for node in participants:
                if node in witness_set:
                    channel = channels[witnesses.index(node)]
                    frame = (
                        feedback_true(node, slot)
                        if slot_flag
                        else feedback_false(node, slot)
                    )
                    actions[node] = Transmit(channel, frame)
                else:
                    stream = rng.stream(rng_namespace, "listen", node)
                    actions[node] = Listen(stream.choice(channels))
            results = network.execute_round(
                actions, RoundMeta(phase=phase, extra={"slot": slot})
            )
            for node, received in results.items():
                if (
                    received is not None
                    and received.kind == FEEDBACK_KIND
                    and received.payload == ("true", slot)
                ):
                    outputs[node].add(slot)
    return outputs
