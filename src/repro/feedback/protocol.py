"""Figure 1: the communication-feedback routine, executed on the radio net.

For each feedback slot ``r`` (reporting on one transmission-round channel),
the routine runs ``Θ(C/(C-t) · log n)`` repetitions.  In each repetition:

* every witness of slot ``r`` transmits on the feedback channel given by its
  rank — ``<false>`` when its flag is false, ``<true, r>`` when true.  All
  feedback channels are therefore occupied by honest broadcasters every
  repetition, which is what makes spoofed ``<true, r>`` frames impossible
  (they can only collide — the parenthetical in Lemma 5's proof);
* every other participant listens on a uniformly random feedback channel and
  records any ``<true, r>`` report it hears.

A node adds ``r`` to its output set ``D`` iff it is a witness with a true
flag, or it heard ``<true, r>``.  Lemma 5: with high probability all
participants return identical ``D`` equal to the true flag set.

Execution strategy
------------------
The repetition loop is *oblivious*: who transmits where is fixed by the
witness ranks, and each listener's hop sequence is private randomness that
depends on nothing observed during the phase.  The default path therefore
**compiles** the whole ``slots × repetitions`` loop into one
:class:`~repro.radio.network.RoundSchedule` — per-slot static transmitter
templates plus per-round listener groups drawn from each listener's RNG
stream up front — and submits it through
:meth:`~repro.radio.network.RadioNetwork.execute_schedule`, folding the
per-channel results back into the output sets.  Hop sequences are
materialized in blocks by :class:`~repro.rng.BlockDrawer` (byte-identical
to the per-draw chain — the invariant lives in ``repro.rng``;
``block_draws=False`` replays the per-draw sampler), and the per-round
listener buckets, round metadata, transmitter templates and listener
stream tables come from a :class:`~repro.radio.ScheduleShapeCache` so
long-lived callers reuse schedule *shape* across invocations.
``compiled=False`` replays the historical
one-``execute_round``-per-repetition loop; seeded runs of all paths are
byte-identical (same RNG stream consumption, same metrics, same traces),
which `tests/test_feedback_pipeline.py` enforces.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import ConfigurationError
from ..radio.actions import Action, Listen, Transmit
from ..radio.messages import Message
from ..radio.network import CompiledRound, RadioNetwork, RoundMeta, RoundSchedule
from ..radio.shapes import ScheduleShapeCache
from ..rng import BlockDrawer, RngRegistry, draw_uniform_indices
from .witness import WitnessAssignment

FEEDBACK_KIND = "feedback"
"""Frame kind used by feedback broadcasts."""


def feedback_true(sender: int, slot: int) -> Message:
    """The ``<true, r>`` frame of Figure 1 line 16."""
    return Message(kind=FEEDBACK_KIND, sender=sender, payload=("true", slot))


def feedback_false(sender: int, slot: int) -> Message:
    """The ``<false>`` frame of Figure 1 line 11 (slot kept for tracing)."""
    return Message(kind=FEEDBACK_KIND, sender=sender, payload=("false", slot))


def run_feedback(
    network: RadioNetwork,
    assignment: WitnessAssignment,
    flags: Mapping[int, bool],
    participants: Sequence[int],
    rng: RngRegistry,
    *,
    repetitions: int | None = None,
    phase: str = "feedback",
    rng_namespace: object = "feedback",
    compiled: bool = True,
    block_draws: bool = True,
    shape_cache: ScheduleShapeCache | None = None,
) -> dict[int, set[int]]:
    """Execute one communication-feedback invocation.

    Parameters
    ----------
    network:
        The radio network to run on.
    assignment:
        Witness sets per slot and the feedback channel list.
    flags:
        Flag value per witness node.  Figure 1 assumes all witnesses of a
        slot hold the same flag; we validate that, since a mismatch means
        the caller's transmission round already violated the model.
    participants:
        Every node taking part (witnesses and listeners alike).  Witnesses
        of slots other than the active one listen like everyone else.
    rng:
        Registry supplying each listener's private channel-hopping stream.
    repetitions:
        Inner-loop count; defaults to the
        :meth:`~repro.params.ProtocolParameters.feedback_repetitions` of the
        network's parameters.
    phase:
        Phase label stamped on round metadata (adversaries can see it).
    rng_namespace:
        Disambiguates listener streams across multiple invocations.
    compiled:
        When ``True`` (default), compile the whole oblivious loop into one
        :class:`~repro.radio.network.RoundSchedule` and execute it in bulk;
        when ``False``, replay the historical per-round loop.  Both paths
        are byte-identical on seeded runs.
    block_draws:
        When ``True`` (default), the compiled path materializes each
        listener's hop sequence with the batched
        :class:`~repro.rng.BlockDrawer`; ``False`` replays the per-draw
        :func:`~repro.rng.draw_uniform_indices` chain (the reference
        sampler).  Byte-identical either way — the escape hatch exists so
        the equivalence gauntlets can exercise both samplers in situ.
        Ignored when ``compiled=False``.
    shape_cache:
        Optional :class:`~repro.radio.shapes.ScheduleShapeCache` shared
        across invocations with the same geometry (templates, round
        metadata, listener buckets and stream tables are then reused
        instead of rebuilt).  Defaults to a fresh per-invocation cache;
        observable behaviour is identical either way.

    Returns
    -------
    dict mapping every participant to its output set ``D`` (slot indices).
    """
    channels = assignment.channels
    participant_set = set(participants)
    for witness_set in assignment.sets:
        flag_values = {flags[w] for w in witness_set if w in flags}
        if len(flag_values) > 1:
            raise ConfigurationError(
                "witnesses of one slot disagree on their flag; the "
                "transmission round upstream was inconsistent"
            )
        missing = [w for w in witness_set if w not in flags]
        if missing:
            raise ConfigurationError(f"witnesses {missing} have no flag")
        if not set(witness_set) <= participant_set:
            raise ConfigurationError("witness outside participant set")

    if repetitions is None:
        repetitions = network.params.feedback_repetitions(
            network.n, len(channels), network.t
        )

    outputs: dict[int, set[int]] = {node: set() for node in participants}
    if compiled:
        _run_feedback_compiled(
            network,
            assignment,
            flags,
            participants,
            rng,
            repetitions,
            phase,
            rng_namespace,
            outputs,
            shape_cache if shape_cache is not None else ScheduleShapeCache(),
            block_draws,
        )
    else:
        _run_feedback_per_round(
            network,
            assignment,
            flags,
            participants,
            rng,
            repetitions,
            phase,
            rng_namespace,
            outputs,
        )
    return outputs


def _run_feedback_per_round(
    network: RadioNetwork,
    assignment: WitnessAssignment,
    flags: Mapping[int, bool],
    participants: Sequence[int],
    rng: RngRegistry,
    repetitions: int,
    phase: str,
    rng_namespace: object,
    outputs: dict[int, set[int]],
) -> None:
    """The historical reference loop: one ``execute_round`` per repetition.

    Kept verbatim as the equivalence oracle for the compiled pipeline (and
    for callers that interleave feedback with non-oblivious behaviour).
    """
    channels = assignment.channels
    for slot in range(assignment.slots):
        witnesses = assignment.witnesses_of(slot)
        witness_set = set(witnesses)
        slot_flag = flags[witnesses[0]]
        if slot_flag:
            for w in witnesses:
                outputs[w].add(slot)  # Figure 1 line 14
        for _rep in range(repetitions):
            actions: dict[int, Action] = {}
            for node in participants:
                if node in witness_set:
                    # Rank-map reuse: the precomputed per-slot map replaces
                    # the historical witnesses.index scan (same value, no
                    # O(|witnesses|) lookup in the inner loop).
                    channel = channels[assignment.rank_of(slot, node)]
                    frame = (
                        feedback_true(node, slot)
                        if slot_flag
                        else feedback_false(node, slot)
                    )
                    actions[node] = Transmit(channel, frame)
                else:
                    stream = rng.stream(rng_namespace, "listen", node)
                    actions[node] = Listen(stream.choice(channels))
            results = network.execute_round(
                actions, RoundMeta(phase=phase, extra={"slot": slot})
            )
            for node, received in results.items():
                if (
                    received is not None
                    and received.kind == FEEDBACK_KIND
                    and received.payload == ("true", slot)
                ):
                    outputs[node].add(slot)


def _run_feedback_compiled(
    network: RadioNetwork,
    assignment: WitnessAssignment,
    flags: Mapping[int, bool],
    participants: Sequence[int],
    rng: RngRegistry,
    repetitions: int,
    phase: str,
    rng_namespace: object,
    outputs: dict[int, set[int]],
    shapes: ScheduleShapeCache,
    block_draws: bool,
) -> None:
    """Compile ``slots × repetitions`` into one schedule and run it in bulk.

    Per slot the witness broadcasts form a *static transmitter template*
    (rank map precomputed once — no ``witnesses.index`` in any inner loop)
    shared by every repetition's :class:`CompiledRound`; each listener's
    whole hop sequence is materialized from its private stream up front
    with the batched :class:`~repro.rng.BlockDrawer`, consuming the
    streams in exactly the order the per-round path would (slot-major,
    then repetition), so seeded executions coincide bit for bit.  Shape —
    templates, metadata, the per-round listener buckets the hop matrices
    transpose into, and the stream table — comes from ``shapes`` and is
    reused in place across invocations when the caller shares a cache.
    """
    channels = assignment.channels
    nchan = len(channels)
    streams = shapes.streams(rng, rng_namespace, "listen", participants)
    if block_draws:
        draw = BlockDrawer(nchan).draw
    else:
        draw = lambda stream, count: draw_uniform_indices(  # noqa: E731
            stream, nchan, count
        )

    buckets = shapes.buckets(channels, assignment.slots * repetitions)
    rows = buckets.rows
    listens = buckets.listens
    compiled_rounds: list[CompiledRound] = []
    # fanouts[i] = (slot, listener groups) for compiled_rounds[i]; the
    # groups let the result fold touch only channels that decoded a frame.
    fanouts: list[tuple[int, Mapping[int, list[int]]]] = []
    base = 0
    for slot in range(assignment.slots):
        witnesses = assignment.witnesses_of(slot)
        witness_set = set(witnesses)
        slot_flag = flags[witnesses[0]]
        if slot_flag:
            for w in witnesses:
                outputs[w].add(slot)  # Figure 1 line 14
        frame_of = feedback_true if slot_flag else feedback_false
        template = shapes.memo(
            ("feedback-template", channels, slot, witnesses, slot_flag),
            lambda: {
                w: Transmit(channels[rank], frame_of(w, slot))
                for rank, w in enumerate(witnesses)
            },
        )
        meta = shapes.meta(phase, slot=slot)
        # Materialize each listener's hop sequence for this slot and
        # transpose it straight into the slot's pre-allocated buckets
        # (hop values are channel *positions*, so the fill indexes lists
        # instead of hashing channel ids).  Every bucket dict is
        # pre-seeded with every feedback channel, in channel order.
        slot_rows = rows[base : base + repetitions]
        listen_count = 0
        for node, stream in zip(participants, streams):
            if node in witness_set:
                continue
            for row, hop in zip(slot_rows, draw(stream, repetitions)):
                row[hop].append(node)
            listen_count += 1
        for i in range(base, base + repetitions):
            by_channel = listens[i]
            compiled_rounds.append(
                CompiledRound(
                    transmits=template,
                    listens=by_channel,
                    meta=meta,
                    listen_count=listen_count,
                )
            )
            fanouts.append((slot, by_channel))
        base += repetitions

    heard_per_round = network.execute_schedule(RoundSchedule(compiled_rounds))

    for (slot, by_channel), heard in zip(fanouts, heard_per_round):
        for channel, received in heard.items():
            if received.kind == FEEDBACK_KIND and received.payload == (
                "true",
                slot,
            ):
                for node in by_channel[channel]:
                    outputs[node].add(slot)
