"""The communication-feedback routine (Section 5.3, Figure 1).

After a scheduled transmission round, all nodes must agree on *which channels
were disrupted* — that agreement is what lets every node simulate the same
referee response and keep identical game states (Invariant 1 of Theorem 6).

:func:`run_feedback` implements Figure 1 verbatim: for each feedback slot a
dedicated witness set occupies **every** feedback channel each repetition
(so the adversary can never spoof a ``<true, r>`` frame — it can only
collide), while all other nodes hop randomly and collect reports.

:func:`run_parallel_feedback` implements the Section 5.5 parallel-prefix
merge used when ``C >= 2t^2``, reducing a full invocation to
``O(log^2 n)`` rounds.
"""

from .witness import WitnessAssignment, rank
from .protocol import run_feedback
from .parallel import run_parallel_feedback

__all__ = [
    "WitnessAssignment",
    "rank",
    "run_feedback",
    "run_parallel_feedback",
]
