"""The communication-feedback routine (Section 5.3, Figure 1).

After a scheduled transmission round, all nodes must agree on *which channels
were disrupted* — that agreement is what lets every node simulate the same
referee response and keep identical game states (Invariant 1 of Theorem 6).

:func:`run_feedback` implements Figure 1 verbatim: for each feedback slot a
dedicated witness set occupies **every** feedback channel each repetition
(so the adversary can never spoof a ``<true, r>`` frame — it can only
collide), while all other nodes hop randomly and collect reports.

:func:`run_parallel_feedback` implements the Section 5.5 parallel-prefix
merge used when ``C >= 2t^2``, reducing a full invocation to
``O(log^2 n)`` rounds.

Schedule compilation
--------------------
Both routines execute, by default, as **compiled schedules** rather than
per-round loops.  The key observation is that Figure 1's repetition loop is
*oblivious* in the paper's own sense: nothing a node transmits or tunes to
during the phase depends on anything observed during the phase.  The
witness of rank ``i`` occupies feedback channel ``i`` in every repetition
(a static transmitter template), and each listener's channel hops are
private coin flips fixed by its RNG stream — so the entire
``slots × repetitions`` loop (and each level of the parallel merge tree)
can be precomputed into a :class:`~repro.radio.network.RoundSchedule` and
submitted to :meth:`~repro.radio.network.RadioNetwork.execute_schedule`
in one call.  The engine then settles listeners *lazily*, per channel
group: a silent or collided channel costs no per-listener work at all.

Lemma 5 fidelity: compilation changes no observable of the execution.
The adversary is still consulted every round with the same view (public
metadata plus the trace of completed rounds — the one-round observation
delay is preserved because compiled rounds resolve strictly in sequence),
honest randomness is drawn from the same streams in the same per-stream
order, and per-round resolution follows the identical single-transmitter
decode rule.  Every probabilistic event in Lemma 5's Chernoff argument —
"listener hears the active slot's witness in one repetition with
probability ``>= (C-t)/C``" — therefore has exactly the same distribution,
and seeded runs of the compiled and per-round paths are byte-identical
(enforced by ``tests/test_feedback_pipeline.py``).

Wire encoding
-------------
The parallel merge additionally ships its knowledge frames, by default, in
the digest/delta encoding of :class:`~repro.radio.messages.DeltaFrame`
(``delta_frames=False`` restores the historical full-frame payloads);
``tests/test_feedback_delta.py`` is the differential gauntlet proving the
two encodings indistinguishable — identical ``D`` maps, metrics, and
semantically identical traces — under the whole adversary gallery.
"""

from .witness import WitnessAssignment, rank
from .protocol import run_feedback
from .parallel import DeltaApplyState, run_parallel_feedback

__all__ = [
    "DeltaApplyState",
    "WitnessAssignment",
    "rank",
    "run_feedback",
    "run_parallel_feedback",
]
