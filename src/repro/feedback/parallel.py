"""Parallel-prefix feedback merging for the ``C >= 2t^2`` regime (Section 5.5).

The serial routine of Figure 1 handles one slot at a time; with many channels
the paper instead merges feedback *in parallel*: witness groups pair up, each
pair gets a dedicated channel block, the two groups exchange their knowledge
with a short randomized hop phase — all pairs simultaneously, since the
blocks are channel-disjoint — and the merged groups recurse.  The tree has
depth ``O(log C')`` and each level costs ``O(log n)`` rounds, for
``O(log^2 n)`` total.  A final dissemination stage broadcasts the fully
merged flag set to every participant.

Reconstruction note (documented in DESIGN.md): the paper assigns each pair
"a unique set of t channels", but a ``t``-channel block can be fully jammed
by the budget-``t`` adversary, deterministically stalling that pair.  We
assign ``2t``-channel blocks instead — the capacity ``C >= 2t^2`` admits
``C'/2 = C/(2t) >= t`` simultaneous pairs needing ``C/(2t) * 2t = C``
channels, which exactly fits — so every listener retains success probability
``>= 1/2`` per round no matter how the adversary concentrates its budget,
and the ``O(log^2 n)`` bound survives.  Each witness group must therefore
hold at least ``2t`` members (one honest broadcaster per block channel,
which is what keeps spoofing impossible).

Wire format
-----------
Knowledge frames come in two encodings:

* the historical **full frame** (``MERGE_KIND``): the whole ``slot -> flag``
  map, re-applied by every listener on every decode;
* the default **digest/delta frame**
  (:class:`~repro.radio.messages.DeltaFrame`, kind
  :data:`~repro.radio.messages.DELTA_KIND`, mirroring the Section 5.6
  digest pipeline): a digest of the frame's slot coverage plus only the
  true-flag slots — the only entries that can ever enter an output set
  ``D``.  Receivers keep per-listener applied-digest state
  (:class:`DeltaApplyState`): a frame whose digest was already applied is
  skipped in O(1), a fresh frame is verified against its digest and its
  delta applied in place, and a digest mismatch falls back to the frame's
  embedded full-frame items (the resync escape hatch) or drops the frame.
  ``delta_frames=False`` keeps the full-frame reference path; seeded runs
  of the two encodings produce identical ``D`` maps, radio metrics (bar
  the payload-size counter the delta shrinks), and semantically identical
  traces under every adversary — ``tests/test_feedback_delta.py`` is the
  differential gauntlet enforcing that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..errors import ConfigurationError
from ..radio.actions import Action, Listen, Transmit
from ..radio.messages import DELTA_KIND, DeltaFrame, Message
from ..radio.network import CompiledRound, RadioNetwork, RoundMeta, RoundSchedule
from ..radio.shapes import ScheduleShapeCache
from ..rng import BlockDrawer, RngRegistry, draw_uniform_indices

MERGE_KIND = "feedback-merge"

_UNRESOLVED = object()  # sentinel distinguishing "not seen" from "invalid"


@dataclass
class _Group:
    """A witness group in the merge tree with its accumulated knowledge.

    ``true_slots`` and ``digest`` are the delta-encoding view of
    ``knowledge``: the true-flag slots in ascending order (the merge tree
    pairs adjacent groups, so concatenation preserves order) and the
    incremental slot-set digest over them.  Both are maintained in O(1)
    per merge via :func:`~repro.fame.digests.combine_digests`; full-frame
    runs leave them empty.
    """

    members: tuple[int, ...]
    knowledge: dict[int, bool]  # slot -> flag
    true_slots: tuple[int, ...] = ()
    digest: bytes = b""


class DeltaApplyState:
    """Receiver-side bookkeeping for digest/delta knowledge frames.

    One instance lives for one :func:`run_parallel_feedback` invocation and
    tracks, per listener, which frame digests have already been applied —
    the *applied-epoch* set that turns the O(frame) per-decode
    ``dict.update`` of the full-frame encoding into an O(1) skip after the
    first application.  Frame verification (hashing the delta and checking
    it against the frame's digest) is cached per frame value, so it happens
    once per transfer, not once per listener or per repetition.

    Counters (all per-invocation):

    ``applications``
        First-time applications of a frame to a listener's knowledge.
    ``skips``
        O(1) already-applied short-circuits.
    ``digest_mismatches``
        Distinct frames whose delta failed digest verification.
    ``resyncs``
        Mismatched frames recovered through their embedded full-frame
        payload (the escape hatch); a mismatch without a resync payload
        drops the frame.
    """

    def __init__(self, hash1: Callable[..., bytes] | None = None) -> None:
        from ..fame.digests import slot_set_digest

        self._digest = lambda slots: slot_set_digest(slots, hash1=hash1)
        # One state serves one invocation: leaf/merge digests are
        # deterministic functions of the slot layout, so a reused state
        # would silently skip a second run's frames as already applied.
        # run_parallel_feedback claims the state via _claim().
        self._claimed = False
        self.applied: dict[int, set] = {}
        # Verification cache keyed by frame identity: frames are shared
        # objects (one per transfer, referenced by the live schedule), so
        # the id lookup avoids rehashing the frame's slot tuple on every
        # decode; the frame itself is kept in the value to pin the id.
        self._verified: dict[int, tuple[DeltaFrame, tuple | None]] = {}
        self.applications = 0
        self.skips = 0
        self.digest_mismatches = 0
        self.resyncs = 0

    def _claim(self) -> None:
        """Bind this state to one invocation (reuse is a caller bug)."""
        if self._claimed:
            raise ConfigurationError(
                "DeltaApplyState is single-use: a second invocation would "
                "skip frames whose digests the first already applied; "
                "pass a fresh state per run_parallel_feedback call"
            )
        self._claimed = True

    def resolve(self, frame: DeltaFrame) -> tuple | None:
        """Classify a frame once: ``(applied_key, items)`` or ``None``.

        A *verified* delta's applied key is its digest (which verification
        just proved identifies the content) and its items are the cached
        ``{slot: True}`` map; a digest-mismatch frame with a resync payload
        is keyed by the whole frame value — its digest is exactly what
        failed, so two corrupted frames sharing a bogus digest must not
        skip each other — with the embedded full items; an unverifiable
        frame (mismatch, no resync items) classifies as ``None`` and is
        dropped without marking anything applied, so a later well-formed
        frame with the same digest still lands.
        """
        try:
            return self._verified[id(frame)][1]
        except KeyError:
            pass
        if self._digest(frame.true_slots) == frame.digest:
            verdict: tuple | None = (
                frame.digest,
                {slot: True for slot in frame.true_slots},
            )
        else:
            self.digest_mismatches += 1
            if frame.full is not None:
                self.resyncs += 1
                verdict = (frame, dict(frame.full))
            else:
                verdict = None
        self._verified[id(frame)] = (frame, verdict)
        return verdict

    def fold(
        self,
        nodes: Sequence[int],
        frame: DeltaFrame,
        per_node_knowledge: dict[int, dict[int, bool]],
    ) -> None:
        """Fold one decoded frame into every listener of its channel.

        The hot path of the delta encoding: verification and the applied
        key are resolved once per decode, each already-applied listener
        costs one set lookup, and a first-time listener pays a single
        C-level ``dict.update`` of the cached items.
        """
        verdict = self.resolve(frame)
        if verdict is None:
            return
        key, items = verdict
        applied = self.applied
        skips = 0
        applications = 0
        for node in nodes:
            seen = applied.get(node)
            if seen is None:
                seen = applied[node] = set()
            elif key in seen:
                skips += 1
                continue
            per_node_knowledge[node].update(items)
            seen.add(key)
            applications += 1
        self.skips += skips
        self.applications += applications

    def apply(
        self, node: int, frame: DeltaFrame, knowledge: dict[int, bool]
    ) -> bool:
        """Fold ``frame`` into ``node``'s knowledge; True iff it applied.

        Single-listener form of :meth:`fold` (same verification, applied
        keys, and counters), for callers holding a bare knowledge dict.
        """
        before = self.applications
        self.fold((node,), frame, {node: knowledge})
        return self.applications > before


def _merge_frame(sender: int, tag: object, knowledge: Mapping[int, bool]) -> Message:
    """A knowledge broadcast: the full (slot -> flag) map known so far."""
    return Message(
        kind=MERGE_KIND,
        sender=sender,
        payload=(tag, tuple(sorted(knowledge.items()))),
    )


def _delta_payload(group: _Group, tag: object) -> DeltaFrame:
    """The digest/delta encoding of ``group``'s knowledge for one transfer.

    Built once per transfer and shared by every broadcaster of the block
    across every repetition — the full-frame path re-serializes the whole
    map per broadcaster instead.
    """
    return DeltaFrame(tag=tag, digest=group.digest, true_slots=group.true_slots)


def _build_frame(
    sender: int,
    tag: object,
    knowledge: Mapping[int, bool],
    delta: DeltaFrame | None,
) -> Message:
    """One broadcaster's knowledge frame in the transfer's encoding."""
    if delta is not None:
        return Message(kind=DELTA_KIND, sender=sender, payload=delta)
    return _merge_frame(sender, tag, knowledge)


def _fold_channel(
    received: Message,
    tag: object,
    listeners: Sequence[int],
    per_node_knowledge: dict[int, dict[int, bool]],
    delta_state: DeltaApplyState | None,
) -> None:
    """Fold one decoded channel's frame into its listeners' knowledge.

    The one receive path shared by the compiled and per-round loops, for
    both encodings: full frames ``dict.update`` every listener, delta
    frames go through :meth:`DeltaApplyState.apply` (O(1) when already
    applied).
    """
    if delta_state is not None:
        if received.kind != DELTA_KIND:
            return
        frame = received.payload
        if not isinstance(frame, DeltaFrame) or frame.tag != tag:
            return
        delta_state.fold(listeners, frame, per_node_knowledge)
        return
    if received.kind != MERGE_KIND:
        return
    recv_tag, items = received.payload
    if recv_tag != tag:
        return
    merged = dict(items)
    for node in listeners:
        per_node_knowledge[node].update(merged)


def _run_transfer_rounds(
    network: RadioNetwork,
    transfers: Sequence[
        tuple[
            Sequence[int],
            Sequence[int],
            Sequence[int],
            Mapping[int, bool],
            DeltaFrame | None,
        ]
    ],
    per_node_knowledge: dict[int, dict[int, bool]],
    tag: object,
    repetitions: int,
    rng: RngRegistry,
    phase: str,
    rng_namespace: object,
    compiled: bool = True,
    delta_state: DeltaApplyState | None = None,
    block_draws: bool = True,
    shapes: ScheduleShapeCache | None = None,
) -> None:
    """Run ``repetitions`` rounds of simultaneous directed transfers.

    Each transfer is ``(broadcasters, listeners, block_channels, knowledge,
    delta_payload)``; blocks must be channel-disjoint (validated).  Every
    block channel is occupied by an honest broadcaster each round, so
    adversarial frames can only collide, never be decoded.  Listeners hop
    uniformly within their block and merge any knowledge frame with a
    matching tag.  ``delta_payload`` is the prebuilt
    :class:`~repro.radio.messages.DeltaFrame` when the invocation uses the
    delta encoding (``delta_state`` set), ``None`` on the full-frame path.

    The repetition loop is oblivious, so the default path compiles it into
    one :class:`RoundSchedule`: the broadcaster assignment is a static
    template (each knowledge frame built once, not once per repetition —
    the frames of one transfer are identical across rounds), each
    listener's whole block-hop sequence is materialized up front with the
    batched :class:`~repro.rng.BlockDrawer` (``block_draws=False`` replays
    the per-draw reference sampler — byte-identical either way), and
    results fold back per decoded channel.  Round metadata and the
    per-round listener buckets come from ``shapes`` (a fresh ephemeral
    cache when the caller passes none) and are recycled in place across
    invocations with the same geometry.  ``compiled=False`` replays the
    historical per-round loop; all paths are byte-identical on seeded
    runs.
    """
    used_channels: set[int] = set()
    for broadcasters, _, block, _, _ in transfers:
        overlap = used_channels & set(block)
        if overlap:
            raise ConfigurationError(
                f"transfer blocks overlap on channels {sorted(overlap)}"
            )
        used_channels.update(block)
        if len(broadcasters) < len(block):
            raise ConfigurationError(
                f"group of {len(broadcasters)} cannot occupy a "
                f"{len(block)}-channel block"
            )

    if not compiled:
        _transfer_rounds_per_round(
            network,
            transfers,
            per_node_knowledge,
            tag,
            repetitions,
            rng,
            phase,
            rng_namespace,
            delta_state,
        )
        return

    if shapes is None:
        shapes = ScheduleShapeCache()
    meta = shapes.meta(phase, tag=tag)
    buckets = shapes.buckets(tuple(used_channels), repetitions)
    rows = buckets.rows
    channel_pos = buckets.index
    template: dict[int, Transmit] = {}
    listen_total = 0
    for broadcasters, listeners, block, knowledge, delta in transfers:
        for idx, channel in enumerate(block):
            template[broadcasters[idx]] = Transmit(
                channel,
                _build_frame(broadcasters[idx], tag, knowledge, delta),
            )
        # Materialize each listener's whole hop sequence (choice-stream
        # compatible; see the invariant in repro.rng) and transpose it
        # straight into the pre-allocated per-round buckets.  Hops are
        # drawn as indices *within the block* and mapped to bucket
        # positions, so the fill indexes lists instead of hashing
        # channel ids.
        block_list = list(block)
        nblock = len(block_list)
        if block_draws:
            draw = BlockDrawer(nblock).draw
        else:
            draw = lambda stream, count: draw_uniform_indices(  # noqa: E731
                stream, nblock, count
            )
        # One bucket view per round in block order: selecting buckets by
        # raw hop index here keeps the per-hop loop below to a single
        # list index + append, amortized over every listener.
        bucket_rows = [
            [row[channel_pos[c]] for c in block_list] for row in rows
        ]
        streams = shapes.streams(
            rng, rng_namespace, "merge-listen", listeners
        )
        for node, stream in zip(listeners, streams):
            for row, hop in zip(bucket_rows, draw(stream, repetitions)):
                row[hop].append(node)
        listen_total += len(streams)

    fanouts: list[dict[int, list[int]]] = buckets.listens
    compiled_rounds: list[CompiledRound] = [
        CompiledRound(
            transmits=template,
            listens=by_channel,
            meta=meta,
            listen_count=listen_total,
        )
        for by_channel in fanouts
    ]

    heard_per_round = network.execute_schedule(RoundSchedule(compiled_rounds))

    if delta_state is None:
        for by_channel, heard in zip(fanouts, heard_per_round):
            for channel, received in heard.items():
                _fold_channel(
                    received,
                    tag,
                    by_channel[channel],
                    per_node_knowledge,
                    delta_state,
                )
        return

    # Delta fold, specialised for the compiled path: the same per-frame
    # semantics as DeltaApplyState.fold (via resolve() and the shared
    # applied-key state), inlined because this loop runs once per decoded
    # channel-round.  A decoded message on a transfer channel is the
    # *same* template object every repetition, so frame classification
    # (kind/tag checks plus digest verification) resolves once per
    # distinct message, each frame keeps a local set of listeners it
    # already reached (one membership test per skip — the by-far common
    # case), and only a first-time listener touches the global per-node
    # applied-key state.
    applied = delta_state.applied
    resolved: dict[int, tuple | None] = {}
    for by_channel, heard in zip(fanouts, heard_per_round):
        for channel, received in heard.items():
            entry = resolved.get(id(received), _UNRESOLVED)
            if entry is _UNRESOLVED:
                entry = None
                if received.kind == DELTA_KIND:
                    frame = received.payload
                    if isinstance(frame, DeltaFrame) and frame.tag == tag:
                        verdict = delta_state.resolve(frame)
                        if verdict is not None:
                            entry = (*verdict, set())
                resolved[id(received)] = entry
            if entry is None:
                continue
            key, items, reached = entry
            skips = 0
            applications = 0
            for node in by_channel[channel]:
                if node in reached:
                    skips += 1
                    continue
                reached.add(node)
                seen = applied.get(node)
                if seen is None:
                    seen = applied[node] = set()
                elif key in seen:
                    skips += 1
                    continue
                per_node_knowledge[node].update(items)
                seen.add(key)
                applications += 1
            delta_state.skips += skips
            delta_state.applications += applications


def _transfer_rounds_per_round(
    network: RadioNetwork,
    transfers: Sequence[
        tuple[
            Sequence[int],
            Sequence[int],
            Sequence[int],
            Mapping[int, bool],
            DeltaFrame | None,
        ]
    ],
    per_node_knowledge: dict[int, dict[int, bool]],
    tag: object,
    repetitions: int,
    rng: RngRegistry,
    phase: str,
    rng_namespace: object,
    delta_state: DeltaApplyState | None = None,
) -> None:
    """The historical reference loop — the equivalence oracle for the
    compiled path (blocks already validated by the caller)."""
    for _rep in range(repetitions):
        actions: dict[int, Action] = {}
        for broadcasters, listeners, block, knowledge, delta in transfers:
            for idx, channel in enumerate(block):
                actions[broadcasters[idx]] = Transmit(
                    channel,
                    _build_frame(broadcasters[idx], tag, knowledge, delta),
                )
            for node in listeners:
                stream = rng.stream(rng_namespace, "merge-listen", node)
                actions[node] = Listen(stream.choice(list(block)))
        results = network.execute_round(
            actions, RoundMeta(phase=phase, extra={"tag": tag})
        )
        for node, received in results.items():
            if received is not None:
                _fold_channel(
                    received, tag, (node,), per_node_knowledge, delta_state
                )


def run_parallel_feedback(
    network: RadioNetwork,
    witness_sets: Sequence[Sequence[int]],
    flags: Mapping[int, bool],
    participants: Sequence[int],
    rng: RngRegistry,
    *,
    repetitions: int | None = None,
    phase: str = "feedback-parallel",
    rng_namespace: object = "feedback-parallel",
    compiled: bool = True,
    delta_frames: bool = True,
    delta_state: DeltaApplyState | None = None,
    block_draws: bool = True,
    shape_cache: ScheduleShapeCache | None = None,
) -> dict[int, set[int]]:
    """Merge per-slot flags through a parallel-prefix tree; return each
    participant's ``D`` (slot indices whose flag is true).

    Parameters mirror :func:`repro.feedback.protocol.run_feedback`
    (including ``compiled``); here ``witness_sets[r]`` must contain at
    least ``2t`` members, and the network must offer enough channels for
    the first level's simultaneous blocks (guaranteed by ``C >= 2t^2``
    when ``len(witness_sets) <= C/t``).

    ``delta_frames`` selects the wire encoding (see the module docstring):
    the default ships digest/delta frames and tracks per-listener applied
    digests; ``False`` keeps the historical full-frame path, which is the
    reference the differential gauntlet compares against.  A caller may
    pass its own (fresh) :class:`DeltaApplyState` to inspect the
    apply/skip/resync counters afterwards; states are single-use — reuse
    across invocations raises, because repeated digests would be skipped
    as already applied — and by default one is created per invocation.

    ``block_draws`` and ``shape_cache`` mirror :func:`run_feedback`:
    batched vs per-draw hop sampling (byte-identical either way) and an
    optional cross-invocation shape cache.  Within one invocation the
    merge tree always shares one cache, so the per-level transfer rounds
    recycle buckets and metadata even when the caller passes none.
    """
    t = network.t
    block_size = max(1, 2 * t)
    slots = len(witness_sets)
    if slots == 0:
        return {node: set() for node in participants}
    shapes = shape_cache if shape_cache is not None else ScheduleShapeCache()

    if delta_frames:
        from ..fame.digests import combine_digests, slot_set_digest

        if delta_state is None:
            delta_state = DeltaApplyState()
        delta_state._claim()
    else:
        delta_state = None

    groups: list[_Group] = []
    per_node_knowledge: dict[int, dict[int, bool]] = {}
    for r, witness_set in enumerate(witness_sets):
        members = tuple(witness_set)
        if len(members) < block_size:
            raise ConfigurationError(
                f"witness set {r} has {len(members)} members; the parallel "
                f"merge needs at least 2t = {block_size}"
            )
        flag_values = {flags[w] for w in members if w in flags}
        if len(flag_values) != 1:
            raise ConfigurationError(
                f"witness set {r} missing or inconsistent flags"
            )
        flag = next(iter(flag_values))
        group = _Group(members=members, knowledge={r: flag})
        if delta_frames:
            group.true_slots = (r,) if flag else ()
            group.digest = slot_set_digest(group.true_slots)
        groups.append(group)
        for w in members:
            per_node_knowledge[w] = {r: flag}
    for node in participants:
        per_node_knowledge.setdefault(node, {})

    if repetitions is None:
        # Block of 2t channels with at most t jammed: success probability
        # >= 1/2 per round, matching the C = 2t feedback formula.
        repetitions = network.params.feedback_repetitions(
            network.n, max(2, block_size), min(t, max(2, block_size) - 1)
        )

    level = 0
    while len(groups) > 1:
        pairs = [
            (groups[i], groups[i + 1]) for i in range(0, len(groups) - 1, 2)
        ]
        carry = [groups[-1]] if len(groups) % 2 == 1 else []
        needed = len(pairs) * block_size
        if needed > network.channels:
            raise ConfigurationError(
                f"parallel merge level {level} needs {needed} channels; "
                f"only {network.channels} available (C >= 2t^2 required)"
            )
        # Two directed sub-phases; within each, all pairs run simultaneously
        # on disjoint channel blocks.
        for direction in (0, 1):
            tag = (level, direction)
            transfers = []
            for pair_idx, (left, right) in enumerate(pairs):
                src, dst = (left, right) if direction == 0 else (right, left)
                block = tuple(
                    range(pair_idx * block_size, (pair_idx + 1) * block_size)
                )
                transfers.append(
                    (
                        src.members,
                        dst.members,
                        block,
                        src.knowledge,
                        _delta_payload(src, tag) if delta_frames else None,
                    )
                )
            _run_transfer_rounds(
                network,
                transfers,
                per_node_knowledge,
                tag=tag,
                repetitions=repetitions,
                rng=rng,
                phase=phase,
                rng_namespace=(rng_namespace, level, direction),
                compiled=compiled,
                delta_state=delta_state,
                block_draws=block_draws,
                shapes=shapes,
            )
        next_groups: list[_Group] = []
        for left, right in pairs:
            merged_knowledge = dict(left.knowledge)
            merged_knowledge.update(right.knowledge)
            merged = _Group(
                members=left.members + right.members,
                knowledge=merged_knowledge,
            )
            if delta_frames:
                # Adjacent pairs cover adjacent slot ranges, so the
                # concatenation stays sorted and the disjoint-union digest
                # combines in O(1).
                merged.true_slots = left.true_slots + right.true_slots
                merged.digest = combine_digests(left.digest, right.digest)
            next_groups.append(merged)
        groups = next_groups + carry
        level += 1

    # Final dissemination: the root group broadcasts to everyone else.
    root = groups[0]
    block = tuple(range(block_size))
    outsiders = [p for p in participants if p not in set(root.members)]
    if outsiders:
        tag = ("final", level)
        _run_transfer_rounds(
            network,
            [
                (
                    root.members,
                    outsiders,
                    block,
                    root.knowledge,
                    _delta_payload(root, tag) if delta_frames else None,
                )
            ],
            per_node_knowledge,
            tag=tag,
            repetitions=repetitions,
            rng=rng,
            phase=phase,
            rng_namespace=(rng_namespace, "final"),
            compiled=compiled,
            delta_state=delta_state,
            block_draws=block_draws,
            shapes=shapes,
        )

    return {
        node: {slot for slot, flag in per_node_knowledge[node].items() if flag}
        for node in participants
    }
