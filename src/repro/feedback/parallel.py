"""Parallel-prefix feedback merging for the ``C >= 2t^2`` regime (Section 5.5).

The serial routine of Figure 1 handles one slot at a time; with many channels
the paper instead merges feedback *in parallel*: witness groups pair up, each
pair gets a dedicated channel block, the two groups exchange their knowledge
with a short randomized hop phase — all pairs simultaneously, since the
blocks are channel-disjoint — and the merged groups recurse.  The tree has
depth ``O(log C')`` and each level costs ``O(log n)`` rounds, for
``O(log^2 n)`` total.  A final dissemination stage broadcasts the fully
merged flag set to every participant.

Reconstruction note (documented in DESIGN.md): the paper assigns each pair
"a unique set of t channels", but a ``t``-channel block can be fully jammed
by the budget-``t`` adversary, deterministically stalling that pair.  We
assign ``2t``-channel blocks instead — the capacity ``C >= 2t^2`` admits
``C'/2 = C/(2t) >= t`` simultaneous pairs needing ``C/(2t) * 2t = C``
channels, which exactly fits — so every listener retains success probability
``>= 1/2`` per round no matter how the adversary concentrates its budget,
and the ``O(log^2 n)`` bound survives.  Each witness group must therefore
hold at least ``2t`` members (one honest broadcaster per block channel,
which is what keeps spoofing impossible).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..errors import ConfigurationError
from ..radio.actions import Action, Listen, Transmit
from ..radio.messages import Message
from ..radio.network import CompiledRound, RadioNetwork, RoundMeta, RoundSchedule
from ..rng import RngRegistry, draw_uniform_indices

MERGE_KIND = "feedback-merge"


@dataclass
class _Group:
    """A witness group in the merge tree with its accumulated knowledge."""

    members: tuple[int, ...]
    knowledge: dict[int, bool]  # slot -> flag


def _merge_frame(sender: int, tag: object, knowledge: Mapping[int, bool]) -> Message:
    """A knowledge broadcast: the full (slot -> flag) map known so far."""
    return Message(
        kind=MERGE_KIND,
        sender=sender,
        payload=(tag, tuple(sorted(knowledge.items()))),
    )


def _run_transfer_rounds(
    network: RadioNetwork,
    transfers: Sequence[tuple[Sequence[int], Sequence[int], Sequence[int], Mapping[int, bool]]],
    per_node_knowledge: dict[int, dict[int, bool]],
    tag: object,
    repetitions: int,
    rng: RngRegistry,
    phase: str,
    rng_namespace: object,
    compiled: bool = True,
) -> None:
    """Run ``repetitions`` rounds of simultaneous directed transfers.

    Each transfer is ``(broadcasters, listeners, block_channels, knowledge)``;
    blocks must be channel-disjoint (validated).  Every block channel is
    occupied by an honest broadcaster each round, so adversarial frames can
    only collide, never be decoded.  Listeners hop uniformly within their
    block and merge any knowledge frame with a matching tag.

    The repetition loop is oblivious, so the default path compiles it into
    one :class:`RoundSchedule`: the broadcaster assignment is a static
    template (each knowledge frame built once, not once per repetition —
    the frames of one transfer are identical across rounds), each
    listener's block-hop sequence is drawn up front from its stream, and
    results fold back per decoded channel.  ``compiled=False`` replays the
    historical per-round loop; the two are byte-identical on seeded runs.
    """
    used_channels: set[int] = set()
    for broadcasters, _, block, _ in transfers:
        overlap = used_channels & set(block)
        if overlap:
            raise ConfigurationError(
                f"transfer blocks overlap on channels {sorted(overlap)}"
            )
        used_channels.update(block)
        if len(broadcasters) < len(block):
            raise ConfigurationError(
                f"group of {len(broadcasters)} cannot occupy a "
                f"{len(block)}-channel block"
            )

    if not compiled:
        _transfer_rounds_per_round(
            network,
            transfers,
            per_node_knowledge,
            tag,
            repetitions,
            rng,
            phase,
            rng_namespace,
        )
        return

    meta = RoundMeta(phase=phase, extra={"tag": tag})
    template: dict[int, Transmit] = {}
    hop_choices: list[tuple[int, list[int]]] = []  # (listener, per-rep hops)
    for broadcasters, listeners, block, knowledge in transfers:
        for idx, channel in enumerate(block):
            template[broadcasters[idx]] = Transmit(
                channel, _merge_frame(broadcasters[idx], tag, knowledge)
            )
        # Draw each listener's whole hop sequence up front (choice-stream
        # compatible; see draw_uniform_indices).
        block_list = list(block)
        nblock = len(block_list)
        for node in listeners:
            stream = rng.stream(rng_namespace, "merge-listen", node)
            hop_choices.append(
                (
                    node,
                    [
                        block_list[i]
                        for i in draw_uniform_indices(
                            stream, nblock, repetitions
                        )
                    ],
                )
            )

    listen_total = len(hop_choices)
    compiled_rounds: list[CompiledRound] = []
    fanouts: list[dict[int, list[int]]] = []
    for rep in range(repetitions):
        by_channel: dict[int, list[int]] = {c: [] for c in used_channels}
        for node, choices in hop_choices:
            by_channel[choices[rep]].append(node)
        compiled_rounds.append(
            CompiledRound(
                transmits=template,
                listens=by_channel,
                meta=meta,
                listen_count=listen_total,
            )
        )
        fanouts.append(by_channel)

    heard_per_round = network.execute_schedule(RoundSchedule(compiled_rounds))

    for by_channel, heard in zip(fanouts, heard_per_round):
        for channel, received in heard.items():
            if received.kind != MERGE_KIND:
                continue
            recv_tag, items = received.payload
            if recv_tag != tag:
                continue
            merged = dict(items)
            for node in by_channel[channel]:
                per_node_knowledge[node].update(merged)


def _transfer_rounds_per_round(
    network: RadioNetwork,
    transfers: Sequence[tuple[Sequence[int], Sequence[int], Sequence[int], Mapping[int, bool]]],
    per_node_knowledge: dict[int, dict[int, bool]],
    tag: object,
    repetitions: int,
    rng: RngRegistry,
    phase: str,
    rng_namespace: object,
) -> None:
    """The historical reference loop — the equivalence oracle for the
    compiled path (blocks already validated by the caller)."""
    for _rep in range(repetitions):
        actions: dict[int, Action] = {}
        for broadcasters, listeners, block, knowledge in transfers:
            for idx, channel in enumerate(block):
                actions[broadcasters[idx]] = Transmit(
                    channel, _merge_frame(broadcasters[idx], tag, knowledge)
                )
            for node in listeners:
                stream = rng.stream(rng_namespace, "merge-listen", node)
                actions[node] = Listen(stream.choice(list(block)))
        results = network.execute_round(
            actions, RoundMeta(phase=phase, extra={"tag": tag})
        )
        for node, received in results.items():
            if received is not None and received.kind == MERGE_KIND:
                recv_tag, items = received.payload
                if recv_tag == tag:
                    per_node_knowledge[node].update(dict(items))


def run_parallel_feedback(
    network: RadioNetwork,
    witness_sets: Sequence[Sequence[int]],
    flags: Mapping[int, bool],
    participants: Sequence[int],
    rng: RngRegistry,
    *,
    repetitions: int | None = None,
    phase: str = "feedback-parallel",
    rng_namespace: object = "feedback-parallel",
    compiled: bool = True,
) -> dict[int, set[int]]:
    """Merge per-slot flags through a parallel-prefix tree; return each
    participant's ``D`` (slot indices whose flag is true).

    Parameters mirror :func:`repro.feedback.protocol.run_feedback`
    (including ``compiled``); here ``witness_sets[r]`` must contain at
    least ``2t`` members, and the network must offer enough channels for
    the first level's simultaneous blocks (guaranteed by ``C >= 2t^2``
    when ``len(witness_sets) <= C/t``).
    """
    t = network.t
    block_size = max(1, 2 * t)
    slots = len(witness_sets)
    if slots == 0:
        return {node: set() for node in participants}

    groups: list[_Group] = []
    per_node_knowledge: dict[int, dict[int, bool]] = {}
    for r, witness_set in enumerate(witness_sets):
        members = tuple(witness_set)
        if len(members) < block_size:
            raise ConfigurationError(
                f"witness set {r} has {len(members)} members; the parallel "
                f"merge needs at least 2t = {block_size}"
            )
        flag_values = {flags[w] for w in members if w in flags}
        if len(flag_values) != 1:
            raise ConfigurationError(
                f"witness set {r} missing or inconsistent flags"
            )
        flag = next(iter(flag_values))
        groups.append(_Group(members=members, knowledge={r: flag}))
        for w in members:
            per_node_knowledge[w] = {r: flag}
    for node in participants:
        per_node_knowledge.setdefault(node, {})

    if repetitions is None:
        # Block of 2t channels with at most t jammed: success probability
        # >= 1/2 per round, matching the C = 2t feedback formula.
        repetitions = network.params.feedback_repetitions(
            network.n, max(2, block_size), min(t, max(2, block_size) - 1)
        )

    level = 0
    while len(groups) > 1:
        pairs = [
            (groups[i], groups[i + 1]) for i in range(0, len(groups) - 1, 2)
        ]
        carry = [groups[-1]] if len(groups) % 2 == 1 else []
        needed = len(pairs) * block_size
        if needed > network.channels:
            raise ConfigurationError(
                f"parallel merge level {level} needs {needed} channels; "
                f"only {network.channels} available (C >= 2t^2 required)"
            )
        # Two directed sub-phases; within each, all pairs run simultaneously
        # on disjoint channel blocks.
        for direction in (0, 1):
            transfers = []
            for pair_idx, (left, right) in enumerate(pairs):
                src, dst = (left, right) if direction == 0 else (right, left)
                block = tuple(
                    range(pair_idx * block_size, (pair_idx + 1) * block_size)
                )
                transfers.append(
                    (src.members, dst.members, block, src.knowledge)
                )
            _run_transfer_rounds(
                network,
                transfers,
                per_node_knowledge,
                tag=(level, direction),
                repetitions=repetitions,
                rng=rng,
                phase=phase,
                rng_namespace=(rng_namespace, level, direction),
                compiled=compiled,
            )
        next_groups: list[_Group] = []
        for left, right in pairs:
            merged_knowledge = dict(left.knowledge)
            merged_knowledge.update(right.knowledge)
            next_groups.append(
                _Group(
                    members=left.members + right.members,
                    knowledge=merged_knowledge,
                )
            )
        groups = next_groups + carry
        level += 1

    # Final dissemination: the root group broadcasts to everyone else.
    root = groups[0]
    block = tuple(range(block_size))
    outsiders = [p for p in participants if p not in set(root.members)]
    if outsiders:
        _run_transfer_rounds(
            network,
            [(root.members, outsiders, block, root.knowledge)],
            per_node_knowledge,
            tag=("final", level),
            repetitions=repetitions,
            rng=rng,
            phase=phase,
            rng_namespace=(rng_namespace, "final"),
            compiled=compiled,
        )

    return {
        node: {slot for slot, flag in per_node_knowledge[node].items() if flag}
        for node in participants
    }
