"""Witness assignments for the feedback routine.

Figure 1 assumes a partition ``W`` assigning a set of witnesses to each
feedback slot, and uses ``rank(p_i, W[r])`` to map each witness of the active
slot onto a distinct feedback channel.  This module provides that rank
function and a validated container for the assignment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..errors import ConfigurationError


def rank(node: int, witnesses: Sequence[int]) -> int:
    """Position of ``node`` within its witness set (0-based).

    Figure 1's ``rank(pi, W[r])``; determines which feedback channel the
    witness occupies.  Raises when the node is not a witness of the set.
    One-shot form — code that resolves many ranks against the same
    assignment uses the precomputed :meth:`WitnessAssignment.rank_map`
    instead of paying this O(|witnesses|) scan per lookup.
    """
    try:
        return list(witnesses).index(node)
    except ValueError as exc:
        raise ConfigurationError(f"node {node} is not in witness set") from exc


@dataclass(frozen=True)
class WitnessAssignment:
    """A validated witness partition for one feedback invocation.

    Attributes
    ----------
    sets:
        ``sets[r]`` is the ordered witness tuple for feedback slot ``r``.
        Each must have exactly as many members as there are feedback
        channels (one broadcaster per channel — the occupancy that makes
        spoofing impossible), and sets must be pairwise disjoint.
    channels:
        The channel ids used for feedback broadcasts.
    """

    sets: tuple[tuple[int, ...], ...]
    channels: tuple[int, ...]

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for r, witness_set in enumerate(self.sets):
            if len(witness_set) != len(self.channels):
                raise ConfigurationError(
                    f"witness set {r} has {len(witness_set)} members; "
                    f"needs exactly {len(self.channels)} (one per channel)"
                )
            if len(set(witness_set)) != len(witness_set):
                raise ConfigurationError(f"witness set {r} has duplicates")
            overlap = seen & set(witness_set)
            if overlap:
                raise ConfigurationError(
                    f"witness sets overlap on nodes {sorted(overlap)}"
                )
            seen.update(witness_set)
        # Precompute each slot's node -> rank map once at construction;
        # assignments are reused across many repetitions (and, for delta
        # transfers, across merge levels), so per-lookup index scans would
        # otherwise dominate the per-round reference paths.  Stored via
        # object.__setattr__ because the dataclass is frozen; not a field,
        # so equality/hash/repr are unaffected.
        object.__setattr__(
            self,
            "_rank_maps",
            tuple(
                {node: rank for rank, node in enumerate(witness_set)}
                for witness_set in self.sets
            ),
        )

    @property
    def slots(self) -> int:
        """Number of feedback slots (channels being reported on)."""
        return len(self.sets)

    def witnesses_of(self, slot: int) -> tuple[int, ...]:
        """The witness tuple for ``slot``."""
        return self.sets[slot]

    def rank_map(self, slot: int) -> Mapping[int, int]:
        """The precomputed ``node -> rank`` map for ``slot`` (O(1) reuse)."""
        return self._rank_maps[slot]

    def rank_of(self, slot: int, node: int) -> int:
        """``rank(node, witnesses_of(slot))`` without the per-call scan."""
        try:
            return self._rank_maps[slot][node]
        except KeyError as exc:
            raise ConfigurationError(
                f"node {node} is not in witness set {slot}"
            ) from exc

    def all_witnesses(self) -> set[int]:
        """Union of all witness sets."""
        return {w for ws in self.sets for w in ws}
