"""The deterministic direct-exchange strawman (Section 5's first insight).

Every message travels straight from source to destination on a
pre-determined schedule: vertex-disjoint pending pairs are packed onto the
channels, sources broadcast, destinations listen.  Because the schedule is
deterministic, the adversary can never spoof (any of its transmissions on a
scheduled channel merely collides) — this is the easy half of
authentication.  The protocol simply sweeps over the pending set for a fixed
number of passes.

Its weakness is resilience: with no surrogates, the triangle-isolation
adversary (Section 5) pins ``t`` vertex-disjoint triples and jams every
scheduled intra-triple edge — at most one per triple per round fits in any
vertex-disjoint schedule, so a budget of ``t`` always suffices — leaving a
disruption graph of ``t`` edge-disjoint triangles whose minimum vertex cover
is ``2t``.  Experiment E10 measures exactly that gap against f-AME's ``t``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..analysis.vertex_cover import min_vertex_cover
from ..errors import ProtocolViolation
from ..radio.actions import Action, Listen, Transmit
from ..radio.messages import Message
from ..radio.network import RadioNetwork, RoundMeta

DIRECT_KIND = "direct-data"


@dataclass
class DirectExchangeResult:
    """Outcome of a direct-exchange run."""

    outcomes: dict[tuple[int, int], bool]
    delivered: dict[tuple[int, int], Any]
    rounds: int
    passes: int

    @property
    def failed(self) -> list[tuple[int, int]]:
        """Pairs never delivered."""
        return [p for p, ok in self.outcomes.items() if not ok]

    def disruptability(self) -> int:
        """Minimum vertex cover of the failed pairs."""
        return len(min_vertex_cover(self.failed))


def _pack_round(
    pending: Sequence[tuple[int, int]], channels: int
) -> list[tuple[int, int]]:
    """Deterministically pick up to ``channels`` vertex-disjoint pairs."""
    chosen: list[tuple[int, int]] = []
    used: set[int] = set()
    for v, w in pending:
        if v in used or w in used:
            continue
        chosen.append((v, w))
        used.update((v, w))
        if len(chosen) == channels:
            break
    return chosen


def run_direct_exchange(
    network: RadioNetwork,
    edges: Sequence[tuple[int, int]],
    messages: Mapping[tuple[int, int], Any] | None = None,
    *,
    passes: int = 3,
) -> DirectExchangeResult:
    """Run the direct-exchange baseline for ``passes`` full sweeps.

    Each sweep repeatedly packs vertex-disjoint pending pairs onto channels
    until every pending pair has been scheduled once; pairs whose broadcast
    survives are removed from the pending set (the simulator observes
    delivery directly — the baseline makes no sender-awareness claim, which
    is one of the things f-AME adds).
    """
    edges = list(dict.fromkeys((int(v), int(w)) for v, w in edges))
    for v, w in edges:
        if v == w or not (0 <= v < network.n and 0 <= w < network.n):
            raise ProtocolViolation(f"invalid pair ({v}, {w})")
    if messages is None:
        messages = {(v, w): ("msg", v, w) for v, w in edges}
    start = network.metrics.rounds
    pending = list(edges)
    delivered: dict[tuple[int, int], Any] = {}

    for _pass in range(passes):
        if not pending:
            break
        # One sweep: schedule every pending pair exactly once.
        sweep = list(pending)
        while sweep:
            batch = _pack_round(sweep, network.channels)
            sweep = [p for p in sweep if p not in set(batch)]
            actions: dict[int, Action] = {}
            assignments: dict[int, dict[str, int | None]] = {}
            for channel, (v, w) in enumerate(batch):
                actions[v] = Transmit(
                    channel,
                    Message(
                        kind=DIRECT_KIND, sender=v, payload=(v, w, messages[(v, w)])
                    ),
                )
                actions[w] = Listen(channel)
                assignments[channel] = {
                    "broadcaster": v,
                    "source": v,
                    "listener": w,
                }
            meta = RoundMeta(
                phase="direct-exchange",
                schedule={
                    "channels_in_use": tuple(range(len(batch))),
                    "assignments": assignments,
                },
            )
            results = network.execute_round(actions, meta)
            for channel, (v, w) in enumerate(batch):
                frame = results.get(w)
                if (
                    frame is not None
                    and frame.kind == DIRECT_KIND
                    and frame.payload[:2] == (v, w)
                ):
                    delivered[(v, w)] = frame.payload[2]
                    if (v, w) in pending:
                        pending.remove((v, w))
    return DirectExchangeResult(
        outcomes={p: p in delivered for p in edges},
        delivered=delivered,
        rounds=network.metrics.rounds - start,
        passes=passes,
    )
