"""A purely randomized exchange strawman — the Theorem 2 victim.

The paper's introduction observes that a *purely randomized* approach is
hard to authenticate: a receiver hopping channels cannot tell whether a
frame came from the honest sender or from an adversary that simulates the
sender's protocol with fake content, because (Theorem 2) the two executions
are equiprobable from the receiver's perspective.

This module implements that strawman: each pair gets an epoch in which the
source broadcasts its message on a fresh uniform channel every round while
the destination listens on uniform channels, accepting the **first** frame
that claims to be for this pair.  Against a
:class:`~repro.adversary.simulating.SimulatingAdversary` mirroring the
sender's distribution, the destination accepts the fake with probability
close to the spoof share of the frames it hears — the quantitative face of
the lower bound, measured in experiment E5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..errors import ProtocolViolation
from ..radio.actions import Action, Listen, Transmit
from ..radio.messages import Message
from ..radio.network import RadioNetwork, RoundMeta
from ..rng import RngRegistry

RANDOM_EXCHANGE_KIND = "rand-exchange"


def exchange_frame(source: int, dest: int, payload: Any) -> Message:
    """The frame format of the strawman (spoofable by construction)."""
    return Message(
        kind=RANDOM_EXCHANGE_KIND, sender=source, payload=(source, dest, payload)
    )


@dataclass
class RandomizedExchangeResult:
    """Outcome of a randomized-exchange run.

    ``accepted`` records what each destination believed; ``spoofed`` flags
    the pairs whose accepted payload differs from the genuine message —
    successful Theorem 2-style spoofs.
    """

    accepted: dict[tuple[int, int], Any]
    genuine: dict[tuple[int, int], Any]
    rounds: int

    @property
    def spoofed(self) -> list[tuple[int, int]]:
        """Pairs that accepted a forged payload."""
        return [
            p
            for p, got in self.accepted.items()
            if got != self.genuine[p]
        ]

    @property
    def undelivered(self) -> list[tuple[int, int]]:
        """Pairs that heard nothing at all during their epoch."""
        return [p for p in self.genuine if p not in self.accepted]

    def spoof_rate(self) -> float:
        """Fraction of deliveries that were forgeries."""
        if not self.accepted:
            return 0.0
        return len(self.spoofed) / len(self.accepted)


def run_randomized_exchange(
    network: RadioNetwork,
    edges: Sequence[tuple[int, int]],
    messages: Mapping[tuple[int, int], Any] | None = None,
    rng: RngRegistry | None = None,
    *,
    epoch_rounds: int | None = None,
) -> RandomizedExchangeResult:
    """Run one epoch per pair; destinations accept the first matching frame."""
    edges = list(dict.fromkeys((int(v), int(w)) for v, w in edges))
    for v, w in edges:
        if v == w or not (0 <= v < network.n and 0 <= w < network.n):
            raise ProtocolViolation(f"invalid pair ({v}, {w})")
    if messages is None:
        messages = {(v, w): ("msg", v, w) for v, w in edges}
    rng = rng or RngRegistry(seed=0)
    if epoch_rounds is None:
        epoch_rounds = network.params.gossip_epoch_rounds(network.n, network.t)

    start = network.metrics.rounds
    accepted: dict[tuple[int, int], Any] = {}
    for pair in edges:
        v, w = pair
        frame = exchange_frame(v, w, messages[pair])
        for _ in range(epoch_rounds):
            if pair in accepted:
                break
            stream_v = rng.stream("rand-exchange", v)
            stream_w = rng.stream("rand-exchange", w)
            actions: dict[int, Action] = {}
            actions[v] = Transmit(stream_v.randrange(network.channels), frame)
            actions[w] = Listen(stream_w.randrange(network.channels))
            results = network.execute_round(
                actions,
                RoundMeta(phase="rand-exchange", extra={"pair": pair}),
            )
            got = results.get(w)
            if got is not None and got.kind == RANDOM_EXCHANGE_KIND:
                try:
                    src, dst, payload = got.payload
                except (TypeError, ValueError):
                    continue
                if (src, dst) == pair:
                    # No way to authenticate: first claim wins.
                    accepted[pair] = payload
    return RandomizedExchangeResult(
        accepted=accepted,
        genuine={p: messages[p] for p in edges},
        rounds=network.metrics.rounds - start,
    )
