"""Baselines the paper positions f-AME against.

* :func:`run_direct_exchange` — the deterministic source-to-destination
  strawman of Section 5: authenticated but only ``2t``-disruptable (the
  triangle-isolation attack);
* :func:`run_no_surrogate` — the Section 8 (Q1) ablation: f-AME's adaptive
  machinery without surrogates, terminating at a ``2t`` cover;
* :func:`run_oblivious_gossip` — the [13]-style oblivious gossip of the
  related work: slow and unauthenticated.
"""

from .direct_exchange import DirectExchangeResult, run_direct_exchange
from .no_surrogate import NoSurrogateResult, run_no_surrogate
from .oblivious_gossip import GossipResult, run_oblivious_gossip
from .randomized_exchange import (
    RandomizedExchangeResult,
    exchange_frame,
    run_randomized_exchange,
)

__all__ = [
    "DirectExchangeResult",
    "GossipResult",
    "NoSurrogateResult",
    "RandomizedExchangeResult",
    "exchange_frame",
    "run_direct_exchange",
    "run_no_surrogate",
    "run_oblivious_gossip",
    "run_randomized_exchange",
]
