"""f-AME without surrogates — the Section 8 (Q1) ablation.

Under Byzantine node corruption the paper suggests dropping surrogates
(messages must come straight from their source) and accepting
``2t``-disruptability.  This module implements that variant as a game-style
adaptive protocol:

* a *move* proposes up to ``C`` **vertex-disjoint** pending edges (no node
  items, no starring — the extra restriction replaces Restrictions 2/4);
* sources broadcast directly, destinations listen, witness groups report
  through communication-feedback exactly as in f-AME, so all nodes agree on
  the surviving edges and sender awareness is preserved;
* the protocol terminates when fewer than ``t + 1`` vertex-disjoint pending
  edges exist — i.e. the pending set's maximum matching has size at most
  ``t``, certifying a vertex cover of at most ``2t`` (König-style doubling).

Against the triangle-isolation adversary the bound is tight: the run ends
with ``t`` jammed triangles and disruptability exactly ``2t``, while f-AME
on the same workload stays at ``t`` (experiment E10).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from ..analysis.vertex_cover import min_vertex_cover
from ..errors import ProtocolViolation, SimulationDiverged
from ..feedback.protocol import run_feedback
from ..feedback.witness import WitnessAssignment
from ..radio.actions import Action, Listen, Transmit
from ..radio.messages import Message
from ..radio.network import RadioNetwork, RoundMeta
from ..radio.shapes import ScheduleShapeCache
from ..rng import RngRegistry

NOSURROGATE_KIND = "nosurrogate-data"


@dataclass
class NoSurrogateResult:
    """Outcome of a no-surrogate run."""

    outcomes: dict[tuple[int, int], bool]
    delivered: dict[tuple[int, int], Any]
    moves: int
    rounds: int
    divergence_events: int

    @property
    def failed(self) -> list[tuple[int, int]]:
        """Pairs that output fail."""
        return [p for p, ok in self.outcomes.items() if not ok]

    def disruptability(self) -> int:
        """Minimum vertex cover of the failed pairs."""
        return len(min_vertex_cover(self.failed))


def _matching_proposal(
    pending: Sequence[tuple[int, int]], limit: int
) -> list[tuple[int, int]]:
    """Greedy vertex-disjoint selection in deterministic order."""
    chosen: list[tuple[int, int]] = []
    used: set[int] = set()
    for v, w in sorted(pending):
        if v in used or w in used:
            continue
        chosen.append((v, w))
        used.update((v, w))
        if len(chosen) == limit:
            break
    return chosen


def run_no_surrogate(
    network: RadioNetwork,
    edges: Sequence[tuple[int, int]],
    messages: Mapping[tuple[int, int], Any] | None = None,
    rng: RngRegistry | None = None,
) -> NoSurrogateResult:
    """Run the surrogate-free adaptive exchange to termination."""
    t = network.t
    edges = list(dict.fromkeys((int(v), int(w)) for v, w in edges))
    for v, w in edges:
        if v == w or not (0 <= v < network.n and 0 <= w < network.n):
            raise ProtocolViolation(f"invalid pair ({v}, {w})")
    if messages is None:
        messages = {(v, w): ("msg", v, w) for v, w in edges}
    rng = rng or RngRegistry(seed=0)

    fb_channels = min(network.channels, 3 * (t + 1))
    group_size = fb_channels
    start = network.metrics.rounds
    pending = list(edges)
    delivered: dict[tuple[int, int], Any] = {}
    moves = 0
    divergence_events = 0
    max_moves = 3 * len(edges) + t + 2
    # Every move's feedback phase shares one geometry; reuse its shape.
    shape_cache = ScheduleShapeCache()

    while True:
        batch = _matching_proposal(pending, network.channels)
        if len(batch) < t + 1:
            break  # matching <= t  =>  vertex cover of pending <= 2t
        busy = {v for pair in batch for v in pair}
        free = [node for node in range(network.n) if node not in busy]
        if len(free) < group_size * len(batch):
            raise ProtocolViolation(
                "population too small for witness groups in the "
                "no-surrogate baseline"
            )
        witness_groups = [
            tuple(free[i * group_size : (i + 1) * group_size])
            for i in range(len(batch))
        ]

        actions: dict[int, Action] = {}
        assignments: dict[int, dict[str, int | None]] = {}
        for channel, (v, w) in enumerate(batch):
            actions[v] = Transmit(
                channel,
                Message(
                    kind=NOSURROGATE_KIND,
                    sender=v,
                    payload=(v, w, messages[(v, w)]),
                ),
            )
            actions[w] = Listen(channel)
            for witness in witness_groups[channel]:
                actions[witness] = Listen(channel)
            assignments[channel] = {"broadcaster": v, "source": v, "listener": w}
        results = network.execute_round(
            actions,
            RoundMeta(
                phase="nosurrogate-transmission",
                schedule={
                    "channels_in_use": tuple(range(len(batch))),
                    "assignments": assignments,
                },
                extra={"move": moves},
            ),
        )

        flags = {
            witness: (
                results.get(witness) is not None
                and results[witness].kind == NOSURROGATE_KIND
            )
            for group in witness_groups
            for witness in group
        }
        assignment = WitnessAssignment(
            sets=tuple(group[:fb_channels] for group in witness_groups),
            channels=tuple(range(fb_channels)),
        )
        outputs = run_feedback(
            network,
            assignment,
            flags,
            list(range(network.n)),
            rng,
            phase="feedback",
            rng_namespace="nosurrogate-feedback",
            shape_cache=shape_cache,
        )
        counts = Counter(frozenset(d) for d in outputs.values())
        majority, _ = counts.most_common(1)[0]
        disagreeing = sum(
            1 for d in outputs.values() if frozenset(d) != majority
        )
        if disagreeing:
            if network.params.strict_consistency:
                raise SimulationDiverged(
                    "feedback disagreement in no-surrogate baseline"
                )
            divergence_events += 1
        if not majority:
            raise SimulationDiverged("empty referee response")

        for slot in sorted(majority):
            pair = batch[slot]
            frame = results.get(pair[1])
            if frame is None:  # pragma: no cover - feedback is truthful
                raise SimulationDiverged(
                    f"slot {slot} reported success but destination heard "
                    "nothing"
                )
            delivered[pair] = frame.payload[2]
            pending.remove(pair)
        moves += 1
        if moves > max_moves:
            raise ProtocolViolation("no-surrogate baseline exceeded move cap")

    return NoSurrogateResult(
        outcomes={p: p in delivered for p in edges},
        delivered=delivered,
        moves=moves,
        rounds=network.metrics.rounds - start,
        divergence_events=divergence_events,
    )
