"""An oblivious gossip baseline, after Dolev et al. [13].

The related-work comparison (Section 2): *oblivious* algorithms — whose
transmit/listen pattern ignores the execution so far — can solve "almost
gossip" (all but ``t`` rumors reach all but ``t`` nodes) but pay
``Θ(n^2 / C^2)`` rounds at ``t = 1`` and ``O((en/t)^{t+1})`` in general,
and offer **no authentication**: a listener cannot tell a spoofed rumor
from a real one.

We implement the canonical uniform oblivious scheme: each round every node
independently transmits its own rumor with probability ``1/n`` on a uniform
channel, otherwise listens on a uniform channel.  Deliveries require the
lucky conjunction (single transmitter on the listener's channel, channel
not jammed), which is what produces the super-linear round growth measured
in experiment E9 — against f-AME's linear-in-``|E|`` behaviour — and the
spoof-acceptance measured alongside.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ProtocolViolation
from ..radio.actions import Transmit
from ..radio.messages import Message
from ..radio.network import (
    CompiledRound,
    RadioNetwork,
    RoundMeta,
    RoundSchedule,
)
from ..rng import RngRegistry

GOSSIP_RUMOR_KIND = "oblivious-rumor"


@dataclass
class GossipResult:
    """Outcome of an oblivious-gossip run."""

    rounds: int
    completed: bool
    knowledge: list[set[int]]
    spoofed_rumors_accepted: int

    def coverage(self, t: int) -> int:
        """How many nodes know at least ``n - t`` rumors."""
        n = len(self.knowledge)
        return sum(1 for known in self.knowledge if len(known) >= n - t)


def run_oblivious_gossip(
    network: RadioNetwork,
    rng: RngRegistry | None = None,
    *,
    max_rounds: int = 200_000,
) -> GossipResult:
    """Run uniform oblivious gossip until almost-gossip completion.

    Every node starts with one rumor (its own id).  The run stops when all
    but ``t`` nodes know all but ``t`` rumors, or at ``max_rounds``.

    Spoofed rumor frames are *accepted* exactly like real ones — the
    protocol has no authentication — and counted in the result so that
    experiment E9 can report the security gap, not just the speed gap.
    """
    n, t = network.n, network.t
    if n < 2:
        raise ProtocolViolation("gossip needs at least two nodes")
    rng = rng or RngRegistry(seed=0)
    knowledge: list[set[int]] = [{v} for v in range(n)]
    spoofs_accepted = 0

    def done() -> bool:
        target = n - t
        return sum(1 for known in knowledge if len(known) >= target) >= target

    rounds = 0
    start = network.metrics.rounds
    streams = [rng.stream("oblivious", node) for node in range(n)]
    meta = RoundMeta(phase="oblivious-gossip")
    # The protocol is oblivious by definition, but the *stopping rule* is
    # not (completion is re-checked every round), so rounds are compiled
    # and submitted one at a time; the win here is the channel-grouped
    # listener fan-out, which only touches listeners that decoded a frame.
    while not done() and rounds < max_rounds:
        transmits: dict[int, Transmit] = {}
        by_channel: dict[int, list[int]] = {}
        listen_count = 0
        for node in range(n):
            stream = streams[node]
            channel = stream.randrange(network.channels)
            if stream.random() < 1.0 / n:
                transmits[node] = Transmit(
                    channel,
                    Message(
                        kind=GOSSIP_RUMOR_KIND,
                        sender=node,
                        payload=("rumor", node),
                    ),
                )
            else:
                by_channel.setdefault(channel, []).append(node)
                listen_count += 1
        [heard] = network.execute_schedule(
            RoundSchedule(
                [
                    CompiledRound(
                        transmits=transmits,
                        listens=by_channel,
                        meta=meta,
                        listen_count=listen_count,
                    )
                ]
            )
        )
        rounds += 1
        for channel, frame in heard.items():
            if frame.kind != GOSSIP_RUMOR_KIND:
                continue
            try:
                _tag, rumor = frame.payload
            except (TypeError, ValueError):
                continue
            for node in by_channel[channel]:
                # No authentication: the rumor is accepted as-is.
                if not isinstance(rumor, int) or not 0 <= rumor < n:
                    spoofs_accepted += 1
                elif frame.sender != rumor:
                    spoofs_accepted += 1
                    knowledge[node].add(rumor)
                else:
                    knowledge[node].add(rumor)
    return GossipResult(
        rounds=network.metrics.rounds - start,
        completed=done(),
        knowledge=knowledge,
        spoofed_rumors_accepted=spoofs_accepted,
    )
