"""Deterministic, named random-number substreams.

Every source of randomness in the library flows through a :class:`RngRegistry`
so that an entire experiment is replayable bit-for-bit from a single integer
seed.  Each consumer asks the registry for a *named* substream; the substream
seed is derived by hashing the master seed together with the name, which makes
streams independent of the order in which they are requested.

The paper's model (Section 3) distinguishes the honest nodes' coins from the
adversary's coins, and assumes the adversary learns honest coins only at the
end of each round.  Keeping the streams separate in code makes it impossible
for an adversary implementation to accidentally consume (and thereby observe)
honest randomness.

The interpreter-mirroring invariant (block draws)
-------------------------------------------------
The protocols here are *oblivious*: every hop sequence is private coin flips
drawn independently of anything observed mid-phase, so whole hop matrices can
be materialized in bulk.  This module is the single home of the contract that
makes the bulk paths exchangeable with the naive ones:

    For a plain :class:`random.Random`, one uniform draw from ``range(n)``
    is ``getrandbits(n.bit_length())`` rejection-sampled until the value is
    ``< n`` — CPython's ``_randbelow_with_getrandbits``, the primitive under
    both ``choice`` and single-argument ``randrange``.

:func:`draw_uniform_indices` (one rejection chain per draw),
:class:`BlockDrawer` / :func:`draw_uniform_block` (one bulk
``getrandbits(32 * shortfall)`` pull per pass — the same Mersenne-Twister
words as that many single draws, since every ``getrandbits(k)`` with
``k <= 32`` consumes exactly one 32-bit word — with values extracted and
rejections dropped at C level) and a ``choice``/``randrange(n)`` loop
therefore consume **byte-identical** generator state and produce identical
values: the block sampler pulls exactly ``remaining`` words per pass, and a
pass can only reach ``remaining`` acceptances on its final word, so it can
never overshoot the sequential chain.  The feedback equivalence gauntlets
and the hypothesis properties in
``tests/test_schedule_properties.py`` pin values *and* post-draw state
against the real ``choice``-driven path.  Exotic stream types (anything that
is not exactly ``random.Random``) fall back to calling ``choice`` itself on
every path.

Example
-------
>>> reg = RngRegistry(seed=7)
>>> a = reg.stream("node", 3)
>>> b = reg.stream("adversary")
>>> a.randrange(10) == RngRegistry(seed=7).stream("node", 3).randrange(10)
True
"""

from __future__ import annotations

import hashlib
import random
from collections.abc import Iterable, Sequence
from typing import TypeVar

T = TypeVar("T")

_MASK_64 = (1 << 64) - 1


def derive_seed(master_seed: int, *name_parts: object) -> int:
    """Derive a 64-bit substream seed from ``master_seed`` and a name.

    The derivation hashes the canonical string representation of the parts
    with SHA-256, so any hashable/printable identifiers (strings, ints,
    tuples) may be used as name components.
    """
    material = repr((master_seed,) + tuple(str(p) for p in name_parts))
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & _MASK_64


def derive_seeds(
    master_seed: int, *prefix_parts: object, count: int
) -> list[int]:
    """Bulk trial-seed derivation: the seeds of
    ``RngRegistry(master_seed).spawn(*prefix_parts, i)`` for ``i`` in
    ``range(count)``, without constructing any intermediate registries.

    One SHA-256 per index over a precomputed prefix (the spawn tuple's
    ``repr`` is reopened per index), so sweep/Monte Carlo planners can
    derive thousands of trial seeds in a single hashlib loop.  Proven
    identical to the per-call ``spawn(...).seed`` path by
    ``tests/test_rng.py``.
    """
    base = (master_seed, "spawn") + tuple(str(p) for p in prefix_parts)
    prefix = repr(base)[:-1]  # "(seed, 'spawn', ...": reopened per index
    sha256 = hashlib.sha256
    from_bytes = int.from_bytes
    out: list[int] = []
    append = out.append
    for i in range(count):
        digest = sha256(f"{prefix}, '{i}')".encode("utf-8")).digest()
        append(from_bytes(digest[:8], "big") & _MASK_64)
    return out


class RngRegistry:
    """Factory for independent, reproducible :class:`random.Random` streams.

    Parameters
    ----------
    seed:
        Master seed.  Two registries with the same seed produce identical
        substreams for identical names.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[tuple[str, ...], random.Random] = {}

    @property
    def seed(self) -> int:
        """The master seed this registry was created with."""
        return self._seed

    def stream(self, *name_parts: object) -> random.Random:
        """Return the substream for ``name_parts``, creating it on demand.

        Repeated calls with the same name return the *same* stream object,
        so state advances across calls; use distinct names for independent
        streams.
        """
        key = tuple(str(p) for p in name_parts)
        stream = self._streams.get(key)
        if stream is None:
            stream = random.Random(derive_seed(self._seed, *key))
            self._streams[key] = stream
        return stream

    def fresh(self, *name_parts: object) -> random.Random:
        """Return a brand-new stream seeded for ``name_parts``.

        Unlike :meth:`stream`, the result is not cached: every call restarts
        from the derived seed.  Useful for replaying one component.
        """
        return random.Random(derive_seed(self._seed, *name_parts))

    def spawn(self, *name_parts: object) -> "RngRegistry":
        """Return a child registry whose master seed is derived from a name.

        Child registries let a sub-protocol (e.g. one f-AME invocation inside
        the group-key protocol) own a private namespace of streams.
        """
        return RngRegistry(derive_seed(self._seed, "spawn", *name_parts))

    def spawn_seeds(self, *prefix_parts: object, count: int) -> list[int]:
        """Bulk form of ``[self.spawn(*prefix_parts, i).seed for i in
        range(count)]`` — see :func:`derive_seeds`."""
        return derive_seeds(self._seed, *prefix_parts, count=count)

    def stream_block(
        self, *prefix_parts: object, nodes: Iterable[object]
    ) -> list[random.Random]:
        """Bulk form of ``[self.stream(*prefix_parts, v) for v in nodes]``.

        Identical streams (same objects for already-cached names, same
        seeds and registry-cache entries for new ones), built with one
        precomputed name-``repr`` prefix and one SHA-256 per missing node
        instead of a key construction + hash + lookup per call — the hot
        path under the compiled feedback pipelines, which need a whole
        per-listener stream table per invocation.  The fast derivation
        applies when the prefix is non-empty and every node is a plain
        ``int`` (``repr`` of a stringified int is always
        ``'<digits>'``-quoted, so the spliced material equals the full
        tuple ``repr`` :func:`derive_seed` hashes); anything else falls
        back to per-call :meth:`stream`.
        """
        items = list(nodes)
        if not prefix_parts or not all(type(v) is int for v in items):
            return [self.stream(*prefix_parts, v) for v in items]
        prefix = tuple(str(p) for p in prefix_parts)
        opening = repr((self._seed,) + prefix)[:-1]
        streams = self._streams
        get = streams.get
        sha256 = hashlib.sha256
        from_bytes = int.from_bytes
        Random = random.Random
        out: list[random.Random] = []
        append = out.append
        for v in items:
            key = prefix + (str(v),)
            stream = get(key)
            if stream is None:
                digest = sha256(f"{opening}, '{v}')".encode("utf-8")).digest()
                stream = Random(from_bytes(digest[:8], "big") & _MASK_64)
                streams[key] = stream
            append(stream)
        return out


def draw_uniform_indices(
    stream: random.Random, n: int, count: int
) -> list[int]:
    """``count`` uniform draws from ``range(n)``, stream-compatible with
    ``choice``.

    Consumes **exactly** the same generator state as ``count`` calls of
    ``stream.choice(seq)`` on a length-``n`` sequence: for a plain
    :class:`random.Random` the ``choice`` internals are inlined — one
    rejection chain per draw, per the interpreter-mirroring invariant in
    the module docstring — saving two Python frames per draw on hot paths
    that precompute whole hop sequences.  :class:`BlockDrawer` batches the
    same chain with amortized block pulls; the two are byte-identical.
    Exotic stream types fall back to calling ``choice`` itself.

    Raises :class:`ValueError` when ``n <= 0``: an empty range is a caller
    bug in this API, reported like ``sample``'s over-draw ``ValueError``
    (deliberately *not* ``choice``'s ``IndexError`` — ``n`` is a count
    here, not a sequence lookup).  The guard sits before either path:
    without it the fast path's rejection loop — ``getrandbits(0)`` is
    always ``0``, which is never ``< n`` — would spin forever, and the
    fallback would surface ``choice``'s ``IndexError`` instead.
    """
    if n <= 0:
        raise ValueError(f"cannot draw indices from an empty range (n={n})")
    if type(stream) is random.Random:
        k = n.bit_length()
        grb = stream.getrandbits
        out: list[int] = []
        append = out.append
        for _ in range(count):
            r = grb(k)
            while r >= n:
                r = grb(k)
            append(r)
        return out
    seq = range(n)
    return [stream.choice(seq) for _ in range(count)]


# Bulk passes only pay off while the shortfall amortizes their fixed cost
# (one getrandbits + to_bytes + slice + translate); below this the inline
# rejection chain is faster.  Tuned empirically; correctness is unaffected
# (both paths consume identical generator state).
_BULK_THRESHOLD = 24

# (value-extraction table, rejected-byte set) per range size, built once:
# channel counts recur constantly and the 256-entry tables cost more to
# build than a whole block draw.
_TABLE_CACHE: dict[int, tuple[bytes, bytes]] = {}
_TABLE_CACHE_CAP = 4096


def _byte_tables(n: int, k: int) -> tuple[bytes, bytes]:
    cached = _TABLE_CACHE.get(n)
    if cached is None:
        shift = 8 - k
        if len(_TABLE_CACHE) >= _TABLE_CACHE_CAP:
            _TABLE_CACHE.clear()
        cached = (
            bytes(b >> shift for b in range(256)),
            bytes(range(n << shift, 256)),
        )
        _TABLE_CACHE[n] = cached
    return cached


class BlockDrawer:
    """Batched uniform index draws from ``range(n)``, ``choice``-compatible.

    Materializes whole hop sequences (and, via :meth:`matrix`, whole hop
    matrices) without an interpreter round-trip per draw.  Each
    ``getrandbits(k)`` with ``0 < k <= 32`` consumes exactly one 32-bit
    Mersenne-Twister word and returns its top ``k`` bits, so one bulk
    ``getrandbits(32 * m)`` call consumes the *same* ``m`` words as ``m``
    single draws — word ``i`` sits at little-endian byte offset ``4 * i``
    of the bulk value.  For ``n < 256`` (every radio channel count) the
    draw value is therefore the high byte of its word shifted down by
    ``8 - k``, and a whole pass reduces to C-level primitives:
    ``to_bytes``, a ``[3::4]`` high-byte slice, and one
    :meth:`bytes.translate` whose delete-set drops rejected words while
    its table maps survivors to their values.  A pass pulls exactly the
    outstanding shortfall and can only complete on its final word, so the
    sampler never pulls a word the sequential rejection chain would not
    have pulled; small shortfalls (and ``n >= 256``) finish on the inline
    chain instead of paying bulk setup.  Values and post-draw generator
    state are byte-identical to :func:`draw_uniform_indices` and to a
    ``choice`` loop on every path (the module docstring's invariant;
    pinned by the hypothesis properties and the feedback gauntlets).

    Raises :class:`ValueError` on construction when ``n <= 0``, mirroring
    :func:`draw_uniform_indices` (even for zero-count draws).  Exotic
    stream types fall back to a ``choice`` loop per stream.
    """

    __slots__ = ("n", "_k", "_table", "_reject")

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise ValueError(
                f"cannot draw indices from an empty range (n={n})"
            )
        self.n = int(n)
        self._k = self.n.bit_length()
        if self._k <= 8:
            self._table, self._reject = _byte_tables(self.n, self._k)
        else:
            self._table = self._reject = None

    def draw(self, stream: random.Random, count: int) -> list[int]:
        """``count`` uniform draws from ``range(self.n)`` off ``stream``."""
        if type(stream) is not random.Random:
            seq = range(self.n)
            return [stream.choice(seq) for _ in range(count)]
        n = self.n
        k = self._k
        grb = stream.getrandbits
        out: list[int] = []
        short = count
        table = self._table
        if table is not None:
            reject = self._reject
            while short >= _BULK_THRESHOLD:
                raw = grb(32 * short).to_bytes(4 * short, "little")
                out += raw[3::4].translate(table, reject)
                short = count - len(out)
        if short:
            append = out.append
            for _ in range(short):
                r = grb(k)
                while r >= n:
                    r = grb(k)
                append(r)
        return out

    def matrix(
        self, streams: Iterable[random.Random], count: int
    ) -> list[list[int]]:
        """One length-``count`` hop sequence per stream, in stream order."""
        draw = self.draw
        return [draw(stream, count) for stream in streams]


def draw_uniform_block(
    stream: random.Random, n: int, count: int
) -> list[int]:
    """Functional form of :meth:`BlockDrawer.draw`; byte-identical to
    :func:`draw_uniform_indices` (see the module docstring's invariant)."""
    return BlockDrawer(n).draw(stream, count)


def sample_distinct(rng: random.Random, population: Sequence[T], k: int) -> list[T]:
    """Sample ``k`` distinct elements; a deterministic thin wrapper.

    Sequence populations (lists, tuples, ``range``) are passed to
    :func:`random.sample` directly — ``sample`` never mutates its input, so
    the historical ``list(population)`` wrapper copied a population that
    was frequently already a fresh list (and ``sample`` re-copies into its
    selection pool for large ``k`` anyway).  Only non-sequence iterables
    are materialized.  Draw consumption is unchanged: ``sample``'s
    algorithm depends only on ``len(population)`` and ``k``.

    Raises :class:`ValueError` when ``k`` exceeds the population size, same
    as :func:`random.sample`.
    """
    if not isinstance(population, Sequence):
        population = list(population)
    return rng.sample(population, k)


def shuffled(rng: random.Random, items: Iterable[T]) -> list[T]:
    """Return a new shuffled list of ``items`` without mutating the input.

    The single ``list(items)`` is the materialization (for iterators) or
    the one no-mutation copy (for sequences) — there is no second pass;
    draw consumption is exactly one :meth:`random.Random.shuffle` of a
    length-``len(items)`` list.
    """
    out = list(items)
    rng.shuffle(out)
    return out
