"""Deterministic, named random-number substreams.

Every source of randomness in the library flows through a :class:`RngRegistry`
so that an entire experiment is replayable bit-for-bit from a single integer
seed.  Each consumer asks the registry for a *named* substream; the substream
seed is derived by hashing the master seed together with the name, which makes
streams independent of the order in which they are requested.

The paper's model (Section 3) distinguishes the honest nodes' coins from the
adversary's coins, and assumes the adversary learns honest coins only at the
end of each round.  Keeping the streams separate in code makes it impossible
for an adversary implementation to accidentally consume (and thereby observe)
honest randomness.

Example
-------
>>> reg = RngRegistry(seed=7)
>>> a = reg.stream("node", 3)
>>> b = reg.stream("adversary")
>>> a.randrange(10) == RngRegistry(seed=7).stream("node", 3).randrange(10)
True
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")

_MASK_64 = (1 << 64) - 1


def derive_seed(master_seed: int, *name_parts: object) -> int:
    """Derive a 64-bit substream seed from ``master_seed`` and a name.

    The derivation hashes the canonical string representation of the parts
    with SHA-256, so any hashable/printable identifiers (strings, ints,
    tuples) may be used as name components.
    """
    material = repr((master_seed,) + tuple(str(p) for p in name_parts))
    digest = hashlib.sha256(material.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & _MASK_64


class RngRegistry:
    """Factory for independent, reproducible :class:`random.Random` streams.

    Parameters
    ----------
    seed:
        Master seed.  Two registries with the same seed produce identical
        substreams for identical names.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[tuple[str, ...], random.Random] = {}

    @property
    def seed(self) -> int:
        """The master seed this registry was created with."""
        return self._seed

    def stream(self, *name_parts: object) -> random.Random:
        """Return the substream for ``name_parts``, creating it on demand.

        Repeated calls with the same name return the *same* stream object,
        so state advances across calls; use distinct names for independent
        streams.
        """
        key = tuple(str(p) for p in name_parts)
        stream = self._streams.get(key)
        if stream is None:
            stream = random.Random(derive_seed(self._seed, *key))
            self._streams[key] = stream
        return stream

    def fresh(self, *name_parts: object) -> random.Random:
        """Return a brand-new stream seeded for ``name_parts``.

        Unlike :meth:`stream`, the result is not cached: every call restarts
        from the derived seed.  Useful for replaying one component.
        """
        return random.Random(derive_seed(self._seed, *name_parts))

    def spawn(self, *name_parts: object) -> "RngRegistry":
        """Return a child registry whose master seed is derived from a name.

        Child registries let a sub-protocol (e.g. one f-AME invocation inside
        the group-key protocol) own a private namespace of streams.
        """
        return RngRegistry(derive_seed(self._seed, "spawn", *name_parts))


def draw_uniform_indices(
    stream: random.Random, n: int, count: int
) -> list[int]:
    """``count`` uniform draws from ``range(n)``, stream-compatible with
    ``choice``.

    Consumes **exactly** the same generator state as ``count`` calls of
    ``stream.choice(seq)`` on a length-``n`` sequence: for a plain
    :class:`random.Random` the ``choice`` internals are inlined —
    ``getrandbits(n.bit_length())`` rejection-sampled until the draw is in
    range, which is CPython's ``_randbelow_with_getrandbits`` — saving two
    Python frames per draw on hot paths that precompute whole hop
    sequences.  This is the single home of that interpreter-mirroring
    invariant; the feedback equivalence tests pin it bit-for-bit against
    the real ``choice``-driven path.  Exotic stream types fall back to
    calling ``choice`` itself.

    Raises :class:`ValueError` when ``n <= 0``: an empty range is a caller
    bug in this API, reported like ``sample``'s over-draw ``ValueError``
    (deliberately *not* ``choice``'s ``IndexError`` — ``n`` is a count
    here, not a sequence lookup).  The guard sits before either path:
    without it the fast path's rejection loop — ``getrandbits(0)`` is
    always ``0``, which is never ``< n`` — would spin forever, and the
    fallback would surface ``choice``'s ``IndexError`` instead.
    """
    if n <= 0:
        raise ValueError(f"cannot draw indices from an empty range (n={n})")
    if type(stream) is random.Random:
        k = n.bit_length()
        grb = stream.getrandbits
        out: list[int] = []
        append = out.append
        for _ in range(count):
            r = grb(k)
            while r >= n:
                r = grb(k)
            append(r)
        return out
    seq = range(n)
    return [stream.choice(seq) for _ in range(count)]


def sample_distinct(rng: random.Random, population: Sequence[T], k: int) -> list[T]:
    """Sample ``k`` distinct elements; a deterministic thin wrapper.

    Raises :class:`ValueError` when ``k`` exceeds the population size, same
    as :func:`random.sample`.
    """
    return rng.sample(list(population), k)


def shuffled(rng: random.Random, items: Iterable[T]) -> list[T]:
    """Return a new shuffled list of ``items`` without mutating the input."""
    out = list(items)
    rng.shuffle(out)
    return out
