"""Typed request/response wire protocol for the key-service daemon.

Every frame on a ``repro serve`` connection is the dispatch layer's
length-prefixed pickle (:func:`repro.dispatch.socket_pool.send_frame` /
:class:`~repro.dispatch.socket_pool.FrameDecoder`, decoded through
:func:`repro.dispatch.wire.loads_restricted`), but the *payload* is a
plain dict of containers and scalars only — no class ever rides the
wire, so the restricted unpickler's ``find_class`` allowlist stays
exactly as small as the sweep dispatcher left it.  The typing lives at
both endpoints instead: requests and responses are frozen dataclasses
that :func:`encode_request`/:func:`decode_request` and
:func:`encode_response`/:func:`decode_response` map onto those dicts,
validating shape on the way in and surfacing every malformation as a
typed ``bad-request`` failure, never a raw exception.

Frame shapes
------------
* client → ``{"kind": "hello", "protocol": 1, "repro": ..., "client": ...}``
* daemon → ``{"kind": "welcome", "protocol": 1}`` or ``{"kind":
  "reject", "reason": ...}`` (version mismatch: the stray client is
  turned away, the daemon keeps serving everyone else);
* client → ``{"kind": <request kind>, "req": <id>, ...fields}`` — the
  ``req`` id is an opaque client-chosen token echoed in the response
  (responses arrive in request order; the echo lets pipelining clients
  pair them without counting);
* daemon → ``{"kind": <response kind>, "req": <id>, ...fields}`` or the
  typed failure frame ``{"kind": "fail", "req": <id>, "code": ...,
  "message": ...}``.

Failure codes are the :data:`FAILURE_CODES` catalog; the client
re-raises them as :class:`~repro.errors.ServiceError` with ``code``
intact.  ``busy`` is the backpressure signal: a session's bounded send
queue is full (or the host's session table is), and the request was
refused *without* side effects — retry after draining.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import ClassVar, Mapping

from ..errors import ServiceError
from ..service.emulated_channel import Delivery

SERVE_PROTOCOL = 1
"""Daemon/client wire-protocol version, checked in the handshake."""

DEFAULT_MAX_PENDING = 64
"""Default bound on a session's unflushed send queue (the ``busy``
backpressure threshold)."""

# The failure-code catalog.  Every daemon refusal is exactly one of
# these; tests and clients match on the code, not the message.
BUSY = "busy"
UNKNOWN_SESSION = "unknown-session"
DUPLICATE_SESSION = "duplicate-session"
NOT_A_MEMBER = "not-a-member"
FORMER_MEMBER = "former-member"
BAD_REQUEST = "bad-request"
INVALID_CONFIG = "invalid-config"
REKEY_FAILED = "rekey-failed"
SHUTTING_DOWN = "shutting-down"
INTERNAL = "internal"

FAILURE_CODES = frozenset(
    {
        BUSY,
        UNKNOWN_SESSION,
        DUPLICATE_SESSION,
        NOT_A_MEMBER,
        FORMER_MEMBER,
        BAD_REQUEST,
        INVALID_CONFIG,
        REKEY_FAILED,
        SHUTTING_DOWN,
        INTERNAL,
    }
)


def _as_dict(obj) -> dict:
    """Field dict of a protocol dataclass (shallow: fields are plain)."""
    return {f.name: getattr(obj, f.name) for f in fields(obj)}


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class OpenSession:
    """Create a session; the opening connection is attached to it."""

    KIND: ClassVar[str] = "open-session"

    name: str
    n: int = 8
    channels: int = 2
    t: int = 1
    mode: str = "preshared"  # or "group": run the full Section 6 setup
    adversary: str | None = None  # gallery name; None = quiet network
    members: tuple[int, ...] = ()  # preshared mode; () = every node
    rekey_interval: int = 0  # scheduled rekey every N emulated rounds
    max_pending: int = DEFAULT_MAX_PENDING


@dataclass(frozen=True)
class JoinSession:
    """Attach this connection to an existing session."""

    KIND: ClassVar[str] = "join-session"

    name: str


@dataclass(frozen=True)
class LeaveSession:
    """Detach this connection from a session (the session persists)."""

    KIND: ClassVar[str] = "leave-session"

    name: str


@dataclass(frozen=True)
class CloseSession:
    """Tear a session down; its name becomes reusable."""

    KIND: ClassVar[str] = "close-session"

    name: str


@dataclass(frozen=True)
class SendMessage:
    """Enqueue one broadcast (bounded queue: may fail ``busy``)."""

    KIND: ClassVar[str] = "send"

    name: str
    sender: int
    payload: bytes


@dataclass(frozen=True)
class Flush:
    """Drain the session queue, one message per emulated round."""

    KIND: ClassVar[str] = "flush"

    name: str
    max_rounds: int | None = None


@dataclass(frozen=True)
class DrainInbox:
    """A member's deliveries since this connection last drained them."""

    KIND: ClassVar[str] = "drain-inbox"

    name: str
    member: int
    include_former: bool = False


@dataclass(frozen=True)
class Rekey:
    """Exclude compromised members and switch to a fresh group key."""

    KIND: ClassVar[str] = "rekey"

    name: str
    compromised: tuple[int, ...] = ()


@dataclass(frozen=True)
class SessionStatsReq:
    """Accounting snapshot for one session."""

    KIND: ClassVar[str] = "stats"

    name: str


@dataclass(frozen=True)
class RunScenario:
    """Run one registered attack scenario inside the daemon.

    The scenario is self-contained (it builds its own networks and, for
    serve-layer attacks, its own synchronous host) and deterministic in
    ``(name, seed)``, so the daemon-side run is byte-identical to a
    local ``python -m repro scenario run``.  Unknown names fail
    ``bad-request``.
    """

    KIND: ClassVar[str] = "run-scenario"

    name: str
    seed: int = 0


@dataclass(frozen=True)
class ListSessions:
    """Names of every live session."""

    KIND: ClassVar[str] = "list-sessions"


@dataclass(frozen=True)
class Shutdown:
    """Stop the daemon (acknowledged before the listener closes)."""

    KIND: ClassVar[str] = "shutdown"


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class SessionOpened:
    KIND: ClassVar[str] = "session-opened"

    name: str
    members: tuple[int, ...]
    mode: str
    epoch_length: int
    setup_rounds: int
    generation: int


@dataclass(frozen=True)
class SessionJoined:
    KIND: ClassVar[str] = "session-joined"

    name: str
    members: tuple[int, ...]
    generation: int


@dataclass(frozen=True)
class SessionLeft:
    KIND: ClassVar[str] = "session-left"

    name: str


@dataclass(frozen=True)
class SessionClosed:
    KIND: ClassVar[str] = "session-closed"

    name: str


@dataclass(frozen=True)
class Sent:
    KIND: ClassVar[str] = "sent"

    name: str
    pending: int


@dataclass(frozen=True)
class Flushed:
    """Flush outcome.

    ``deliveries`` are ``(member, emulated_round, sender, payload)``
    tuples in delivery order; ``rekeys`` are the scheduled re-keys the
    flush triggered, as :func:`rekey_tuple` rows.
    """

    KIND: ClassVar[str] = "flushed"

    name: str
    deliveries: tuple[tuple[int, int, int, bytes], ...]
    emulated_rounds: int
    pending: int
    rekeys: tuple[tuple, ...] = ()


@dataclass(frozen=True)
class InboxBatch:
    """``(emulated_round, sender, payload)`` rows for one member."""

    KIND: ClassVar[str] = "inbox"

    name: str
    member: int
    deliveries: tuple[tuple[int, int, bytes], ...]


@dataclass(frozen=True)
class RekeyDone:
    KIND: ClassVar[str] = "rekey-done"

    name: str
    generation: int
    distributor: int
    members: tuple[int, ...]
    excluded: tuple[int, ...]
    dropped: tuple[int, ...]
    rounds: int


@dataclass(frozen=True)
class SessionStatsInfo:
    KIND: ClassVar[str] = "stats-info"

    name: str
    members: tuple[int, ...]
    mode: str
    generation: int
    pending: int
    attached: int
    setup_rounds: int
    emulated_rounds: int
    real_rounds: int
    sent: int
    delivered: int
    undelivered: int
    rekeys: int


@dataclass(frozen=True)
class SessionList:
    KIND: ClassVar[str] = "session-list"

    names: tuple[str, ...]


@dataclass(frozen=True)
class ScenarioOutcome:
    """One scenario run's record, outcomes as plain encoded rows.

    ``expected`` and ``observed`` are
    :func:`repro.scenarios.outcomes.encode_outcome` tuples (kind plus
    scalar fields) — :func:`~repro.scenarios.outcomes.decode_outcome`
    rebuilds the typed outcome client-side, so no scenario class ever
    rides the wire.
    """

    KIND: ClassVar[str] = "scenario-outcome"

    name: str
    layer: str
    seed: int
    expected: tuple
    observed: tuple
    matched: bool
    detail: tuple[tuple, ...] = ()


@dataclass(frozen=True)
class ShuttingDown:
    KIND: ClassVar[str] = "shutting-down"


@dataclass(frozen=True)
class Failure:
    """The typed failure frame — the only way errors cross the wire."""

    KIND: ClassVar[str] = "fail"

    code: str
    message: str

    def raise_(self) -> None:
        raise ServiceError(self.code, self.message)


REQUEST_TYPES: dict[str, type] = {
    cls.KIND: cls
    for cls in (
        OpenSession, JoinSession, LeaveSession, CloseSession, SendMessage,
        Flush, DrainInbox, Rekey, SessionStatsReq, RunScenario,
        ListSessions, Shutdown,
    )
}

RESPONSE_TYPES: dict[str, type] = {
    cls.KIND: cls
    for cls in (
        SessionOpened, SessionJoined, SessionLeft, SessionClosed, Sent,
        Flushed, InboxBatch, RekeyDone, SessionStatsInfo, ScenarioOutcome,
        SessionList, ShuttingDown, Failure,
    )
}


# ----------------------------------------------------------------------
# Encode / decode
# ----------------------------------------------------------------------


def _normalise(value):
    """Round pickled containers back to the dataclass field shapes.

    Tuples of tuples survive pickling as-is; this only guards the
    boundary cases (a list-typed axis from a hand-built client) so the
    dataclasses always hold hashable tuples.
    """
    if isinstance(value, list):
        return tuple(_normalise(v) for v in value)
    if isinstance(value, tuple):
        return tuple(_normalise(v) for v in value)
    return value


def _decode(types: Mapping[str, type], frame: object):
    if not isinstance(frame, dict):
        raise ServiceError(BAD_REQUEST, f"frame is not a dict: {frame!r}")
    kind = frame.get("kind")
    cls = types.get(kind)
    if cls is None:
        raise ServiceError(BAD_REQUEST, f"unknown frame kind {kind!r}")
    payload = {
        key: _normalise(value)
        for key, value in frame.items()
        if key not in ("kind", "req")
    }
    try:
        return cls(**payload)
    except TypeError as exc:
        raise ServiceError(
            BAD_REQUEST, f"malformed {kind!r} frame: {exc}"
        ) from None


def encode_request(req_id: int, request) -> dict:
    """Wire dict for ``request``, tagged with the client's ``req`` id."""
    return {"kind": request.KIND, "req": req_id, **_as_dict(request)}


def decode_request(frame: object) -> tuple[object, object]:
    """``(req_id, request)``; malformation raises a ``bad-request``
    :class:`~repro.errors.ServiceError` (the daemon answers it as a
    typed failure frame — raw exceptions never reach the wire)."""
    request = _decode(REQUEST_TYPES, frame)
    req_id = frame.get("req") if isinstance(frame, dict) else None
    return req_id, request


def encode_response(req_id: object, response) -> dict:
    """Wire dict for ``response``, echoing the request's ``req`` id."""
    return {"kind": response.KIND, "req": req_id, **_as_dict(response)}


def decode_response(frame: object) -> tuple[object, object]:
    """``(req_id, response)`` — the client-side mirror of
    :func:`decode_request`."""
    response = _decode(RESPONSE_TYPES, frame)
    req_id = frame.get("req") if isinstance(frame, dict) else None
    return req_id, response


# ----------------------------------------------------------------------
# Delivery row helpers
# ----------------------------------------------------------------------


def delivery_row(member: int, delivery: Delivery) -> tuple[int, int, int, bytes]:
    """The :class:`Flushed` wire row for one member's delivery."""
    return (member, delivery.emulated_round, delivery.sender, delivery.payload)


def inbox_row(delivery: Delivery) -> tuple[int, int, bytes]:
    """The :class:`InboxBatch` wire row for one delivery."""
    return (delivery.emulated_round, delivery.sender, delivery.payload)


def row_delivery(row: tuple[int, int, bytes]) -> Delivery:
    """Rebuild a typed :class:`~repro.service.emulated_channel.Delivery`
    from an :func:`inbox_row` tuple (the client-side view)."""
    emulated_round, sender, payload = row
    return Delivery(
        emulated_round=int(emulated_round),
        sender=int(sender),
        payload=bytes(payload),
    )


def rekey_tuple(report) -> tuple:
    """The wire row for a :class:`~repro.service.session.RekeyReport`."""
    return (
        report.generation,
        report.distributor,
        tuple(report.members),
        tuple(report.excluded),
        tuple(report.dropped),
        report.rounds,
    )
