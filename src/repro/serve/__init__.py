"""The multi-session key-service daemon (``python -m repro serve``).

The paper's Section 7 service is setup-once, communicate-forever; this
package is the "forever" part as an actual process: a selectors-based
daemon multiplexing many concurrent :class:`~repro.service.session.
SecureSession` group sessions (create/join/leave churn, scheduled and
on-demand re-keys, per-session adversaries) behind a typed
request/response wire protocol with bounded queues and typed failure
frames.

Layers:

* :mod:`~repro.serve.protocol` — frozen request/response dataclasses
  and their plain-dict wire encoding (the restricted unpickler's
  allowlist is never widened);
* :mod:`~repro.serve.host` — :class:`~repro.serve.host.SessionHost`,
  the clock-free session registry and request dispatcher (drive it
  directly for byte-identical synchronous replays);
* :mod:`~repro.serve.daemon` — the socket event loop;
* :mod:`~repro.serve.client` — :class:`~repro.serve.client.
  ServiceClient`, the blocking API.
"""

from .client import ServiceClient
from .daemon import ServeDaemon, serve_main
from .host import HostedSession, SessionHost

__all__ = [
    "HostedSession",
    "ServeDaemon",
    "ServiceClient",
    "SessionHost",
    "serve_main",
]
