"""Session hosting: the daemon's brain, with no sockets in it.

:class:`SessionHost` owns every live :class:`~repro.service.session.
SecureSession` and services decoded protocol requests through one
:meth:`~SessionHost.handle` dispatcher.  The daemon is a thin transport
around it — and that split is the determinism story: the host never
reads a clock or an unseeded RNG, so driving the *same* requests through
``handle`` synchronously (tests, benchmarks) or through thousands of
multiplexed connections produces byte-identical per-session deliveries.
Each session's randomness is a registry spawned from the host seed and
the session *name*, so sessions are independent of creation order and of
each other.

Refusals are :class:`~repro.errors.ServiceError` with codes from the
:mod:`~repro.serve.protocol` catalog; the caller (daemon or test) maps
them to ``fail`` frames.  Backpressure is enforced here: a session's
unflushed queue is bounded by its ``max_pending`` and the host's session
table by ``max_sessions``, both refusing with ``busy`` *before* any side
effect, so a refused request is always safely retryable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..adversary import NullAdversary
from ..errors import (
    ConfigurationError,
    ReproError,
    ScenarioError,
    ServiceError,
)
from ..experiments.workloads import make_adversary, make_network
from ..rng import RngRegistry
from ..service.session import SecureSession
from . import protocol as p

DEFAULT_MAX_SESSIONS = 4096
"""Default bound on the host's session table (the host-level ``busy``)."""

SESSION_MODES = ("preshared", "group")


@dataclass
class HostedSession:
    """One live session plus the host's bookkeeping around it.

    ``attached`` are the connection tokens currently joined; ``cursors``
    give each token an independent read position per member inbox, so
    two clients draining the same member each see every delivery exactly
    once.  ``rounds_since_rekey`` drives scheduled re-keys: when a flush
    pushes it past ``rekey_interval``, the host rotates the group key
    mid-flush (empty compromised set) before draining further messages.
    """

    name: str
    session: SecureSession
    mode: str
    adversary: str | None
    rekey_interval: int
    max_pending: int
    attached: set = field(default_factory=set)
    cursors: dict = field(default_factory=dict)  # token -> {member: int}
    rounds_since_rekey: int = 0
    rekey_count: int = 0

    def cursor_for(self, token: object) -> dict:
        return self.cursors.setdefault(token, {})


class SessionHost:
    """Registry and request dispatcher for multiplexed secure sessions."""

    def __init__(
        self,
        seed: int = 0,
        *,
        max_sessions: int = DEFAULT_MAX_SESSIONS,
    ) -> None:
        self.rng = RngRegistry(seed=seed)
        self.max_sessions = int(max_sessions)
        self.sessions: dict[str, HostedSession] = {}
        self.shutting_down = False

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------

    def _get(self, name: str) -> HostedSession:
        hosted = self.sessions.get(name)
        if hosted is None:
            raise ServiceError(
                p.UNKNOWN_SESSION, f"no session named {name!r}"
            )
        return hosted

    # ------------------------------------------------------------------
    # Session lifecycle
    # ------------------------------------------------------------------

    def open_session(self, token: object, req: p.OpenSession) -> p.SessionOpened:
        if self.shutting_down:
            raise ServiceError(p.SHUTTING_DOWN, "host is shutting down")
        if not req.name or not isinstance(req.name, str):
            raise ServiceError(p.INVALID_CONFIG, "session name must be a non-empty string")
        if req.name in self.sessions:
            raise ServiceError(
                p.DUPLICATE_SESSION, f"session {req.name!r} already exists"
            )
        if len(self.sessions) >= self.max_sessions:
            raise ServiceError(
                p.BUSY,
                f"session table full ({self.max_sessions}); "
                "close a session and retry",
            )
        if req.mode not in SESSION_MODES:
            raise ServiceError(
                p.INVALID_CONFIG,
                f"unknown mode {req.mode!r}; pick from {SESSION_MODES}",
            )
        if req.max_pending < 1:
            raise ServiceError(
                p.INVALID_CONFIG, "max_pending must be at least 1"
            )
        if req.rekey_interval < 0:
            raise ServiceError(
                p.INVALID_CONFIG, "rekey_interval must be non-negative"
            )

        # The session's whole universe of randomness hangs off its name,
        # never off creation order or a clock: byte-identical replays.
        registry = self.rng.spawn("serve", req.name)
        try:
            if req.adversary is None:
                adversary = NullAdversary()
            else:
                adversary = make_adversary(
                    req.adversary, registry.stream("adversary")
                )
            network = make_network(req.n, req.channels, req.t, adversary)
            if req.mode == "preshared":
                members = req.members or tuple(range(req.n))
                group_key = bytes(
                    registry.stream("group-key").randbytes(32)
                )
                session = SecureSession.from_preshared(
                    network,
                    group_key,
                    members,
                    rng=registry.spawn("session"),
                )
            else:
                session = SecureSession(network, registry.spawn("session"))
        except ConfigurationError as exc:
            raise ServiceError(p.INVALID_CONFIG, str(exc)) from None

        hosted = HostedSession(
            name=req.name,
            session=session,
            mode=req.mode,
            adversary=req.adversary,
            rekey_interval=int(req.rekey_interval),
            max_pending=int(req.max_pending),
        )
        hosted.attached.add(token)
        self.sessions[req.name] = hosted
        return p.SessionOpened(
            name=req.name,
            members=tuple(session.members),
            mode=req.mode,
            epoch_length=session.channel.epoch_length(),
            setup_rounds=session.stats.setup_rounds,
            generation=session._generation,
        )

    def join_session(self, token: object, req: p.JoinSession) -> p.SessionJoined:
        hosted = self._get(req.name)
        hosted.attached.add(token)
        return p.SessionJoined(
            name=req.name,
            members=tuple(hosted.session.members),
            generation=hosted.session._generation,
        )

    def leave_session(self, token: object, req: p.LeaveSession) -> p.SessionLeft:
        hosted = self._get(req.name)
        hosted.attached.discard(token)
        hosted.cursors.pop(token, None)
        return p.SessionLeft(name=req.name)

    def close_session(self, token: object, req: p.CloseSession) -> p.SessionClosed:
        self._get(req.name)
        del self.sessions[req.name]
        return p.SessionClosed(name=req.name)

    def detach(self, token: object) -> None:
        """Forget a disconnected client everywhere (sessions persist)."""
        for hosted in self.sessions.values():
            hosted.attached.discard(token)
            hosted.cursors.pop(token, None)

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------

    def send(self, token: object, req: p.SendMessage) -> p.Sent:
        hosted = self._get(req.name)
        session = hosted.session
        if session.pending() >= hosted.max_pending:
            raise ServiceError(
                p.BUSY,
                f"session {req.name!r} has {session.pending()} unflushed "
                f"messages (max_pending={hosted.max_pending}); flush and retry",
            )
        if req.sender not in session.channel.members:
            raise ServiceError(
                p.NOT_A_MEMBER,
                f"node {req.sender} is not a member of {req.name!r}",
            )
        if not isinstance(req.payload, (bytes, bytearray)):
            raise ServiceError(p.BAD_REQUEST, "payload must be bytes")
        session.send(req.sender, req.payload)
        return p.Sent(name=req.name, pending=session.pending())

    def flush(self, token: object, req: p.Flush) -> p.Flushed:
        hosted = self._get(req.name)
        session = hosted.session
        if req.max_rounds is not None and req.max_rounds < 0:
            raise ServiceError(
                p.BAD_REQUEST, "max_rounds must be non-negative"
            )
        rounds_before = session.stats.emulated_rounds
        # Inbox-length marks, not round numbers: a mid-flush re-key opens
        # a fresh channel whose emulated-round counter restarts at zero,
        # so append position is the only monotone cursor.
        marks = {m: len(box) for m, box in session.stats.inboxes.items()}
        rekeys: list[tuple] = []
        budget = req.max_rounds
        # One message per iteration so a scheduled re-key lands *between*
        # emulated rounds, not after the whole drain.  Relies on flush's
        # per-call budget semantics (a lifetime budget would starve every
        # drain after the first — the bug this layer's tests pin).
        while session.pending():
            if budget is not None and budget <= 0:
                break
            session.flush(max_rounds=1)
            if budget is not None:
                budget -= 1
            hosted.rounds_since_rekey += 1
            if (
                hosted.rekey_interval
                and hosted.rounds_since_rekey >= hosted.rekey_interval
            ):
                report = self._rekey(hosted, ())
                rekeys.append(p.rekey_tuple(report))
        rows: list[tuple[int, int, int, bytes]] = []
        for member in sorted(session.stats.inboxes):
            box = session.stats.inboxes[member]
            for delivery in box[marks.get(member, 0) :]:
                rows.append(p.delivery_row(member, delivery))
        return p.Flushed(
            name=req.name,
            deliveries=tuple(rows),
            emulated_rounds=session.stats.emulated_rounds - rounds_before,
            pending=session.pending(),
            rekeys=tuple(rekeys),
        )

    def drain_inbox(self, token: object, req: p.DrainInbox) -> p.InboxBatch:
        hosted = self._get(req.name)
        session = hosted.session
        if req.member not in session.stats.inboxes:
            raise ServiceError(
                p.NOT_A_MEMBER,
                f"node {req.member} is not a member of {req.name!r}",
            )
        if req.member not in session.members and not req.include_former:
            raise ServiceError(
                p.FORMER_MEMBER,
                f"node {req.member} is a former member of {req.name!r} "
                "(excluded or dropped by a re-key); set include_former "
                "to read its historical inbox",
            )
        inbox = session.stats.inboxes[req.member]
        cursor = hosted.cursor_for(token)
        start = cursor.get(req.member, 0)
        fresh = inbox[start:]
        cursor[req.member] = len(inbox)
        return p.InboxBatch(
            name=req.name,
            member=req.member,
            deliveries=tuple(p.inbox_row(d) for d in fresh),
        )

    # ------------------------------------------------------------------
    # Re-keying
    # ------------------------------------------------------------------

    def _rekey(self, hosted: HostedSession, compromised: tuple):
        try:
            report = hosted.session.rekey(compromised)
        except ConfigurationError as exc:
            raise ServiceError(p.REKEY_FAILED, str(exc)) from None
        hosted.rounds_since_rekey = 0
        hosted.rekey_count += 1
        return report

    def rekey(self, token: object, req: p.Rekey) -> p.RekeyDone:
        hosted = self._get(req.name)
        report = self._rekey(hosted, req.compromised)
        return p.RekeyDone(
            name=req.name,
            generation=report.generation,
            distributor=report.distributor,
            members=report.members,
            excluded=report.excluded,
            dropped=report.dropped,
            rounds=report.rounds,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def stats(self, token: object, req: p.SessionStatsReq) -> p.SessionStatsInfo:
        hosted = self._get(req.name)
        session = hosted.session
        s = session.stats
        return p.SessionStatsInfo(
            name=req.name,
            members=tuple(session.members),
            mode=hosted.mode,
            generation=session._generation,
            pending=session.pending(),
            attached=len(hosted.attached),
            setup_rounds=s.setup_rounds,
            emulated_rounds=s.emulated_rounds,
            real_rounds=s.real_rounds,
            sent=s.sent,
            delivered=s.delivered,
            undelivered=s.undelivered,
            rekeys=hosted.rekey_count,
        )

    def list_sessions(self, token: object, req: p.ListSessions) -> p.SessionList:
        return p.SessionList(names=tuple(sorted(self.sessions)))

    def run_scenario(
        self, token: object, req: p.RunScenario
    ) -> p.ScenarioOutcome:
        # Imported here, not at module top: the scenario catalog attacks
        # *this* host class, so repro.scenarios imports repro.serve.host
        # and a module-level import back would be circular.
        from ..scenarios import encode_outcome
        from ..scenarios import run_scenario as execute

        try:
            run = execute(req.name, seed=int(req.seed))
        except ScenarioError as exc:
            raise ServiceError(p.BAD_REQUEST, str(exc)) from None
        return p.ScenarioOutcome(
            name=run.name,
            layer=run.layer,
            seed=run.seed,
            expected=encode_outcome(run.expected),
            observed=encode_outcome(run.observed),
            matched=run.matched,
            detail=run.detail,
        )

    def shutdown(self, token: object, req: p.Shutdown) -> p.ShuttingDown:
        self.shutting_down = True
        return p.ShuttingDown()

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    _HANDLERS = {
        p.OpenSession: open_session,
        p.JoinSession: join_session,
        p.LeaveSession: leave_session,
        p.CloseSession: close_session,
        p.SendMessage: send,
        p.Flush: flush,
        p.DrainInbox: drain_inbox,
        p.Rekey: rekey,
        p.SessionStatsReq: stats,
        p.RunScenario: run_scenario,
        p.ListSessions: list_sessions,
        p.Shutdown: shutdown,
    }

    def handle(self, token: object, request):
        """Service one decoded request; always returns a response
        dataclass (:class:`~repro.serve.protocol.Failure` on refusal) —
        raw exceptions never escape to the transport."""
        handler = self._HANDLERS.get(type(request))
        if handler is None:
            return p.Failure(
                p.BAD_REQUEST, f"unhandled request type {type(request).__name__}"
            )
        try:
            return handler(self, token, request)
        except ServiceError as exc:
            return p.Failure(exc.code, exc.detail)
        except ReproError as exc:
            return p.Failure(p.INTERNAL, f"{type(exc).__name__}: {exc}")
        except (TypeError, ValueError, KeyError) as exc:
            # A frame can decode into the right dataclass with ill-typed
            # fields (max_rounds="soon"); the comparison blows up deep in
            # a handler.  That is the *client's* malformation, and it
            # must come back as a typed failure — an escaping TypeError
            # would kill the daemon's whole select loop.
            return p.Failure(
                p.BAD_REQUEST, f"{type(exc).__name__}: {exc}"
            )
