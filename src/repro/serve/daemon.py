"""The multi-session key-service daemon: ``python -m repro serve``.

One ``selectors`` event loop (the :mod:`repro.dispatch.socket_pool`
idiom, and its exact framing: 4-byte length prefix + pickle, decoded
through :func:`~repro.dispatch.wire.loads_restricted`) multiplexes any
number of client connections over one :class:`~repro.serve.host.
SessionHost`.  Frames carry only dicts/tuples/scalars — see
:mod:`repro.serve.protocol` — so the restricted unpickler's class
allowlist is never widened for this daemon.

Division of labour: the daemon owns sockets, buffers, and the handshake;
every decision about sessions lives in the host, which is clock-free —
the daemon's only time source paces the *event loop* (select timeouts,
idle disconnects) and can never influence a session's traffic, keeping
daemon-served sessions byte-identical to synchronously driven ones.

Backpressure has two layers: the host refuses over-quota work with
``busy`` failure frames (bounded per-session send queues, bounded
session table), and the transport bounds each connection's outbound
buffer — a client that stops reading its responses gets ``busy``
failures for new requests until it drains, rather than growing the
buffer without limit.

Trust model matches the dispatch pool: restricted unpickling caps what a
hostile peer can make the daemon *construct*, but frames are neither
authenticated nor encrypted — bind to localhost or a private network.
"""

from __future__ import annotations

import pickle
import selectors
import socket
import sys
import time

from ..dispatch.socket_pool import FrameDecoder
from ..errors import DispatchError, ServiceError
from . import protocol as p
from .host import SessionHost

_RECV_CHUNK = 1 << 16

MAX_OUTBUF_BYTES = 1 << 22
"""Per-connection outbound buffer bound (the transport-level ``busy``)."""

SELECT_TIMEOUT = 0.25
"""Event-loop tick; also bounds shutdown/stop-flag latency."""


def _frame_bytes(obj) -> bytes:
    """One length-prefixed wire frame, as bytes for an outbound buffer."""
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return len(data).to_bytes(4, "big") + data


class _Client:
    """Daemon-side state for one client connection."""

    __slots__ = ("sock", "decoder", "outbuf", "ready", "token")

    def __init__(self, sock: socket.socket, token: int) -> None:
        self.sock = sock
        self.decoder = FrameDecoder()
        self.outbuf = bytearray()
        self.ready = False  # handshake completed
        self.token = token  # host-facing identity, stable for the conn


class ServeDaemon:
    """The serve event loop around one :class:`SessionHost`.

    Parameters
    ----------
    seed:
        Master seed for the host (every session's randomness derives
        from it and the session name).
    host, port:
        Bind address; ``port=0`` lets the OS pick (read
        :attr:`address` after :meth:`bind`).
    max_sessions:
        Bound on the host's session table.
    idle_timeout:
        Seconds without any traffic or live client before the daemon
        exits on its own (``None`` = serve forever).  A watchdog for CI
        smoke jobs, not a session property.
    max_outbuf:
        Per-connection outbound buffer bound.
    """

    def __init__(
        self,
        *,
        seed: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        max_sessions: int | None = None,
        idle_timeout: float | None = None,
        max_outbuf: int = MAX_OUTBUF_BYTES,
    ) -> None:
        kwargs = {} if max_sessions is None else {"max_sessions": max_sessions}
        self.host = SessionHost(seed=seed, **kwargs)
        self.bind_host = host
        self.bind_port = port
        self.idle_timeout = idle_timeout
        self.max_outbuf = int(max_outbuf)
        self.address: tuple[str, int] | None = None
        self._sel: selectors.BaseSelector | None = None
        self._listener: socket.socket | None = None
        self._clients: dict[int, _Client] = {}
        self._next_token = 0
        self._stop = False

    # ------------------------------------------------------------------

    def bind(self) -> tuple[str, int]:
        """Bind the listener; returns (and stores) the bound address."""
        sel = selectors.DefaultSelector()
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.bind_host, self.bind_port))
        listener.listen()
        listener.setblocking(False)
        sel.register(listener, selectors.EVENT_READ, data=None)
        self._sel = sel
        self._listener = listener
        self.address = listener.getsockname()[:2]
        return self.address

    def request_stop(self) -> None:
        """Ask the loop to exit (thread-safe flag; one tick of latency)."""
        self._stop = True

    # ------------------------------------------------------------------
    # Connection plumbing
    # ------------------------------------------------------------------

    def _accept(self) -> None:
        try:
            accepted, _addr = self._listener.accept()
        except (BlockingIOError, OSError):
            return
        accepted.setblocking(False)
        self._next_token += 1
        client = _Client(accepted, self._next_token)
        self._clients[accepted.fileno()] = client
        self._sel.register(accepted, selectors.EVENT_READ, data=client)
        return

    def _drop(self, client: _Client) -> None:
        """Forget a connection; its sessions persist, its cursors don't."""
        try:
            self._sel.unregister(client.sock)
        except (KeyError, ValueError):
            pass
        self._clients.pop(client.sock.fileno(), None)
        client.sock.close()
        self.host.detach(client.token)

    def _enqueue(self, client: _Client, frame: dict) -> None:
        client.outbuf.extend(_frame_bytes(frame))
        self._want_write(client, True)

    def _want_write(self, client: _Client, on: bool) -> None:
        events = selectors.EVENT_READ
        if on:
            events |= selectors.EVENT_WRITE
        try:
            self._sel.modify(client.sock, events, data=client)
        except (KeyError, ValueError):
            pass

    def _flush_out(self, client: _Client) -> None:
        try:
            sent = client.sock.send(client.outbuf)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._drop(client)
            return
        del client.outbuf[:sent]
        if not client.outbuf:
            self._want_write(client, False)

    # ------------------------------------------------------------------
    # Frame handling
    # ------------------------------------------------------------------

    def _handle_frame(self, client: _Client, frame: object) -> None:
        if not client.ready:
            self._handshake(client, frame)
            return
        if len(client.outbuf) > self.max_outbuf:
            # The client is not reading its responses; refuse new work
            # with a (small) typed failure instead of buffering without
            # bound.  No host state was touched: safe to retry.
            req_id = frame.get("req") if isinstance(frame, dict) else None
            self._enqueue(
                client,
                p.encode_response(
                    req_id,
                    p.Failure(
                        p.BUSY,
                        "connection outbound buffer is full; "
                        "read pending responses and retry",
                    ),
                ),
            )
            return
        try:
            req_id, request = p.decode_request(frame)
        except ServiceError as exc:
            req_id = frame.get("req") if isinstance(frame, dict) else None
            self._enqueue(
                client,
                p.encode_response(req_id, p.Failure(exc.code, exc.detail)),
            )
            return
        response = self.host.handle(client.token, request)
        self._enqueue(client, p.encode_response(req_id, response))
        if isinstance(response, p.ShuttingDown):
            self._stop = True

    def _handshake(self, client: _Client, frame: object) -> None:
        kind = frame.get("kind") if isinstance(frame, dict) else None
        if kind != "hello" or frame.get("protocol") != p.SERVE_PROTOCOL:
            got = frame.get("protocol") if isinstance(frame, dict) else None
            self._enqueue(
                client,
                {
                    "kind": "reject",
                    "reason": (
                        f"serve protocol {got!r} != daemon protocol "
                        f"{p.SERVE_PROTOCOL}"
                    ),
                },
            )
            # The reject frame drains before the next loop pass drops a
            # still-unready connection that sends more.
            client.ready = False
            return
        client.ready = True
        self._enqueue(
            client, {"kind": "welcome", "protocol": p.SERVE_PROTOCOL}
        )

    # ------------------------------------------------------------------
    # The loop
    # ------------------------------------------------------------------

    def run(self) -> None:
        """Serve until a ``shutdown`` request, :meth:`request_stop`, or
        the idle watchdog fires.  Outbound buffers are drained before
        the listener closes, so a shutdown acknowledgement always
        reaches its requester."""
        if self._sel is None:
            self.bind()
        sel = self._sel
        last_activity = time.monotonic()
        try:
            while not self._stop:
                for key, events in sel.select(timeout=SELECT_TIMEOUT):
                    if key.data is None:
                        self._accept()
                        last_activity = time.monotonic()
                        continue
                    client = key.data
                    if events & selectors.EVENT_WRITE:
                        self._flush_out(client)
                    if not (events & selectors.EVENT_READ):
                        continue
                    try:
                        chunk = client.sock.recv(_RECV_CHUNK)
                    except (BlockingIOError, InterruptedError):
                        continue
                    except OSError:
                        self._drop(client)
                        continue
                    if not chunk:
                        self._drop(client)
                        continue
                    last_activity = time.monotonic()
                    try:
                        frames = client.decoder.feed(chunk)
                    except DispatchError:
                        # Oversized or malformed prefix: kill the conn.
                        self._drop(client)
                        continue
                    for frame in frames:
                        self._handle_frame(client, frame)
                        if self._stop:
                            break
                if (
                    self.idle_timeout is not None
                    and not self._clients
                    and time.monotonic() - last_activity > self.idle_timeout
                ):
                    break
            # Drain goodbyes (bounded: purely writing, no new requests).
            deadline = time.monotonic() + 5.0
            while (
                any(c.outbuf for c in self._clients.values())
                and time.monotonic() < deadline
            ):
                for key, events in sel.select(timeout=SELECT_TIMEOUT):
                    if key.data is not None and events & selectors.EVENT_WRITE:
                        self._flush_out(key.data)
        finally:
            self._close()

    def _close(self) -> None:
        for client in list(self._clients.values()):
            self._drop(client)
        if self._listener is not None:
            try:
                self._sel.unregister(self._listener)
            except (KeyError, ValueError):
                pass
            self._listener.close()
            self._listener = None
        if self._sel is not None:
            self._sel.close()
            self._sel = None


def serve_main(
    *,
    seed: int = 0,
    host: str = "127.0.0.1",
    port: int = 0,
    max_sessions: int | None = None,
    idle_timeout: float | None = None,
) -> int:
    """The ``python -m repro serve`` entry point; returns an exit code."""
    daemon = ServeDaemon(
        seed=seed,
        host=host,
        port=port,
        max_sessions=max_sessions,
        idle_timeout=idle_timeout,
    )
    bound = daemon.bind()
    print(
        f"repro serve: key-service daemon listening on "
        f"{bound[0]}:{bound[1]} (seed={seed})",
        file=sys.stderr,
        flush=True,
    )
    try:
        daemon.run()
    except KeyboardInterrupt:
        pass
    return 0
