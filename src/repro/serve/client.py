"""Blocking client for the key-service daemon.

:class:`ServiceClient` speaks the :mod:`repro.serve.protocol` over one
TCP connection: handshake at connect, then one request frame per call
and a blocking read of its response (requests carry echo'd ``req`` ids,
so the pairing survives even though this client never pipelines).
Daemon ``fail`` frames re-raise locally as
:class:`~repro.errors.ServiceError` with the catalog ``code`` intact —
catching ``ServiceError`` with ``exc.code == "busy"`` is the retry
signal; everything else arrives as the typed response dataclass.

Connect retries (like the dispatch worker's loop) let clients start
before the daemon binds — the CI smoke job races them deliberately.
"""

from __future__ import annotations

import socket
import time

from ..dispatch.socket_pool import parse_endpoint, recv_frame, send_frame
from ..errors import ServiceError
from ..service.emulated_channel import Delivery
from . import protocol as p

__all__ = ["ServiceClient", "parse_endpoint"]


class ServiceClient:
    """One connection to a ``repro serve`` daemon.

    Usable as a context manager; :meth:`close` is idempotent.  All
    methods block until the daemon answers; failures raise
    :class:`~repro.errors.ServiceError` carrying the daemon's failure
    code.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        name: str = "client",
        retry_seconds: float = 10.0,
    ) -> None:
        deadline = time.monotonic() + retry_seconds
        sock: socket.socket | None = None
        while sock is None:
            try:
                sock = socket.create_connection((host, port), timeout=10.0)
            except OSError:
                if time.monotonic() >= deadline:
                    raise ServiceError(
                        p.INTERNAL,
                        f"cannot reach {host}:{port} after {retry_seconds}s",
                    ) from None
                time.sleep(0.05)
        sock.settimeout(None)
        self._sock = sock
        self._req = 0
        self._closed = False
        from .. import __version__

        send_frame(
            sock,
            {
                "kind": "hello",
                "protocol": p.SERVE_PROTOCOL,
                "repro": __version__,
                "client": name,
            },
        )
        greeting = recv_frame(sock)
        if not isinstance(greeting, dict) or greeting.get("kind") != "welcome":
            reason = (
                greeting.get("reason", greeting)
                if isinstance(greeting, dict)
                else greeting
            )
            sock.close()
            self._closed = True
            raise ServiceError(p.BAD_REQUEST, f"rejected by daemon: {reason}")

    # ------------------------------------------------------------------

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._sock.close()

    def request(self, request):
        """Send one request, block for its response; raise on ``fail``."""
        if self._closed:
            raise ServiceError(p.INTERNAL, "client is closed")
        self._req += 1
        req_id = self._req
        try:
            send_frame(self._sock, p.encode_request(req_id, request))
            frame = recv_frame(self._sock)
        except (EOFError, OSError) as exc:
            self.close()
            raise ServiceError(
                p.INTERNAL, f"daemon connection lost: {exc}"
            ) from None
        got_id, response = p.decode_response(frame)
        if got_id != req_id:
            self.close()
            raise ServiceError(
                p.INTERNAL,
                f"response for request {got_id!r}, expected {req_id!r}",
            )
        if isinstance(response, p.Failure):
            response.raise_()
        return response

    # ------------------------------------------------------------------
    # Convenience wrappers, one per protocol request
    # ------------------------------------------------------------------

    def open_session(
        self,
        name: str,
        *,
        n: int = 8,
        channels: int = 2,
        t: int = 1,
        mode: str = "preshared",
        adversary: str | None = None,
        members: tuple = (),
        rekey_interval: int = 0,
        max_pending: int = p.DEFAULT_MAX_PENDING,
    ) -> p.SessionOpened:
        return self.request(
            p.OpenSession(
                name=name,
                n=n,
                channels=channels,
                t=t,
                mode=mode,
                adversary=adversary,
                members=tuple(members),
                rekey_interval=rekey_interval,
                max_pending=max_pending,
            )
        )

    def join_session(self, name: str) -> p.SessionJoined:
        return self.request(p.JoinSession(name=name))

    def leave_session(self, name: str) -> p.SessionLeft:
        return self.request(p.LeaveSession(name=name))

    def close_session(self, name: str) -> p.SessionClosed:
        return self.request(p.CloseSession(name=name))

    def send(self, name: str, sender: int, payload: bytes) -> p.Sent:
        return self.request(
            p.SendMessage(name=name, sender=sender, payload=bytes(payload))
        )

    def flush(self, name: str, max_rounds: int | None = None) -> p.Flushed:
        return self.request(p.Flush(name=name, max_rounds=max_rounds))

    def drain_inbox(
        self, name: str, member: int, *, include_former: bool = False
    ) -> list[Delivery]:
        batch = self.request(
            p.DrainInbox(
                name=name, member=member, include_former=include_former
            )
        )
        return [p.row_delivery(row) for row in batch.deliveries]

    def rekey(self, name: str, compromised: tuple = ()) -> p.RekeyDone:
        return self.request(
            p.Rekey(name=name, compromised=tuple(compromised))
        )

    def stats(self, name: str) -> p.SessionStatsInfo:
        return self.request(p.SessionStatsReq(name=name))

    def run_scenario(self, name: str, seed: int = 0) -> p.ScenarioOutcome:
        return self.request(p.RunScenario(name=name, seed=int(seed)))

    def list_sessions(self) -> tuple[str, ...]:
        return self.request(p.ListSessions()).names

    def shutdown(self) -> None:
        self.request(p.Shutdown())
