"""The restricted-listening adversary model (Section 8, Q2).

The paper's second open question: if the adversary can *listen* on only
``t`` channels per round (instead of all ``C``), can nodes establish
shared secrets that are information-theoretically secure — no
computational assumptions at all?  The paper conjectures any such
algorithm is inherently exponential.

This module supplies the model and the experiment that shows *why* the
question is hard:

* :class:`RestrictedListeningNetwork` extends the radio simulator so the
  adversary observes only the channels it chose to monitor — the trace it
  is shown is **redacted** per round (actions and deliveries on other
  channels are hidden, and it no longer learns honest random choices).
* :class:`MonitoringAdversary` is the strategy interface: pick up to
  ``t`` channels to monitor (before the round), then transmit as usual.
* :func:`run_share_spray` is the natural first attempt at IT key
  agreement: one node sprays ``k`` one-time-pad shares over random
  channels, the peer collects them, and the pad is the XOR of all
  shares.  The adversary reconstructs the pad only if it observed *every*
  share; the peer gets the pad only if it received every share.

The experiment exposes the tension the conjecture lives on: repetitions
make delivery reliable but give the eavesdropper more chances to catch
each share, while few repetitions keep the pad secret from everyone —
including the intended receiver (who cannot acknowledge, since nothing is
authenticated yet).  The bench sweeps repetitions and tabulates both
probabilities.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..errors import ConfigurationError, ProtocolViolation
from ..radio.actions import Action, Listen, Transmit
from ..radio.messages import Message, Transmission
from ..radio.network import AdversaryView, RadioNetwork, RoundMeta
from ..radio.trace import ExecutionTrace, RoundRecord
from ..rng import RngRegistry

SHARE_KIND = "it-share"


class MonitoringAdversary(abc.ABC):
    """An adversary with a per-round listening budget.

    Subclasses implement :meth:`monitor` (channels to observe this round,
    chosen before the round resolves) and :meth:`act` (transmissions, as
    in the base model).  Both see only the redacted history.
    """

    needs_history: bool = True

    @abc.abstractmethod
    def monitor(self, view: AdversaryView) -> Sequence[int]:
        """Channels to observe this round (at most the listen budget)."""

    def act(self, view: AdversaryView) -> Sequence[Transmission]:
        """Transmissions for this round (at most ``t``); default silent."""
        return ()

    def reset(self) -> None:
        """Clear per-execution state."""


class RestrictedListeningNetwork(RadioNetwork):
    """A radio network whose adversary sees only monitored channels.

    The adversary's history is rebuilt per round: a redacted
    :class:`RoundRecord` keeps only the actions, deliveries, and its own
    transmissions on the channels it monitored.  The Section 3 assumption
    that "the adversary learns all random choices of completed rounds" is
    deliberately dropped — that is the whole point of the Q2 model.

    Compiled :class:`~repro.radio.network.RoundSchedule` submissions are
    supported: because this class overrides :meth:`execute_round`, the base
    :meth:`~repro.radio.network.RadioNetwork.execute_schedule` detects the
    customisation and expands each compiled round through the override, so
    the monitor-before-act semantics and per-round redaction apply to
    schedule-driven protocols unchanged.
    """

    def __init__(
        self,
        n: int,
        channels: int,
        t: int,
        adversary: MonitoringAdversary,
        *,
        listen_budget: int | None = None,
        **kwargs,
    ) -> None:
        if not isinstance(adversary, MonitoringAdversary):
            raise ConfigurationError(
                "RestrictedListeningNetwork needs a MonitoringAdversary"
            )
        kwargs["keep_trace"] = True  # redaction reads the full last record
        super().__init__(n, channels, t, adversary=None, **kwargs)
        self._monitoring_adversary = adversary
        self.listen_budget = t if listen_budget is None else listen_budget
        if not 0 <= self.listen_budget <= channels:
            raise ConfigurationError("listen budget out of range")
        self.redacted_trace = ExecutionTrace()
        self.observed_channel_rounds = 0

    # ------------------------------------------------------------------

    def _redacted_view(self, meta: RoundMeta) -> AdversaryView:
        return AdversaryView(
            n=self.n,
            channels=self.channels,
            t=self.t,
            round_index=self.round_index,
            history=self.redacted_trace,
            meta=meta,
        )

    def execute_round(
        self,
        actions: Mapping[int, Action],
        meta: RoundMeta | None = None,
    ) -> dict[int, Message | None]:
        """Resolve one round with monitoring-before-acting semantics."""
        meta = meta or RoundMeta()
        view = self._redacted_view(meta)
        monitored = sorted(set(self._monitoring_adversary.monitor(view)))
        if len(monitored) > self.listen_budget:
            raise ProtocolViolation(
                f"adversary monitored {len(monitored)} channels; "
                f"listen budget is {self.listen_budget}"
            )
        if any(not 0 <= c < self.channels for c in monitored):
            raise ProtocolViolation("monitored channel out of range")

        transmissions = tuple(self._monitoring_adversary.act(view))
        self._validate_adversary(list(transmissions))

        class _OneShot:
            """Adapter feeding the pre-committed transmissions through the
            base class's resolution path."""

            needs_history = False

            def act(self, _view):
                return transmissions

        self.adversary = _OneShot()
        try:
            results = super().execute_round(actions, meta)
        finally:
            self.adversary = None

        # Build the redacted record the adversary will remember.
        full = self.trace[len(self.trace) - 1]
        self.observed_channel_rounds += len(monitored)
        monitored_set = set(monitored)
        redacted = RoundRecord(
            index=full.index,
            actions={
                node: action
                for node, action in full.actions.items()
                if isinstance(action, Transmit)
                and action.channel in monitored_set
            },
            adversary_transmissions=full.adversary_transmissions,
            delivered={
                channel: (msg if channel in monitored_set else None)
                for channel, msg in full.delivered.items()
            },
            meta=dict(full.meta, monitored=tuple(monitored)),
        )
        self.redacted_trace.append(redacted)
        return results


class StickyEavesdropper(MonitoringAdversary):
    """Monitors a fixed channel set every round (budget channels).

    The strongest *oblivious* listener against uniform channel spraying:
    it observes each uniformly-placed frame with probability exactly
    ``budget / C``.
    """

    def __init__(self, channels: Sequence[int]) -> None:
        self._channels = tuple(channels)

    def monitor(self, view: AdversaryView) -> Sequence[int]:
        return self._channels[: view.t]


class HoppingEavesdropper(MonitoringAdversary):
    """Monitors a fresh random channel subset every round."""

    def __init__(self, rng) -> None:
        self._rng = rng

    def monitor(self, view: AdversaryView) -> Sequence[int]:
        budget = min(view.t, view.channels)
        return self._rng.sample(range(view.channels), budget)


# ---------------------------------------------------------------------------
# The share-spray experiment.
# ---------------------------------------------------------------------------


@dataclass
class ShareSprayResult:
    """Outcome of one pad-agreement attempt.

    The pad is the XOR of all ``shares``; either party (or the adversary)
    knows it iff it holds *every* share.
    """

    shares: int
    repetitions: int
    receiver_shares: set[int] = field(default_factory=set)
    adversary_shares: set[int] = field(default_factory=set)
    rounds: int = 0

    @property
    def receiver_has_pad(self) -> bool:
        """The intended receiver collected every share."""
        return len(self.receiver_shares) == self.shares

    @property
    def adversary_has_pad(self) -> bool:
        """The eavesdropper observed every share: secrecy lost."""
        return len(self.adversary_shares) == self.shares

    @property
    def information_theoretically_secret(self) -> bool:
        """At least one share escaped the adversary."""
        return not self.adversary_has_pad


def run_share_spray(
    network: RestrictedListeningNetwork,
    sender: int,
    receiver: int,
    rng: RngRegistry,
    *,
    shares: int = 4,
    repetitions: int = 8,
) -> ShareSprayResult:
    """Spray ``shares`` pad shares over random channels.

    Each share gets ``repetitions`` rounds; per round the sender places
    the share on a fresh uniform channel and the receiver listens on a
    fresh uniform channel.  No feedback, no authentication — this is the
    *naive* protocol whose secrecy/reliability tension motivates the
    paper's conjecture (see the module docstring).
    """
    if sender == receiver:
        raise ConfigurationError("sender and receiver must differ")
    result = ShareSprayResult(shares=shares, repetitions=repetitions)
    start = network.metrics.rounds
    for share in range(shares):
        for _ in range(repetitions):
            stream_s = rng.stream("spray", sender)
            stream_r = rng.stream("spray", receiver)
            actions: dict[int, Action] = {}
            actions[sender] = Transmit(
                stream_s.randrange(network.channels),
                Message(kind=SHARE_KIND, sender=sender, payload=("share", share)),
            )
            actions[receiver] = Listen(stream_r.randrange(network.channels))
            frames = network.execute_round(
                actions, RoundMeta(phase="it-spray", extra={"share": share})
            )
            got = frames.get(receiver)
            if got is not None and got.kind == SHARE_KIND:
                result.receiver_shares.add(got.payload[1])
            # What did the adversary see?  The redacted record answers.
            last = network.redacted_trace[len(network.redacted_trace) - 1]
            for _channel, msg in last.delivered.items():
                if msg is not None and msg.kind == SHARE_KIND:
                    result.adversary_shares.add(msg.payload[1])
    result.rounds = network.metrics.rounds - start
    return result
