"""Explorations of the paper's open questions (Section 8).

* :mod:`repro.extensions.restricted_listening` — the Q2 model: an
  adversary that can listen on only ``t`` channels per round, plus the
  share-spray experiment showing the secrecy/reliability tension behind
  the paper's conjecture that information-theoretic key agreement is
  inherently exponential.

(The Q1 Byzantine variant lives in :mod:`repro.fame.byzantine`; the Q4
point-to-point primitive in :mod:`repro.service.pairwise`.)
"""

from .restricted_listening import (
    HoppingEavesdropper,
    MonitoringAdversary,
    RestrictedListeningNetwork,
    ShareSprayResult,
    StickyEavesdropper,
    run_share_spray,
)

__all__ = [
    "HoppingEavesdropper",
    "MonitoringAdversary",
    "RestrictedListeningNetwork",
    "ShareSprayResult",
    "StickyEavesdropper",
    "run_share_spray",
]
