"""The triangle-isolation attack from Section 5's second insight.

Against a *direct exchange* protocol — every message travels straight from
source to destination, no surrogates — the adversary can do better than ``t``
failures: it fixes ``t`` vertex-disjoint triples of nodes and jams every
scheduled channel whose edge lies inside a watched triple.  Since scheduled
edges within a round are vertex-disjoint, at most one channel per triple needs
jamming per round, so the budget of ``t`` always suffices.  The resulting
disruption graph contains ``t`` edge-disjoint triangles, whose minimum vertex
cover has size ``2t`` — twice what f-AME concedes.

This adversary is the engine of experiment E10 (surrogate ablation).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..errors import ConfigurationError
from ..radio.messages import JAM, Transmission
from .base import Adversary

if TYPE_CHECKING:  # pragma: no cover
    from ..radio.network import AdversaryView


class TriangleIsolationAdversary(Adversary):
    """Jams any scheduled edge internal to one of ``t`` watched triples.

    Parameters
    ----------
    triples:
        Vertex-disjoint triples of node ids to isolate.  The attack needs at
        most as many triples as the budget ``t``; extra triples raise at
        act-time if they would overflow the budget in some round.
    """

    def __init__(self, triples: Sequence[tuple[int, int, int]]) -> None:
        if not triples:
            raise ConfigurationError("need at least one triple")
        seen: set[int] = set()
        for triple in triples:
            if len(set(triple)) != 3:
                raise ConfigurationError(f"triple {triple} is degenerate")
            if seen & set(triple):
                raise ConfigurationError("triples must be vertex-disjoint")
            seen.update(triple)
        self._triples = [frozenset(tr) for tr in triples]

    def _edge_triple(self, src: int | None, dst: int | None) -> int | None:
        """Index of the watched triple containing both endpoints, if any."""
        if src is None or dst is None:
            return None
        for idx, triple in enumerate(self._triples):
            if src in triple and dst in triple:
                return idx
        return None

    def act(self, view: "AdversaryView") -> Sequence[Transmission]:
        schedule = view.meta.schedule or {}
        assignments = schedule.get("assignments", {})
        targets: list[int] = []
        for channel, info in assignments.items():
            src = info.get("source", info.get("broadcaster"))
            dst = info.get("listener")
            if self._edge_triple(src, dst) is not None:
                targets.append(channel)
        budget = min(view.t, view.channels)
        return tuple(Transmission(c, JAM) for c in sorted(targets)[:budget])
