"""The adversary interface.

An adversary is a strategy object with a single decision method,
:meth:`Adversary.act`, called once per round by the network *after* honest
actions are fixed but shown only the :class:`~repro.radio.network.AdversaryView`
(past history + public metadata).  It returns at most ``t`` transmissions on
distinct channels; the network validates the budget and raises
:class:`~repro.errors.ProtocolViolation` on cheating attempts.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Sequence

from ..radio.messages import Transmission

if TYPE_CHECKING:  # pragma: no cover
    from ..radio.network import AdversaryView


class Adversary(abc.ABC):
    """Base class for adversary strategies.

    Subclasses override :meth:`act`.  Strategies that consult past rounds
    must set :attr:`needs_history` to ``True`` so the network refuses to run
    them with trace retention disabled.
    """

    #: Whether this strategy reads ``view.history``.
    needs_history: bool = False

    #: Strategies that consume the view only *inside* :meth:`act` — never
    #: retaining it between rounds — may set this to ``True``; the network
    #: then hands them one shared view whose ``round_index``/``meta`` are
    #: advanced in place each round instead of allocating a fresh view per
    #: round (the ROADMAP "adversary fast path").  ``history`` stays live
    #: either way.  Leave ``False`` for strategies that store views.
    reusable_view: bool = False

    @abc.abstractmethod
    def act(self, view: "AdversaryView") -> Sequence[Transmission]:
        """Return this round's transmissions (at most ``view.t``, distinct
        channels).  Implementations must not mutate the view."""

    def reset(self) -> None:
        """Clear any per-execution state; called between independent runs."""
