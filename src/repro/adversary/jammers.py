"""Generic jamming strategies.

These adversaries only inject noise (:class:`~repro.radio.messages.Jam`), so
they can disrupt but never spoof.  They exercise the protocols' resilience
claims without needing any protocol-specific knowledge.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Sequence

from ..errors import ConfigurationError
from ..radio.messages import JAM, Transmission
from .base import Adversary

if TYPE_CHECKING:  # pragma: no cover
    from ..radio.network import AdversaryView


class RandomJammer(Adversary):
    """Jams ``t`` uniformly random channels each round.

    Parameters
    ----------
    rng:
        Adversary-private randomness stream.
    intensity:
        Fraction of the per-round budget actually used, in ``(0, 1]``.
        ``intensity=0.5`` with ``t=4`` jams 2 channels per round.
    """

    reusable_view = True

    def __init__(self, rng: random.Random, intensity: float = 1.0) -> None:
        if not 0.0 < intensity <= 1.0:
            raise ConfigurationError("intensity must be in (0, 1]")
        self._rng = rng
        self._intensity = intensity

    def act(self, view: "AdversaryView") -> Sequence[Transmission]:
        budget = min(view.t, view.channels)
        count = max(0, round(budget * self._intensity))
        if count == 0:
            return ()
        channels = self._rng.sample(range(view.channels), count)
        return tuple(Transmission(c, JAM) for c in channels)


class SweepJammer(Adversary):
    """Deterministically sweeps a jamming window across the channel space.

    Round ``r`` jams channels ``(r*stride + i) mod C`` for ``i < t``.  A
    predictable but full-budget disruptor: useful for deterministic
    regression tests of disruption handling.
    """

    reusable_view = True

    def __init__(self, stride: int = 1) -> None:
        if stride < 1:
            raise ConfigurationError("stride must be >= 1")
        self._stride = stride

    def act(self, view: "AdversaryView") -> Sequence[Transmission]:
        base = (view.round_index * self._stride) % view.channels
        budget = min(view.t, view.channels)
        channels = {(base + i) % view.channels for i in range(budget)}
        return tuple(Transmission(c, JAM) for c in sorted(channels))


class ReactiveJammer(Adversary):
    """Jams the channels that carried the most recent honest activity.

    Implements the one-round-delayed eavesdropper the model allows: it
    inspects the last ``window`` completed rounds, scores channels by how
    many honest transmissions they carried, and jams the top ``t``.  Ties
    are broken by preferring lower channel ids, then filled with random
    channels so the budget is never wasted.
    """

    needs_history = True
    reusable_view = True  # reads the (live) history inside act() only

    def __init__(self, rng: random.Random, window: int = 4) -> None:
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        self._rng = rng
        self._window = window

    def act(self, view: "AdversaryView") -> Sequence[Transmission]:
        scores = [0] * view.channels
        history = view.history
        start = max(0, len(history) - self._window)
        for idx in range(start, len(history)):
            record = history[idx]
            for channel in range(view.channels):
                scores[channel] += len(record.honest_transmitters(channel))
        ranked = sorted(range(view.channels), key=lambda c: (-scores[c], c))
        budget = min(view.t, view.channels)
        targets = ranked[:budget]
        # If there has been no activity, fall back to random jamming.
        if all(scores[c] == 0 for c in targets):
            targets = self._rng.sample(range(view.channels), budget)
        return tuple(Transmission(c, JAM) for c in targets)
