"""Adversary strategies for the malicious-interference model.

The paper's adversary (Section 3) can, per round, transmit on up to ``t < C``
channels — jamming by collision or spoofing fake messages — and can listen on
all channels.  It learns all random choices of completed rounds, but not the
honest nodes' current-round choices.

The paper quantifies over *all* such adversaries; a reproduction must
instantiate concrete strategies.  This package provides:

* :class:`NullAdversary` — a no-op, for sanity baselines;
* :class:`RandomJammer`, :class:`SweepJammer`, :class:`ReactiveJammer` —
  generic disruptors;
* :class:`SpoofingAdversary` — forges messages on otherwise-empty channels;
* :class:`ScheduleAwareJammer` — the worst case versus f-AME: reads the
  deterministic broadcast schedule and jams ``t`` of the ``t+1`` channels in
  use, optionally choosing victims adaptively;
* :class:`SimulatingAdversary` — the Theorem 2 lower-bound construction that
  runs fake copies of honest nodes;
* :class:`TriangleIsolationAdversary` — the Section 5 attack that forces
  ``2t``-disruptability on direct-exchange protocols;
* :class:`BudgetAdversary` — a wrapper enforcing the bounded-energy model
  from the related work ([14, 17]).
"""

from .base import Adversary
from .null import NullAdversary
from .jammers import RandomJammer, ReactiveJammer, SweepJammer
from .spoofer import SpoofingAdversary
from .schedule_aware import ScheduleAwareJammer
from .simulating import SimulatingAdversary
from .triangle import TriangleIsolationAdversary
from .budget import BudgetAdversary

__all__ = [
    "Adversary",
    "BudgetAdversary",
    "NullAdversary",
    "RandomJammer",
    "ReactiveJammer",
    "ScheduleAwareJammer",
    "SimulatingAdversary",
    "SpoofingAdversary",
    "SweepJammer",
]
