"""The Theorem 2 lower-bound adversary: simulate honest nodes with fake data.

Theorem 2 shows no AME protocol can beat ``t``-disruptability: the adversary
picks ``t`` senders and runs *faithful copies* of their protocol code, using
its own coins and substituting fake messages.  To a receiver, the real
execution and the execution with roles swapped are equiprobable, so the
receiver cannot authenticate — unless (as in f-AME) the schedule itself rules
spoofing out.

:class:`SimulatingAdversary` is the generic vehicle: it is configured with up
to ``t`` *node simulators*, callables that produce what the simulated node
would transmit this round.  The lower-bound benchmark instantiates it against
a strawman randomized-exchange protocol, where the simulator mirrors the
sender's channel distribution exactly.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Sequence

from ..errors import ConfigurationError
from ..radio.messages import Transmission
from .base import Adversary

if TYPE_CHECKING:  # pragma: no cover
    from ..radio.network import AdversaryView

NodeSimulator = Callable[["AdversaryView", random.Random], Transmission | None]
"""Produces the simulated node's transmission for this round (or ``None``
when the simulated node would stay silent)."""


class SimulatingAdversary(Adversary):
    """Runs up to ``t`` fake node simulations per round.

    Parameters
    ----------
    rng:
        The adversary's private coins (``r_A`` in the Theorem 2 proof).
    simulators:
        One callable per simulated node.  The network enforces the global
        budget; this class additionally rejects configurations with more
        simulators than any budget could serve.
    """

    def __init__(
        self, rng: random.Random, simulators: Sequence[NodeSimulator]
    ) -> None:
        self._rng = rng
        self._simulators = list(simulators)
        if not self._simulators:
            raise ConfigurationError("need at least one node simulator")

    def act(self, view: "AdversaryView") -> Sequence[Transmission]:
        if len(self._simulators) > view.t:
            raise ConfigurationError(
                f"{len(self._simulators)} simulators but budget t={view.t}"
            )
        out: list[Transmission] = []
        used: set[int] = set()
        for simulate in self._simulators:
            tx = simulate(view, self._rng)
            if tx is None:
                continue
            if tx.channel in used:
                # Two simulated nodes picked the same channel; the medium
                # would collide anyway, so a single transmission suffices
                # (and keeps the distinct-channel budget rule satisfied).
                continue
            used.add(tx.channel)
            out.append(tx)
        return tuple(out)
