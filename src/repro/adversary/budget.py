"""A bounded-energy adversary, after the related-work model of [14, 17].

The paper contrasts its unbounded-interference adversary with prior work that
bounds the *total* number of adversarial transmissions.  Wrapping any strategy
in :class:`BudgetAdversary` reproduces that weaker model: once the global
budget is spent, the wrapped adversary goes silent, and protocols that merely
outlast interference start succeeding.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..errors import ConfigurationError
from ..radio.messages import Transmission
from .base import Adversary

if TYPE_CHECKING:  # pragma: no cover
    from ..radio.network import AdversaryView


class BudgetAdversary(Adversary):
    """Enforce a total-transmission budget on an inner strategy.

    Parameters
    ----------
    inner:
        The wrapped strategy.
    total_budget:
        Maximum number of (channel, round) transmissions across the whole
        execution.  When a round's plan would overflow the remainder, the
        plan is truncated (lowest channels first, for determinism).
    """

    def __init__(self, inner: Adversary, total_budget: int) -> None:
        if total_budget < 0:
            raise ConfigurationError("total_budget must be >= 0")
        self._inner = inner
        self._total_budget = total_budget
        self._spent = 0
        self.needs_history = inner.needs_history
        self.reusable_view = getattr(inner, "reusable_view", False)

    @property
    def remaining(self) -> int:
        """Transmissions still available."""
        return self._total_budget - self._spent

    def act(self, view: "AdversaryView") -> Sequence[Transmission]:
        if self.remaining <= 0:
            return ()
        plan = sorted(self._inner.act(view), key=lambda tx: tx.channel)
        plan = plan[: self.remaining]
        self._spent += len(plan)
        return tuple(plan)

    def reset(self) -> None:
        self._spent = 0
        self._inner.reset()
