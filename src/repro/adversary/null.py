"""The absent adversary: transmits nothing, ever.

Useful as a baseline (protocols must of course succeed without interference)
and for measuring the intrinsic round cost of a protocol separate from the
cost interference induces.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from ..radio.messages import Transmission
from .base import Adversary

if TYPE_CHECKING:  # pragma: no cover
    from ..radio.network import AdversaryView


class NullAdversary(Adversary):
    """Does nothing each round."""

    reusable_view = True

    def act(self, view: "AdversaryView") -> Sequence[Transmission]:
        return ()
