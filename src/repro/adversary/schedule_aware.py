"""The worst-case jammer against deterministic schedules.

f-AME's message-transmission rounds follow a schedule every node (and
therefore the adversary, who knows the protocol and the public history)
computes deterministically.  The strongest the model allows is to jam ``t``
of the ``t+1`` scheduled channels every such round, leaving the referee to
grant exactly one item per game move — the slowest progress the analysis of
Theorem 6 permits.

The :class:`ScheduleAwareJammer` implements that attack with pluggable victim
selection, and optionally spends its budget during feedback rounds too
(where it can only slow listeners down, never corrupt the outcome — the
witness occupancy argument of Lemma 5).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Collection, Sequence

from ..errors import ConfigurationError
from ..radio.messages import JAM, Transmission
from .base import Adversary

if TYPE_CHECKING:  # pragma: no cover
    from ..radio.network import AdversaryView

VICTIM_POLICIES = ("prefix", "suffix", "random", "victims")


class ScheduleAwareJammer(Adversary):
    """Jams ``t`` of the channels the current schedule says are in use.

    Parameters
    ----------
    rng:
        Adversary-private randomness (used by the ``random`` policy and for
        feedback-round jamming).
    policy:
        Victim selection among the scheduled channels:

        * ``"prefix"`` — jam the lowest-numbered in-use channels (leaves the
          last scheduled item to succeed each move);
        * ``"suffix"`` — jam the highest-numbered;
        * ``"random"`` — jam a random ``t``-subset of the in-use channels;
        * ``"victims"`` — jam channels whose scheduled item involves a node
          in ``victims`` first, then fill the budget by the prefix rule.
    victims:
        Node ids to persecute under the ``"victims"`` policy.
    jam_feedback:
        When ``True``, also jam ``t`` random channels during rounds whose
        phase starts with ``"feedback"``, maximising listener delay.
    """

    reusable_view = True

    def __init__(
        self,
        rng: random.Random,
        policy: str = "prefix",
        *,
        victims: Collection[int] = (),
        jam_feedback: bool = True,
    ) -> None:
        if policy not in VICTIM_POLICIES:
            raise ConfigurationError(
                f"unknown policy {policy!r}; pick from {VICTIM_POLICIES}"
            )
        self._rng = rng
        self._policy = policy
        self._victims = frozenset(victims)
        self._jam_feedback = jam_feedback

    # ------------------------------------------------------------------

    def _pick_scheduled(self, view: "AdversaryView", in_use: list[int]) -> list[int]:
        budget = min(view.t, len(in_use))
        if budget == 0:
            return []
        if self._policy == "prefix":
            return sorted(in_use)[:budget]
        if self._policy == "suffix":
            return sorted(in_use)[-budget:]
        if self._policy == "random":
            return self._rng.sample(in_use, budget)
        # "victims": channels touching a victim first.
        schedule = view.meta.schedule or {}
        assignments = schedule.get("assignments", {})

        def touches_victim(channel: int) -> bool:
            info = assignments.get(channel, {})
            involved = {
                info.get("broadcaster"),
                info.get("listener"),
                info.get("source"),
            }
            return bool(involved & self._victims)

        preferred = sorted(c for c in in_use if touches_victim(c))
        rest = sorted(c for c in in_use if not touches_victim(c))
        return (preferred + rest)[:budget]

    def act(self, view: "AdversaryView") -> Sequence[Transmission]:
        schedule = view.meta.schedule or {}
        in_use = list(schedule.get("channels_in_use", ()))
        if in_use:
            targets = self._pick_scheduled(view, in_use)
            return tuple(Transmission(c, JAM) for c in targets)
        if self._jam_feedback and str(view.meta.phase).startswith("feedback"):
            budget = min(view.t, view.channels)
            targets = self._rng.sample(range(view.channels), budget)
            return tuple(Transmission(c, JAM) for c in targets)
        return ()
