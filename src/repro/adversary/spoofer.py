"""A spoofing adversary: forges plausible-looking protocol messages.

Spoofing is the second disruption mode of Section 3: by transmitting a fake
message on an otherwise-empty channel, the adversary makes listeners decode
incorrect information.  Against f-AME's fully-scheduled transmission rounds
a spoof can only collide (every channel is occupied by an honest broadcaster),
which is exactly the paper's authentication argument — this adversary lets the
tests demonstrate that.

Against *randomized* phases (gossip epochs, feedback listening) the spoofer
guesses channels and injects forged frames built by a caller-supplied factory.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Sequence

from ..radio.messages import Message, Transmission
from .base import Adversary

if TYPE_CHECKING:  # pragma: no cover
    from ..radio.network import AdversaryView

ForgeFn = Callable[["AdversaryView", int], Message | None]
"""Builds a forged message for a given (view, channel); ``None`` ⇒ jam noise
is not sent on that channel at all."""


def _default_forge(view: "AdversaryView", channel: int) -> Message:
    """A generic forgery: claims to be from node 0 with junk payload."""
    return Message(kind="spoof", sender=0, payload=("forged", view.round_index))


class SpoofingAdversary(Adversary):
    """Transmits forged messages on up to ``t`` channels per round.

    Parameters
    ----------
    rng:
        Adversary-private randomness.
    forge:
        Factory producing the forged :class:`Message` per channel.  Protocol
        -specific attacks (e.g. forging well-formed feedback ``<true, r>``
        frames) supply their own factory.
    target_scheduled:
        When ``True`` and the round metadata exposes a schedule with a set of
        in-use channels, the spoofer prefers channels *not* in use (where a
        forgery could be decoded); otherwise it picks uniformly at random.
    """

    reusable_view = True

    def __init__(
        self,
        rng: random.Random,
        forge: ForgeFn = _default_forge,
        *,
        target_scheduled: bool = True,
    ) -> None:
        self._rng = rng
        self._forge = forge
        self._target_scheduled = target_scheduled

    def _candidate_channels(self, view: "AdversaryView") -> list[int]:
        all_channels = list(range(view.channels))
        if not self._target_scheduled:
            return all_channels
        schedule = view.meta.schedule or {}
        in_use = schedule.get("channels_in_use")
        if in_use is None:
            return all_channels
        free = [c for c in all_channels if c not in set(in_use)]
        # Prefer free channels, but spend leftover budget on in-use ones
        # (there a forgery collides, which is still disruption).
        used = [c for c in all_channels if c in set(in_use)]
        return free + used

    def act(self, view: "AdversaryView") -> Sequence[Transmission]:
        budget = min(view.t, view.channels)
        candidates = self._candidate_channels(view)
        if len(candidates) > budget:
            if self._target_scheduled and view.meta.schedule is not None:
                candidates = candidates[:budget]
            else:
                candidates = self._rng.sample(candidates, budget)
        out: list[Transmission] = []
        for channel in candidates:
            forged = self._forge(view, channel)
            if forged is not None:
                out.append(Transmission(channel, forged))
        return tuple(out)
