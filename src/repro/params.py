"""Protocol parameters: every Θ(·) constant in the paper, made explicit.

The paper states round counts asymptotically — ``Θ(C/(C-t) · log n)``
repetitions inside communication-feedback, ``Θ(t log n)``-round dissemination
epochs, and so on — leaving multiplicative constants to the Chernoff-bound
arguments.  A reproduction has to pick concrete constants.  This module
gathers all of them in one dataclass with documented defaults chosen so the
empirical failure rate in our test suite stays below ``1/n`` (the usual
"with high probability" target), while keeping simulations fast.

The model-size precondition enforced here comes from Section 5.4: the witness
assignment needs ``n > 3(t+1)^2 + 2(t+1)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Any

from .errors import ConfigurationError


def min_population(t: int) -> int:
    """Smallest ``n`` the paper's witness assignment supports for a given ``t``.

    Section 5.4 requires ``n > 3(t+1)^2 + 2(t+1)``; we return the smallest
    integer satisfying the strict inequality.
    """
    return 3 * (t + 1) ** 2 + 2 * (t + 1) + 1


def log2n(n: int) -> float:
    """``log2(n)`` guarded to be at least 1, as used in round-count formulas."""
    return max(1.0, math.log2(max(2, n)))


@dataclass(frozen=True)
class ProtocolParameters:
    """Tunable constants for every Θ(·) in the paper.

    Attributes
    ----------
    feedback_factor:
        Multiplier on the ``C/(C-t) · log2 n`` repetition count of the inner
        loop of communication-feedback (Figure 1, line 5).  The Chernoff
        argument of Lemma 5 needs the exponent to beat ``log n``; ``3.0``
        gives a comfortable margin at simulation sizes.
    dissemination_factor:
        Multiplier on the ``t · log2 n`` epoch length used in Part 2 of the
        group-key protocol and in the long-lived service (Sections 6-7).
    gossip_epoch_factor:
        Multiplier on the ``t^2 · log2 n`` epoch length of the message-gossip
        phase (Section 5.6) and of Part 3 of the group-key protocol.
    agreement_reporters:
        Number of non-leader reporter nodes in Part 3 (paper: ``2t + 1``);
        expressed as a multiplier on ``t`` plus an additive 1.
    strict_consistency:
        When ``True``, the f-AME driver raises
        :class:`repro.errors.SimulationDiverged` the moment node-local game
        states diverge (the low-probability failure event of Lemma 5).  When
        ``False`` it records the event in the trace and resynchronises from
        the majority view, which is what a deployed system would log.
    max_rounds:
        Hard safety cap on simulated radio rounds, so a buggy configuration
        cannot spin forever.  ``None`` disables the cap.
    validate_actions:
        When ``True`` (the default), :meth:`repro.radio.RadioNetwork.execute_round`
        checks every submitted action (node ids in range, channels in range,
        known action types) before resolving the round.  Trusted protocol
        drivers — whose schedules are validated once, not per round — may
        disable this to take the per-round cost of the check off the hot
        path.  Model soundness checks that bound the *adversary* (budget,
        distinct channels) are never disabled.
    meter_payloads:
        When ``True`` (the default), the network sizes every honest frame
        (:func:`repro.radio.metrics.payload_size`) into
        ``NetworkMetrics.payload_units`` — the counter wire-encoding work
        such as the delta feedback frames is judged by.  The walk is
        O(payload) per transmission on the per-round path (compiled
        schedules size each static template once), so throughput
        benchmarks that don't read the counter may disable it, exactly
        like ``validate_actions``.
    """

    feedback_factor: float = 3.0
    dissemination_factor: float = 4.0
    gossip_epoch_factor: float = 3.0
    strict_consistency: bool = True
    max_rounds: int | None = 20_000_000
    validate_actions: bool = True
    meter_payloads: bool = True

    def validate(self) -> "ProtocolParameters":
        """Check internal consistency; returns ``self`` for chaining."""
        if self.feedback_factor <= 0:
            raise ConfigurationError("feedback_factor must be positive")
        if self.dissemination_factor <= 0:
            raise ConfigurationError("dissemination_factor must be positive")
        if self.gossip_epoch_factor <= 0:
            raise ConfigurationError("gossip_epoch_factor must be positive")
        if self.max_rounds is not None and self.max_rounds <= 0:
            raise ConfigurationError("max_rounds must be positive or None")
        return self

    def with_overrides(self, **overrides: Any) -> "ProtocolParameters":
        """Return a copy with the given fields replaced (and re-validated)."""
        return replace(self, **overrides).validate()

    # ------------------------------------------------------------------
    # Concrete round counts
    # ------------------------------------------------------------------

    def feedback_repetitions(self, n: int, channels: int, t: int) -> int:
        """Inner-loop repetitions of Figure 1: ``Θ(C/(C-t) · log n)``.

        For ``C = t + 1`` this is ``Θ(t log n)`` per channel and therefore
        ``Θ(t^2 log n)`` for a whole invocation (Lemma 5).
        """
        if channels <= t:
            raise ConfigurationError(
                f"feedback needs C > t (got C={channels}, t={t})"
            )
        ratio = channels / (channels - t)
        return max(1, math.ceil(self.feedback_factor * ratio * log2n(n)))

    def dissemination_epoch_rounds(self, n: int, t: int) -> int:
        """Length of one ``Θ(t log n)`` pairwise dissemination epoch."""
        return max(1, math.ceil(self.dissemination_factor * (t + 1) * log2n(n)))

    def hopping_epoch_rounds(self, n: int, channels: int, t: int) -> int:
        """Channel-aware epoch length for key-derived hopping (Sections 6-7).

        A keyless adversary jamming ``t`` of ``C`` channels blind hits the
        hop with probability ``t / C`` per round, so the epoch needs
        ``Θ(log n / log(C / t))`` rounds for w.h.p. delivery.  At the
        minimum ``C = t + 1`` this reduces to the paper's ``Θ(t log n)``;
        at ``C >= 2t`` it falls to ``Θ(log n)`` — the improvement the paper
        notes parenthetically in Section 7 ("for C >= 2t, the number of
        required real rounds would fall to O(log n)").
        """
        if channels <= t:
            raise ConfigurationError(
                f"hopping needs C > t (got C={channels}, t={t})"
            )
        if t == 0:
            return max(1, math.ceil(self.dissemination_factor * log2n(n)))
        # log base (C / t) of n, scaled by the dissemination constant.
        denom = math.log2(channels / t)
        if denom <= 0:  # pragma: no cover - guarded by channels > t
            raise ConfigurationError("non-positive hop advantage")
        return max(
            1, math.ceil(self.dissemination_factor * log2n(n) / denom)
        )

    def gossip_epoch_rounds(self, n: int, t: int) -> int:
        """Length of one ``Θ(t^2 log n)`` gossip/reporting epoch."""
        return max(
            1, math.ceil(self.gossip_epoch_factor * (t + 1) ** 2 * log2n(n))
        )

    def agreement_group_size(self, t: int) -> int:
        """Size of the reporter set S in Part 3 of Section 6: ``2t + 1``."""
        return 2 * t + 1


DEFAULT_PARAMETERS = ProtocolParameters().validate()


def validate_model(n: int, channels: int, t: int, *, require_witnesses: bool = False) -> None:
    """Validate the basic model constraints of Sections 3-4.

    Parameters
    ----------
    n: number of nodes.
    channels: number of channels ``C`` (paper: ``C > 1``).
    t: adversary strength, channels disrupted per round (paper: ``t < C``).
    require_witnesses:
        when ``True`` additionally enforce the f-AME population bound
        ``n > 3(t+1)^2 + 2(t+1)`` from Section 5.4.
    """
    if n < 2:
        raise ConfigurationError(f"need at least 2 nodes, got n={n}")
    if channels < 2:
        raise ConfigurationError(f"need C > 1 channels, got C={channels}")
    if t < 0:
        raise ConfigurationError(f"adversary strength t must be >= 0, got {t}")
    if t >= channels:
        raise ConfigurationError(
            f"the model requires t < C (got t={t}, C={channels}); "
            "with t >= C no communication is possible"
        )
    if require_witnesses and n < min_population(t):
        raise ConfigurationError(
            f"f-AME requires n > 3(t+1)^2 + 2(t+1) = {min_population(t) - 1} "
            f"(got n={n}, t={t})"
        )
