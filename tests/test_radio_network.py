"""Tests for the radio substrate: per-channel resolution, validation, spoofs."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, ProtocolViolation
from repro.params import ProtocolParameters
from repro.radio.actions import Listen, Sleep, Transmit
from repro.radio.messages import JAM, Jam, Message, Transmission
from repro.radio.network import AdversaryView, RadioNetwork, RoundMeta
from repro.adversary.base import Adversary

from conftest import make_network


def msg(kind="data", sender=0, payload=None) -> Message:
    return Message(kind=kind, sender=sender, payload=payload)


class FixedAdversary(Adversary):
    """Transmits a fixed plan every round (test double)."""

    def __init__(self, plan):
        self.plan = plan

    def act(self, view):
        return self.plan


class TestDeliveryRules:
    def test_single_transmitter_delivers_to_listeners(self):
        net = make_network(n=4)
        out = net.execute_round(
            {0: Transmit(0, msg(payload="hi")), 1: Listen(0), 2: Listen(0)}
        )
        assert out[1].payload == "hi"
        assert out[2].payload == "hi"

    def test_two_transmitters_collide(self):
        net = make_network(n=4)
        out = net.execute_round(
            {0: Transmit(0, msg()), 1: Transmit(0, msg()), 2: Listen(0)}
        )
        assert out[2] is None

    def test_silence_heard_as_none(self):
        net = make_network(n=4)
        out = net.execute_round({2: Listen(1)})
        assert out[2] is None

    def test_listener_on_other_channel_hears_nothing(self):
        net = make_network(n=4)
        out = net.execute_round(
            {0: Transmit(0, msg(payload="x")), 1: Listen(1)}
        )
        assert out[1] is None

    def test_transmitter_absent_from_results(self):
        net = make_network(n=4)
        out = net.execute_round({0: Transmit(0, msg()), 1: Listen(0)})
        assert 0 not in out

    def test_sleeper_absent_from_results(self):
        net = make_network(n=4)
        out = net.execute_round({0: Sleep(), 1: Listen(0)})
        assert 0 not in out

    def test_no_collision_detection_jam_looks_like_silence(self):
        # A jam on an empty channel and true silence are indistinguishable.
        net = make_network(
            n=4, adversary=FixedAdversary([Transmission(0, JAM)])
        )
        out = net.execute_round({1: Listen(0)})
        assert out[1] is None


class TestAdversaryInteraction:
    def test_jam_suppresses_delivery(self):
        net = make_network(
            n=4, adversary=FixedAdversary([Transmission(0, JAM)])
        )
        out = net.execute_round({0: Transmit(0, msg(payload="x")), 1: Listen(0)})
        assert out[1] is None

    def test_spoof_on_empty_channel_is_delivered(self):
        fake = msg(kind="spoof", sender=9, payload="fake")
        net = make_network(
            n=4, adversary=FixedAdversary([Transmission(1, fake)])
        )
        out = net.execute_round({1: Listen(1)})
        assert out[1] == fake
        assert net.metrics.spoofs_delivered == 1

    def test_spoof_on_occupied_channel_only_collides(self):
        fake = msg(kind="spoof", sender=9)
        net = make_network(
            n=4, adversary=FixedAdversary([Transmission(0, fake)])
        )
        out = net.execute_round({0: Transmit(0, msg(payload="real")), 1: Listen(0)})
        assert out[1] is None
        assert net.metrics.spoofs_delivered == 0

    def test_budget_enforced(self):
        net = make_network(
            n=4,
            channels=3,
            t=1,
            adversary=FixedAdversary(
                [Transmission(0, JAM), Transmission(1, JAM)]
            ),
        )
        with pytest.raises(ProtocolViolation, match="budget"):
            net.execute_round({2: Listen(0)})

    def test_duplicate_channel_rejected(self):
        net = make_network(
            n=4,
            channels=3,
            t=2,
            adversary=FixedAdversary(
                [Transmission(0, JAM), Transmission(0, JAM)]
            ),
        )
        with pytest.raises(ProtocolViolation, match="twice"):
            net.execute_round({2: Listen(0)})

    def test_invalid_adversary_channel_rejected(self):
        net = make_network(
            n=4, adversary=FixedAdversary([Transmission(7, JAM)])
        )
        with pytest.raises(ProtocolViolation, match="invalid channel"):
            net.execute_round({2: Listen(0)})

    def test_view_hides_current_round_and_shows_history(self):
        # The view must contain only *completed* rounds at decision time
        # (the trace object is live, so length is sampled inside act()).
        seen_lengths: list[int] = []
        seen_first_record: list = []

        class Spy(Adversary):
            def act(self, view):
                seen_lengths.append(len(view.history))
                if len(view.history) > 0:
                    seen_first_record.append(view.history[0])
                return ()

        net = make_network(n=4, adversary=Spy())
        net.execute_round({0: Transmit(0, msg(payload="r0")), 1: Listen(0)})
        net.execute_round({1: Listen(0)})
        assert seen_lengths == [0, 1]
        assert seen_first_record[0].actions[0] == Transmit(0, msg(payload="r0"))


class TestValidation:
    def test_unknown_node_rejected(self):
        net = make_network(n=4)
        with pytest.raises(ProtocolViolation, match="unknown node"):
            net.execute_round({7: Listen(0)})

    def test_invalid_channel_rejected(self):
        net = make_network(n=4)
        with pytest.raises(ProtocolViolation, match="invalid channel"):
            net.execute_round({0: Listen(5)})

    def test_invalid_action_rejected(self):
        net = make_network(n=4)
        with pytest.raises(ProtocolViolation, match="unknown action"):
            net.execute_round({0: "transmit"})  # type: ignore[dict-item]

    def test_model_constraints_checked_at_construction(self):
        with pytest.raises(ConfigurationError):
            RadioNetwork(4, 2, 2)  # t >= C

    def test_round_cap(self):
        net = make_network(
            n=4, params=ProtocolParameters(max_rounds=2).validate()
        )
        net.execute_round({0: Listen(0)})
        net.execute_round({0: Listen(0)})
        with pytest.raises(ProtocolViolation, match="round cap"):
            net.execute_round({0: Listen(0)})

    def test_history_requiring_adversary_needs_trace(self):
        class Hist(Adversary):
            needs_history = True

            def act(self, view):
                return ()

        with pytest.raises(ConfigurationError, match="history"):
            make_network(n=4, adversary=Hist(), keep_trace=False)


class TestBookkeeping:
    def test_metrics_counts(self):
        net = make_network(n=6)
        net.execute_round(
            {0: Transmit(0, msg()), 1: Transmit(0, msg()), 2: Listen(0), 3: Listen(1)}
        )
        m = net.metrics
        assert m.rounds == 1
        assert m.honest_transmissions == 2
        assert m.listens == 2
        assert m.collisions == 1
        assert m.deliveries == 0

    def test_phase_attribution(self):
        net = make_network(n=4)
        net.execute_round({0: Listen(0)}, RoundMeta(phase="alpha"))
        net.execute_round({0: Listen(0)}, RoundMeta(phase="alpha"))
        net.execute_round({0: Listen(0)}, RoundMeta(phase="beta"))
        assert net.metrics.rounds_by_phase == {"alpha": 2, "beta": 1}

    def test_keep_trace_false_discards_records(self):
        net = make_network(n=4, keep_trace=False)
        net.execute_round({0: Listen(0)})
        assert len(net.trace) == 0
        assert net.metrics.rounds == 1

    def test_round_index_advances(self):
        net = make_network(n=4)
        assert net.round_index == 0
        net.execute_round({0: Listen(0)})
        assert net.round_index == 1


class TestRoundMeta:
    def test_as_dict_includes_schedule_and_extra(self):
        meta = RoundMeta(
            phase="p", schedule={"k": 1}, extra={"move": 7}
        )
        d = meta.as_dict()
        assert d == {"phase": "p", "schedule": {"k": 1}, "move": 7}

    def test_as_dict_omits_missing_schedule(self):
        assert "schedule" not in RoundMeta(phase="p").as_dict()
