"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.radio.network import RadioNetwork
from repro.rng import RngRegistry


@pytest.fixture
def rng() -> RngRegistry:
    """A fresh deterministic registry per test."""
    return RngRegistry(seed=12345)


@pytest.fixture
def adv_rng() -> random.Random:
    """Adversary-private randomness, seeded independently of honest coins."""
    return random.Random(0xADD)


def make_network(
    n: int = 20,
    channels: int = 2,
    t: int = 1,
    adversary=None,
    **kwargs,
) -> RadioNetwork:
    """Convenience network factory with small defaults (t=1 minimum pop)."""
    return RadioNetwork(n, channels, t, adversary=adversary, **kwargs)


@pytest.fixture
def small_net() -> RadioNetwork:
    """n=20, C=2, t=1 — the smallest comfortable f-AME configuration."""
    return make_network()


@pytest.fixture
def medium_net() -> RadioNetwork:
    """n=40, C=3, t=2 — exercises surrogates and multi-channel scheduling."""
    return make_network(n=40, channels=3, t=2)
