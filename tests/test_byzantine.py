"""Tests for the Section 8 (Q1) Byzantine-corruption variant."""

from __future__ import annotations

import random

import pytest

from repro.adversary import NullAdversary, RandomJammer, ScheduleAwareJammer
from repro.errors import ConfigurationError, ProtocolViolation
from repro.fame.byzantine import (
    ByzantineResult,
    CorruptionModel,
    run_byzantine_exchange,
    witness_group_size_byz,
)
from repro.rng import RngRegistry

from conftest import make_network

EDGES_T1 = [(0, 1), (2, 3), (4, 5), (6, 7)]


class TestCorruptionModel:
    def test_of_constructor(self):
        model = CorruptionModel.of(3, 7)
        assert model.is_corrupt(3) and model.is_corrupt(7)
        assert not model.is_corrupt(0)

    def test_defaults_misbehave_fully(self):
        model = CorruptionModel.of(1)
        assert model.garble_messages and model.lie_in_feedback

    def test_group_size_is_3_t_plus_1(self):
        # > 3t (honest majority from a witness's narrowed view) and a
        # whole number of (t+1)-channel rotations.
        assert witness_group_size_byz(1) == 6
        assert witness_group_size_byz(2) == 9
        for t in range(1, 5):
            assert witness_group_size_byz(t) > 3 * t
            assert witness_group_size_byz(t) % (t + 1) == 0


class TestHonestRuns:
    def test_no_corruption_no_adversary_delivers_all(self, rng):
        net = make_network(n=20, channels=2, t=1, adversary=NullAdversary())
        res = run_byzantine_exchange(net, EDGES_T1, rng=rng)
        assert res.failed == []
        assert res.garbled == []

    def test_messages_verbatim(self, rng):
        net = make_network(n=20, channels=2, t=1)
        messages = {p: ("payload", p) for p in EDGES_T1}
        res = run_byzantine_exchange(net, EDGES_T1, messages, rng=rng)
        for pair in EDGES_T1:
            assert res.delivered[pair] == messages[pair]

    def test_jamming_within_2t(self, rng, adv_rng):
        net = make_network(
            n=20, channels=2, t=1,
            adversary=ScheduleAwareJammer(adv_rng, policy="prefix"),
        )
        res = run_byzantine_exchange(net, EDGES_T1, rng=rng)
        assert res.disruptability() <= 2


class TestCorruptSources:
    def test_garbled_payloads_detected_by_harness(self, rng):
        net = make_network(n=20, channels=2, t=1)
        corruption = CorruptionModel.of(0)
        res = run_byzantine_exchange(
            net, EDGES_T1, rng=rng, corruption=corruption
        )
        assert (0, 1) in res.garbled
        assert not res.outcomes[(0, 1)]
        # Other pairs are untouched.
        assert res.outcomes[(2, 3)] and res.outcomes[(4, 5)]

    def test_failures_covered_by_corrupt_plus_jammed(self, rng, adv_rng):
        net = make_network(
            n=40, channels=3, t=2,
            adversary=ScheduleAwareJammer(adv_rng, policy="suffix"),
        )
        edges = [(i, i + 15) for i in range(8)]
        corruption = CorruptionModel.of(0, 1)
        res = run_byzantine_exchange(
            net, edges, rng=rng, corruption=corruption
        )
        assert res.disruptability() <= 2 * 2

    def test_corruption_budget_enforced(self, rng):
        net = make_network(n=20, channels=2, t=1)
        with pytest.raises(ConfigurationError, match="at most t"):
            run_byzantine_exchange(
                net, EDGES_T1, rng=rng, corruption=CorruptionModel.of(0, 2)
            )


class TestLyingWitnesses:
    def test_lying_witness_outvoted(self, rng):
        # Corrupt one node that lands in a witness group: its inverted
        # reports must not change any outcome (honest majority).
        net = make_network(n=20, channels=2, t=1)
        # Witness groups draw from the lowest free ids; 8 is free given
        # the edges use 0-7, so it will witness channel 0.
        corruption = CorruptionModel.of(
            8, garble_messages=False, lie_in_feedback=True
        )
        res = run_byzantine_exchange(
            net, EDGES_T1, rng=rng, corruption=corruption
        )
        assert res.failed == []

    def test_lying_witness_under_jamming(self, rng, adv_rng):
        net = make_network(
            n=20, channels=2, t=1, adversary=RandomJammer(adv_rng)
        )
        corruption = CorruptionModel.of(
            8, garble_messages=False, lie_in_feedback=True
        )
        res = run_byzantine_exchange(
            net, EDGES_T1, rng=rng, corruption=corruption
        )
        assert res.disruptability() <= 2

    def test_repeated_seeds_stay_within_2t(self):
        for seed in range(8):
            net = make_network(
                n=20, channels=2, t=1,
                adversary=RandomJammer(random.Random(seed)),
            )
            corruption = CorruptionModel.of(seed % 8)
            res = run_byzantine_exchange(
                net, EDGES_T1, rng=RngRegistry(seed=seed),
                corruption=corruption,
            )
            assert res.disruptability() <= 2, seed


class TestValidation:
    def test_invalid_pairs_rejected(self, rng):
        net = make_network(n=20, channels=2, t=1)
        with pytest.raises(ProtocolViolation):
            run_byzantine_exchange(net, [(0, 0)], rng=rng)

    def test_population_check(self, rng):
        net = make_network(n=20, channels=2, t=1)
        net.n = 9  # force a shortage
        with pytest.raises(ProtocolViolation, match="population"):
            run_byzantine_exchange(net, EDGES_T1, rng=rng)

    def test_result_accounting(self, rng):
        net = make_network(n=20, channels=2, t=1)
        res = run_byzantine_exchange(net, EDGES_T1, rng=rng)
        assert isinstance(res, ByzantineResult)
        assert res.moves >= 1
        assert res.rounds > res.moves
