"""Unit tests for FameResult / PairOutcome helpers."""

from __future__ import annotations

import pytest

from repro.fame.config import make_config
from repro.fame.result import FameResult, PairOutcome, outcomes_from_pairs


def result_with(outcomes):
    return FameResult(
        config=make_config(20, 2, 1),
        outcomes=outcomes,
        moves=3,
        rounds=100,
    )


class TestOutcomesFromPairs:
    def test_partitions_success_and_failure(self):
        pairs = [(0, 1), (2, 3), (4, 5)]
        delivered = {(0, 1): "a", (4, 5): "b"}
        out = outcomes_from_pairs(pairs, delivered)
        assert out[(0, 1)].success and out[(0, 1)].message == "a"
        assert not out[(2, 3)].success
        assert out[(2, 3)].message is None


class TestFameResult:
    def test_succeeded_failed_partition(self):
        res = result_with(outcomes_from_pairs(
            [(0, 1), (2, 3)], {(0, 1): "m"}
        ))
        assert res.succeeded == [(0, 1)]
        assert res.failed == [(2, 3)]
        assert set(res.pairs) == {(0, 1), (2, 3)}

    def test_disruptability_of_star_failures(self):
        res = result_with(outcomes_from_pairs(
            [(0, 1), (0, 2), (0, 3)], {}
        ))
        assert res.disruptability() == 1
        assert res.is_d_disruptable(1)
        assert not res.is_d_disruptable(0)

    def test_delivered_messages(self):
        res = result_with(outcomes_from_pairs(
            [(0, 1), (2, 3)], {(0, 1): "payload"}
        ))
        assert res.delivered_messages() == {(0, 1): "payload"}

    def test_sender_report_filters_by_source(self):
        res = result_with(outcomes_from_pairs(
            [(0, 1), (0, 2), (3, 4)], {(0, 1): "m"}
        ))
        assert res.sender_report(0) == {(0, 1): True, (0, 2): False}
        assert res.sender_report(3) == {(3, 4): False}
        assert res.sender_report(9) == {}

    def test_summary_shape(self):
        res = result_with(outcomes_from_pairs([(0, 1)], {(0, 1): "m"}))
        s = res.summary()
        assert s["succeeded"] == 1 and s["failed"] == 0
        assert s["regime"] == "base"
        assert s["moves"] == 3 and s["rounds"] == 100

    def test_empty_result(self):
        res = result_with({})
        assert res.succeeded == [] and res.failed == []
        assert res.disruptability() == 0


class TestPairOutcome:
    def test_frozen(self):
        o = PairOutcome(pair=(0, 1), success=True, message="m", move=2)
        with pytest.raises(AttributeError):
            o.success = False  # type: ignore[misc]
