"""Tests for f-AME channel-regime configuration (Figure 3)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.fame.config import (
    FameConfig,
    Regime,
    make_config,
    predicted_rounds,
    witness_group_size,
)


class TestWitnessGroupSize:
    def test_is_3_t_plus_1(self):
        assert witness_group_size(1) == 6
        assert witness_group_size(3) == 12


class TestAutoRegime:
    def test_minimal_channels_base(self):
        assert make_config(40, 3, 2).regime is Regime.BASE

    def test_double_regime_at_2t(self):
        cfg = make_config(48, 4, 2)
        assert cfg.regime is Regime.DOUBLE
        assert cfg.proposal_size == 4

    def test_population_shortfall_falls_back_to_base(self):
        # n=40 cannot feed four witness groups of 3(t+1)=9 (needs 48), so
        # the auto-pick stays BASE even though C >= 2t.
        assert make_config(40, 4, 2).regime is Regime.BASE

    def test_c_equals_2t_squared_ties_to_double(self):
        # At C = 2t^2 exactly, C/t = 2t: transmission is identical to the
        # DOUBLE row, so the tie-break picks the simpler serial feedback.
        cfg = make_config(60, 8, 2)
        assert cfg.regime is Regime.DOUBLE
        assert cfg.proposal_size == 4

    def test_degenerate_t1_c2_stays_base(self):
        # At t=1, C=2 all three rows coincide; ties go to BASE.
        assert make_config(20, 2, 1).regime is Regime.BASE

    def test_larger_c_picks_bigger_proposals(self):
        cfg = make_config(120, 16, 2)  # C/t = 8 > 2t = 4, needs n >= 96
        assert cfg.regime is Regime.SQUARED
        assert cfg.proposal_size == 8

    def test_explicit_regime_respected(self):
        cfg = make_config(60, 8, 2, regime=Regime.BASE)
        assert cfg.regime is Regime.BASE
        assert cfg.proposal_size == 3


class TestValidation:
    def test_population_bound_enforced(self):
        with pytest.raises(ConfigurationError, match="n >="):
            make_config(10, 2, 1)

    def test_min_nodes_at_least_paper_bound(self):
        cfg = make_config(40, 3, 2)
        # paper: n > 3(t+1)^2 + 2(t+1) = 33; ours adds surrogate headroom.
        assert cfg.min_nodes_required() >= 34

    def test_double_needs_2t_channels(self):
        with pytest.raises(ConfigurationError, match="2t"):
            FameConfig(
                n=60, channels=3, t=2, regime=Regime.DOUBLE,
                proposal_size=3, feedback_channels=3,
            ).validate()

    def test_squared_needs_2t2_channels(self):
        with pytest.raises(ConfigurationError, match="2t\\^2"):
            FameConfig(
                n=60, channels=6, t=2, regime=Regime.SQUARED,
                proposal_size=3, feedback_channels=6,
            ).validate()

    def test_proposal_size_cannot_exceed_channels(self):
        with pytest.raises(ConfigurationError, match="exceeds C"):
            FameConfig(
                n=60, channels=3, t=2, regime=Regime.BASE,
                proposal_size=4, feedback_channels=3,
            ).validate()

    def test_base_regime_proposal_size_fixed(self):
        with pytest.raises(ConfigurationError, match="t\\+1"):
            FameConfig(
                n=90, channels=5, t=2, regime=Regime.BASE,
                proposal_size=4, feedback_channels=5,
            ).validate()

    def test_feedback_channels_bounded_by_witness_group(self):
        with pytest.raises(ConfigurationError, match="witness group"):
            FameConfig(
                n=200, channels=20, t=2, regime=Regime.BASE,
                proposal_size=3, feedback_channels=20,
            ).validate()

    def test_feedback_channels_capped_in_make_config(self):
        cfg = make_config(200, 20, 2, regime=Regime.BASE)
        assert cfg.feedback_channels == min(20, witness_group_size(2))


class TestPredictedRounds:
    def test_figure3_ordering(self):
        # For fixed n, t, |E|: base >> double >= squared (per Figure 3).
        base = predicted_rounds(make_config(60, 3, 2, regime=Regime.BASE), 50)
        double = predicted_rounds(make_config(60, 4, 2, regime=Regime.DOUBLE), 50)
        squared = predicted_rounds(make_config(60, 8, 2, regime=Regime.SQUARED), 50)
        assert base > double
        assert double >= squared / 10  # same order modulo log factors

    def test_linear_in_edges(self):
        cfg = make_config(60, 3, 2)
        assert predicted_rounds(cfg, 100) == pytest.approx(
            2 * predicted_rounds(cfg, 50)
        )
