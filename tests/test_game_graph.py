"""Tests for the game graph container and proposal items."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.game.graph import EdgeItem, GameGraph, NodeItem


class TestItems:
    def test_edge_item_pair(self):
        assert EdgeItem(1, 2).pair == (1, 2)

    def test_items_hashable_and_distinct(self):
        assert NodeItem(1) != EdgeItem(1, 2)
        assert len({NodeItem(1), NodeItem(1), EdgeItem(1, 2)}) == 2

    def test_reprs_compact(self):
        assert repr(NodeItem(3)) == "N(3)"
        assert repr(EdgeItem(3, 4)) == "E(3->4)"


class TestFromPairs:
    def test_infers_vertices(self):
        g = GameGraph.from_pairs([(0, 1), (2, 3)])
        assert g.vertices == frozenset({0, 1, 2, 3})
        assert g.edges == {(0, 1), (2, 3)}
        assert g.starred == set()

    def test_explicit_vertices_superset_ok(self):
        g = GameGraph.from_pairs([(0, 1)], vertices=range(5))
        assert g.vertices == frozenset(range(5))

    def test_rejects_edge_outside_vertices(self):
        with pytest.raises(ConfigurationError, match="outside V"):
            GameGraph.from_pairs([(0, 9)], vertices=range(3))

    def test_rejects_self_loop(self):
        with pytest.raises(ConfigurationError, match="self-edge"):
            GameGraph.from_pairs([(1, 1)])

    def test_duplicate_pairs_collapse(self):
        g = GameGraph.from_pairs([(0, 1), (0, 1)])
        assert len(g.edges) == 1


class TestMutation:
    def test_remove_edge(self):
        g = GameGraph.from_pairs([(0, 1), (1, 2)])
        g.remove_edge((0, 1))
        assert g.edges == {(1, 2)}

    def test_remove_absent_edge_raises(self):
        g = GameGraph.from_pairs([(0, 1)])
        with pytest.raises(KeyError):
            g.remove_edge((1, 0))

    def test_star_known_vertex(self):
        g = GameGraph.from_pairs([(0, 1)])
        g.star(0)
        assert g.starred == {0}

    def test_star_unknown_vertex_raises(self):
        g = GameGraph.from_pairs([(0, 1)])
        with pytest.raises(ConfigurationError):
            g.star(9)

    def test_copy_is_independent(self):
        g = GameGraph.from_pairs([(0, 1), (1, 2)])
        h = g.copy()
        h.remove_edge((0, 1))
        h.star(2)
        assert (0, 1) in g.edges
        assert g.starred == set()

    def test_sources(self):
        g = GameGraph.from_pairs([(0, 1), (0, 2), (3, 1)])
        assert g.sources() == {0, 3}


class TestStateKey:
    def test_equal_states_equal_keys(self):
        a = GameGraph.from_pairs([(0, 1), (2, 3)])
        b = GameGraph.from_pairs([(2, 3), (0, 1)])
        assert a.state_key() == b.state_key()

    def test_star_changes_key(self):
        g = GameGraph.from_pairs([(0, 1)])
        before = g.state_key()
        g.star(0)
        assert g.state_key() != before

    def test_removal_changes_key(self):
        g = GameGraph.from_pairs([(0, 1), (2, 3)])
        before = g.state_key()
        g.remove_edge((2, 3))
        assert g.state_key() != before
