"""Tests for the greedy-removal strategy (Section 5.2), incl. property tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.vertex_cover import vertex_cover_number
from repro.errors import ConfigurationError
from repro.game.graph import EdgeItem, GameGraph, NodeItem
from repro.game.greedy import (
    GreedyPools,
    GreedyTermination,
    greedy_proposal,
    proposal_pools,
)
from repro.game.rules import is_legal_proposal


class TestGreedyPoolsBisectRemovals:
    """The bisect-backed pool removals locate exact entries even inside
    runs of equal priority: P2 is keyed (dest, source), so edges sharing a
    destination are adjacent duplicates under the primary sort key, and a
    removal must excise precisely the granted edge — first, middle, or
    last of the run — while leaving the canonical order intact."""

    def _dup_dest_setup(self):
        # Three edges into destination 9 plus flanking runs into 8 and 10;
        # all sources starred so every edge sits in P2.
        edges = [(1, 9), (2, 9), (3, 9), (2, 8), (4, 8), (3, 10)]
        graph = GameGraph.from_pairs(edges, vertices=range(12))
        reference = graph.copy()
        pools = GreedyPools(graph)
        for source in (1, 2, 3, 4):
            pools.star(source)
            reference.star(source)
        assert pools.pools() == proposal_pools(reference)
        return pools, reference

    @pytest.mark.parametrize(
        "removal_order",
        [
            [(2, 9), (1, 9), (3, 9)],  # middle of the run first
            [(1, 9), (2, 9), (3, 9)],  # run-start boundary first
            [(3, 9), (2, 9), (1, 9)],  # run-end boundary first
            [(2, 8), (3, 9), (4, 8)],  # alternating between runs
        ],
    )
    def test_duplicate_priority_boundary_removals(self, removal_order):
        pools, reference = self._dup_dest_setup()
        for edge in removal_order:
            pools.remove_edge(edge)
            reference.remove_edge(edge)
            assert pools.pools() == proposal_pools(reference)
            t = 1
            assert pools.proposal(t) == greedy_proposal(reference, t)

    def test_p1_removal_at_adjacent_id_boundaries(self):
        # Adjacent source ids in P1: dropping one must not disturb its
        # neighbours (bisect picks the exact index, not a scan-and-shift
        # of an equal block).
        edges = [(5, 0), (6, 0), (7, 1)]
        graph = GameGraph.from_pairs(edges, vertices=range(9))
        reference = graph.copy()
        pools = GreedyPools(graph)
        assert pools.pools()[0] == [5, 6, 7]
        for node in (6, 5, 7):
            pools.star(node)
            reference.star(node)
            assert pools.pools() == proposal_pools(reference)


class TestProposalPools:
    def test_p1_is_unstarred_sources(self):
        g = GameGraph.from_pairs([(0, 1), (2, 3)], vertices=range(6))
        g.star(0)
        p1, _p2 = proposal_pools(g)
        assert p1 == [2]

    def test_p2_edges_disjoint_from_p1(self):
        # Edge (0,1): source 0 unstarred => 0 in P1 => edge not in P2.
        # Edge (4,5): source 4 starred and 4,5 not in P1 => in P2.
        g = GameGraph.from_pairs([(0, 1), (4, 5)], vertices=range(6))
        g.star(4)
        p1, p2 = proposal_pools(g)
        assert p1 == [0]
        assert p2 == [(4, 5)]

    def test_p2_sorted_by_destination(self):
        g = GameGraph.from_pairs([(0, 5), (1, 3)], vertices=range(6))
        g.star(0)
        g.star(1)
        _p1, p2 = proposal_pools(g)
        assert p2 == [(1, 3), (0, 5)]

    def test_deterministic(self):
        g = GameGraph.from_pairs([(3, 1), (0, 2), (4, 5)], vertices=range(6))
        assert proposal_pools(g) == proposal_pools(g.copy())


class TestGreedyProposal:
    def test_nodes_first(self):
        g = GameGraph.from_pairs([(0, 1), (2, 3)], vertices=range(6))
        move = greedy_proposal(g, t=1)
        assert move == [NodeItem(0), NodeItem(2)]

    def test_fills_with_destination_distinct_p2_edges(self):
        g = GameGraph.from_pairs([(0, 1), (0, 2)], vertices=range(6))
        g.star(0)
        move = greedy_proposal(g, t=1)
        assert move == [EdgeItem(0, 1), EdgeItem(0, 2)]

    def test_termination_returns_cover_certificate(self):
        g = GameGraph.from_pairs([(0, 1)], vertices=range(4))
        move = greedy_proposal(g, t=1)  # only one item available
        assert isinstance(move, GreedyTermination)
        assert move.cover == frozenset({0})

    def test_termination_cover_bounded_by_t(self):
        g = GameGraph.from_pairs([(0, 1), (0, 2), (0, 3)], vertices=range(6))
        move = greedy_proposal(g, t=1)
        assert isinstance(move, GreedyTermination)
        assert len(move.cover) <= 1

    def test_empty_graph_terminates_with_empty_cover(self):
        g = GameGraph.from_pairs([], vertices=range(4))
        move = greedy_proposal(g, t=2)
        assert isinstance(move, GreedyTermination)
        assert move.cover == frozenset()

    def test_max_items_collects_more(self):
        g = GameGraph.from_pairs(
            [(0, 1), (2, 3), (4, 5), (6, 7)], vertices=range(8)
        )
        move = greedy_proposal(g, t=1, max_items=4)
        assert len(move) == 4

    def test_max_items_partial_fill_is_still_a_proposal(self):
        g = GameGraph.from_pairs([(0, 1), (2, 3)], vertices=range(8))
        move = greedy_proposal(g, t=1, max_items=4)
        assert isinstance(move, list)
        assert len(move) == 2  # >= t+1, so not termination

    def test_max_items_below_t_plus_1_rejected(self):
        g = GameGraph.from_pairs([(0, 1)], vertices=range(4))
        with pytest.raises(ConfigurationError):
            greedy_proposal(g, t=2, max_items=2)


# ---------------------------------------------------------------------------
# Property-based tests: the greedy proposal is always legal, and its
# termination certificate is always a genuine vertex cover of size <= t.
# ---------------------------------------------------------------------------

edge_sets = st.sets(
    st.tuples(st.integers(0, 11), st.integers(0, 11)).filter(
        lambda e: e[0] != e[1]
    ),
    max_size=20,
)


@given(edges=edge_sets, t=st.integers(1, 3), star_seed=st.integers(0, 2**16))
@settings(max_examples=120, deadline=None)
def test_greedy_move_always_legal_or_certified(edges, t, star_seed):
    import random

    g = GameGraph.from_pairs(edges, vertices=range(12))
    # Star a pseudo-random subset to explore mid-game states.
    stars = random.Random(star_seed).sample(range(12), k=star_seed % 5)
    for v in stars:
        g.star(v)
    move = greedy_proposal(g, t)
    if isinstance(move, GreedyTermination):
        # Certificate: a cover of size <= t that covers every edge.
        assert len(move.cover) <= t
        assert all(v in move.cover or w in move.cover for v, w in g.edges)
        # And the exact minimum agrees it is <= t.
        assert vertex_cover_number(g.edges) <= t
    else:
        assert is_legal_proposal(g, move, t)


@given(edges=edge_sets, t=st.integers(1, 3))
@settings(max_examples=60, deadline=None)
def test_greedy_with_wider_budget_still_legal(edges, t):
    g = GameGraph.from_pairs(edges, vertices=range(12))
    move = greedy_proposal(g, t, max_items=2 * t + 2)
    if not isinstance(move, GreedyTermination):
        assert is_legal_proposal(g, move, t, max_items=2 * t + 2)
        assert len(move) >= t + 1
